"""The LRU-cached relationship query engine.

:class:`QueryEngine` fronts a :class:`~repro.service.index.RelationshipIndex`
with the read API the HTTP layer serves:

* point lookups (``containers`` / ``contained`` / ``complements``),
* ``related`` — top-k related observations across all three relations,
  scored by containment degree,
* ``transitive_containers`` / ``transitive_contained`` — breadth-first
  walks over the full-containment graph,
* ``find`` — dataset and dimension filters over the observation space,

plus the two incremental writes (``insert`` / ``remove``) that route
through :func:`~repro.core.api.update_relationships` /
:func:`~repro.core.api.remove_observations` and apply the reported
:class:`~repro.core.results.RelationshipDelta` to the index.

Concurrency model: every read runs under the shared side of a
readers–writer lock; writes take the exclusive side, mutate the index,
then bump the engine's *generation* counter.  Query results are cached
in a size-bounded LRU stamped with the generation they were computed
from — a bumped generation turns every older entry into a miss, so a
reader can never observe a cache entry from before an applied write.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ServiceError, StorageError, UnknownObservationError
from repro.core.api import remove_observations, update_relationships
from repro.core.results import RelationshipDelta, RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef
from repro.resilience.deadline import check_deadline
from repro.service.cache import LRUCache
from repro.service.index import RelationshipIndex
from repro.service.rwlock import RWLock

__all__ = ["QueryEngine"]

NewObservation = tuple[URIRef, URIRef, Mapping[URIRef, URIRef], Iterable[URIRef]]

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "sink_errors": registry.counter(
                "repro_engine_delta_sink_errors_total",
                "Delta-sink (WAL append) failures during engine writes.",
            ),
            "feed_publish_errors": registry.counter(
                "repro_stream_feed_publish_errors_total",
                "Changefeed publishes that failed after a durable WAL append.",
            ),
        }
    return _METRICS


class QueryEngine:
    """Cached, lock-protected queries over a relationship index."""

    def __init__(
        self,
        result: RelationshipSet,
        space: ObservationSpace | None = None,
        cache_size: int = 1024,
        index: RelationshipIndex | None = None,
        delta_sink=None,
        kernel: str = "auto",
        storage_info=None,
        changefeed=None,
    ):
        self.result = result
        self.space = space
        #: instance-check path for incremental inserts — see
        #: :func:`repro.core.cubemask.compute_cubemask`
        self.kernel = kernel
        # A prebuilt (possibly lazy, segment-backed) index can be
        # injected so engine construction stays O(manifest) when the
        # store supports it; see repro.storage.lazy.
        self.index = index if index is not None else RelationshipIndex(result, space)
        self.lock = RWLock()
        self.cache = LRUCache(cache_size)
        self.generation = 0
        # Write-ahead persistence: every applied RelationshipDelta is
        # handed to the sink (e.g. SegmentStore.append_delta) under the
        # write lock, before the write is acknowledged.
        self.delta_sink = delta_sink
        self.wal_appends = 0
        # Zero-arg callable returning storage-layer facts (e.g.
        # ``SegmentStore.describe``); surfaced by stats()/healthz.
        self.storage_info = storage_info
        # Ordered relationship changefeed (repro.stream.changefeed):
        # every applied delta is published with a monotonic offset,
        # under the write lock, after the WAL append succeeds.
        self.changefeed = changefeed
        self.feed_offset = changefeed.head_offset if changefeed is not None else None

    # ------------------------------------------------------------------
    # Cache plumbing: compute() runs under the read lock, so the
    # generation it is stamped with cannot change mid-computation.
    # ------------------------------------------------------------------
    def _cached(self, key: tuple, compute):
        from repro.obs.slowlog import annotate

        with self.lock.read_locked():
            generation = self.generation
            value = self.cache.get(key, generation)
            if value is LRUCache.MISS:
                # A cache hit is too cheap to be worth cancelling; a
                # miss may materialise segments, so spend the request's
                # remaining budget here (and at every segment below).
                annotate(cache="miss")
                check_deadline("engine.query")
                value = compute()
                self.cache.put(key, generation, value)
            else:
                annotate(cache="hit")
            return value

    def _require_known(self, uri: URIRef) -> None:
        if uri not in self.index:
            raise UnknownObservationError(uri)

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------
    def containers(self, uri: URIRef) -> tuple[URIRef, ...]:
        """Observations that fully contain ``uri`` (sorted)."""

        def compute():
            self._require_known(uri)
            return tuple(sorted(self.index.fully_within(uri), key=str))

        return self._cached(("containers", uri), compute)

    def contained(self, uri: URIRef) -> tuple[URIRef, ...]:
        """Observations fully contained by ``uri`` (sorted)."""

        def compute():
            self._require_known(uri)
            return tuple(sorted(self.index.fully_contains(uri), key=str))

        return self._cached(("contained", uri), compute)

    def complements(self, uri: URIRef) -> tuple[URIRef, ...]:
        def compute():
            self._require_known(uri)
            return tuple(sorted(self.index.complements_of(uri), key=str))

        return self._cached(("complements", uri), compute)

    def top_partial(
        self, uri: URIRef, k: int = 10, direction: str = "both"
    ) -> tuple[tuple[URIRef, float, str], ...]:
        """Top-k partial-containment neighbours by OCM degree."""

        def compute():
            self._require_known(uri)
            return tuple(self.index.top_partial(uri, k, direction))

        return self._cached(("top_partial", uri, k, direction), compute)

    # ------------------------------------------------------------------
    # Top-k related observations across all relations
    # ------------------------------------------------------------------
    def related(self, uri: URIRef, k: int = 10) -> tuple[dict, ...]:
        """The ``k`` most related observations, any relation.

        Full containment (either direction) and complementarity score
        1.0; partial containment scores its OCM degree.  Results are
        ``{"uri", "score", "relation"}`` dicts ordered by descending
        score, ties broken by URI.
        """

        def compute():
            self._require_known(uri)
            best: dict[URIRef, tuple[float, str]] = {}

            def offer(other: URIRef, score: float, relation: str) -> None:
                current = best.get(other)
                if current is None or score > current[0]:
                    best[other] = (score, relation)

            for other in self.index.fully_within(uri):
                offer(other, 1.0, "full-container")
            for other in self.index.fully_contains(uri):
                offer(other, 1.0, "full-contained")
            for other in self.index.complements_of(uri):
                offer(other, 1.0, "complement")
            degrees = self.result.degrees
            for other in self.index.partially_contains(uri):
                offer(other, degrees.get((uri, other), 0.0), "partial-contained")
            for other in self.index.partially_within(uri):
                offer(other, degrees.get((other, uri), 0.0), "partial-container")
            ranked = sorted(
                best.items(), key=lambda item: (-item[1][0], str(item[0]))
            )
            return tuple(
                {"uri": other, "score": score, "relation": relation}
                for other, (score, relation) in ranked[: max(k, 0)]
            )

        return self._cached(("related", uri, k), compute)

    # ------------------------------------------------------------------
    # Transitive walks over full containment
    # ------------------------------------------------------------------
    def transitive_containers(
        self, uri: URIRef, max_depth: int | None = None
    ) -> tuple[tuple[URIRef, int], ...]:
        """Breadth-first ancestors in the full-containment graph.

        Returns ``(uri, depth)`` pairs in BFS order (depth 1 = direct
        containers).  Cycles — mutual containment is legal — terminate
        because visited observations are never re-queued.
        """
        return self._walk(uri, max_depth, upward=True)

    def transitive_contained(
        self, uri: URIRef, max_depth: int | None = None
    ) -> tuple[tuple[URIRef, int], ...]:
        """Breadth-first descendants in the full-containment graph."""
        return self._walk(uri, max_depth, upward=False)

    def _walk(self, uri: URIRef, max_depth: int | None, upward: bool):
        key = ("walk-up" if upward else "walk-down", uri, max_depth)
        step = self.index.fully_within if upward else self.index.fully_contains

        def compute():
            self._require_known(uri)
            visited = {uri}
            frontier = [uri]
            depth = 0
            out: list[tuple[URIRef, int]] = []
            while frontier and (max_depth is None or depth < max_depth):
                depth += 1
                next_frontier: list[URIRef] = []
                for node in frontier:
                    for neighbour in sorted(step(node), key=str):
                        if neighbour not in visited:
                            visited.add(neighbour)
                            out.append((neighbour, depth))
                            next_frontier.append(neighbour)
                frontier = next_frontier
            return tuple(out)

        return self._cached(key, compute)

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def find(
        self,
        dataset: URIRef | None = None,
        dimension: URIRef | None = None,
        limit: int | None = None,
    ) -> tuple[URIRef, ...]:
        """Observations filtered by dataset and/or bound dimension.

        The dimension filter keeps observations whose value for
        ``dimension`` sits below the hierarchy root (i.e. the source
        observation actually bound that dimension); it requires the
        engine to have been built with an observation space.
        """

        def compute():
            position: int | None = None
            if dimension is not None:
                if self.space is None:
                    raise ServiceError(
                        "dimension filters require an observation space; "
                        "the engine was built from a relationship store alone"
                    )
                try:
                    position = self.space.dimensions.index(dimension)
                except ValueError:
                    raise ServiceError(
                        f"unknown dimension {dimension}; bus: "
                        f"{', '.join(str(d) for d in self.space.dimensions)}"
                    ) from None
            if dataset is not None:
                candidates = self.index.dataset_members(dataset)
            else:
                candidates = frozenset(self.index.observations())
            if position is not None:
                candidates = frozenset(
                    uri
                    for uri in candidates
                    if (signature := self.index.signature_of(uri)) is not None
                    and signature[position] > 0
                )
            ordered = tuple(sorted(candidates, key=str))
            return ordered if limit is None else ordered[:limit]

        return self._cached(("find", dataset, dimension, limit), compute)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self, uri: URIRef) -> dict:
        """One observation's relationship profile (counts + grouping)."""

        def compute():
            self._require_known(uri)
            return {
                "uri": uri,
                "dataset": self.index.dataset_of(uri),
                "cube": self.index.signature_of(uri),
                "containers": len(self.index.fully_within(uri)),
                "contained": len(self.index.fully_contains(uri)),
                "complements": len(self.index.complements_of(uri)),
                "partial_containers": len(self.index.partially_within(uri)),
                "partial_contained": len(self.index.partially_contains(uri)),
            }

        return self._cached(("summary", uri), compute)

    def stats(self) -> dict:
        from repro.core.kernels import kernel_counters

        with self.lock.read_locked():
            stats = {
                "generation": self.generation,
                "observations": len(self.space) if self.space is not None else None,
                "index": self.index.stats(),
                "cache": self.cache.stats(),
                "persistence": {
                    "write_ahead_log": self.delta_sink is not None,
                    "wal_appends": self.wal_appends,
                },
                "changefeed": (
                    {"head_offset": self.changefeed.head_offset}
                    if self.changefeed is not None
                    else None
                ),
                # process-wide vectorised-kernel usage (cube-pair
                # evaluations served by repro.core.kernels)
                "kernels": kernel_counters(),
            }
            if self.storage_info is not None:
                try:
                    stats["storage"] = self.storage_info()
                except (OSError, StorageError) as exc:
                    stats["storage"] = {"error": str(exc)}
            return stats

    # ------------------------------------------------------------------
    # Incremental writes
    # ------------------------------------------------------------------
    def _persist(self, delta) -> None:
        """Journal an applied delta before the write is acknowledged.

        Runs under the write lock, right after the in-memory
        relationship set was mutated and before the index/generation
        advance — a sink failure (disk full, store gone, store locked)
        surfaces as a :class:`ServiceError`, and the caller rolls the
        in-memory mutation back, so the served state never diverges
        from the durable log.
        """
        if self.delta_sink is None:
            return
        try:
            self.delta_sink(delta)
        except (OSError, StorageError) as exc:
            _metrics()["sink_errors"].inc()
            raise ServiceError(f"write-ahead log append failed: {exc}") from exc
        self.wal_appends += 1

    def _publish(self, delta, op: str) -> None:
        """Publish an applied delta to the changefeed, if attached.

        Runs under the write lock after the WAL append succeeded, so
        offsets are monotonic and ordered exactly as deltas were
        applied.  The WAL is the durability source of truth; a feed
        publish failure is counted (``repro_stream_feed_publish_errors
        _total``) but does not fail the acknowledged write — consumers
        detect the gap through feed-lag alerts and resync.
        """
        if self.changefeed is None:
            return
        from repro.obs import current_trace_id

        try:
            self.feed_offset = self.changefeed.publish(
                delta, op=op, trace_id=current_trace_id()
            )
        except (OSError, StorageError):
            _metrics()["feed_publish_errors"].inc()

    def insert(self, observations: Iterable[NewObservation]):
        """Insert observations; returns the applied delta.

        Runs the lattice-pruned incremental recomputation under the
        write lock, applies the delta to the index and bumps the
        generation so every cached read is invalidated.
        """
        if self.space is None:
            raise ServiceError(
                "inserts require an observation space; "
                "the engine was built from a relationship store alone"
            )
        observations = list(observations)
        with self.lock.write_locked():
            start = len(self.space)
            _, delta = update_relationships(
                self.space, self.result, observations, return_delta=True,
                kernel=self.kernel,
            )
            try:
                self._persist(delta)
            except ServiceError:
                # Unwind the in-memory mutation: the index and
                # generation were not touched yet, and inserts only
                # add genuinely-new pairs, so the inverse delta (and
                # dropping the appended observations) restores the
                # exact pre-call state.
                self.result.apply_delta(
                    RelationshipDelta(
                        removed_full=set(delta.added_full),
                        removed_partial=set(delta.added_partial),
                        removed_complementary=set(delta.added_complementary),
                    )
                )
                if len(self.space) > start:
                    self.space = self.space.select(range(start))
                raise
            self._publish(delta, "insert")
            for record in self.space.observations[start:]:
                self.index.register(
                    record.uri, record.dataset, self.space.level_signature(record.index)
                )
            self.index.apply_delta(delta)
            self.generation += 1
        return delta

    def remove(self, uris: Iterable[URIRef]):
        """Retract observations; returns the applied delta."""
        if self.space is None:
            raise ServiceError(
                "removals require an observation space; "
                "the engine was built from a relationship store alone"
            )
        uris = list(uris)
        with self.lock.write_locked():
            known = {record.uri for record in self.space.observations}
            missing = [uri for uri in uris if uri not in known]
            if missing:
                raise UnknownObservationError(missing[0])
            # Removal purges the metadata of retracted partial pairs,
            # and the delta deliberately carries none — snapshot it so
            # a failed WAL append can restore the exact prior state.
            removed = set(uris)
            saved_map = {}
            saved_degrees = {}
            for pair in self.result.partial:
                if pair[0] in removed or pair[1] in removed:
                    if pair in self.result.partial_map:
                        saved_map[pair] = self.result.partial_map[pair]
                    if pair in self.result.degrees:
                        saved_degrees[pair] = self.result.degrees[pair]
            new_space, _, delta = remove_observations(
                self.space, self.result, uris, return_delta=True
            )
            try:
                self._persist(delta)
            except ServiceError:
                self.result.full |= delta.removed_full
                self.result.partial |= delta.removed_partial
                self.result.complementary |= delta.removed_complementary
                self.result.partial_map.update(saved_map)
                self.result.degrees.update(saved_degrees)
                raise
            self._publish(delta, "remove")
            self.space = new_space
            for uri in uris:
                self.index.unregister(uri)
            self.index.apply_delta(delta)
            self.generation += 1
        return delta

    def __repr__(self) -> str:
        return (
            f"QueryEngine(generation={self.generation}, "
            f"cache={len(self.cache)}/{self.cache.maxsize}, index={self.index!r})"
        )
