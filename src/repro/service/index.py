"""Adjacency index over a materialised :class:`RelationshipSet`.

The store answers "give me all pairs"; exploration needs "who contains
*this* observation?".  :class:`RelationshipIndex` turns the three pair
sets into forward/reverse adjacency maps so that every point lookup is
a dict probe returning exactly the answer set — O(answer size), never a
scan over |S_F|+|S_P|+|S_C| pairs:

* ``fully_within(o)`` / ``fully_contains(o)`` — reverse/forward full
  containment,
* ``partially_within(o)`` / ``partially_contains(o)`` — the same for
  partial containment, with ``top_partial`` serving top-k queries from
  degree-sorted neighbour lists,
* ``complements_of(o)`` — the symmetric complementarity neighbourhood.

When built with the :class:`~repro.core.space.ObservationSpace` the
index also groups observations per dataset and per lattice cube (level
signature), which backs the service's dataset/dimension filters.

Construction is a single pass over the pairs and observations —
O(|S_F|+|S_P|+|S_C|+n) plus one sort per partial neighbour list — and
the index is *incrementally maintainable*: feed the
:class:`~repro.core.results.RelationshipDelta` reported by
``update_relationships`` / ``remove_observations`` to
:meth:`apply_delta` and only the touched adjacency entries change
(degree-sorted lists are re-ranked lazily, on next query).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.results import RelationshipDelta, RelationshipSet, canonical
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = ["RelationshipIndex"]

Signature = tuple[int, ...]


def _add_edge(adjacency: dict[URIRef, set[URIRef]], source: URIRef, target: URIRef) -> None:
    adjacency.setdefault(source, set()).add(target)


def _drop_edge(adjacency: dict[URIRef, set[URIRef]], source: URIRef, target: URIRef) -> None:
    neighbours = adjacency.get(source)
    if neighbours is None:
        return
    neighbours.discard(target)
    if not neighbours:
        del adjacency[source]


class RelationshipIndex:
    """Forward/reverse adjacency over S_F, S_P and S_C.

    The index *aliases* ``result`` — it keeps a reference to the
    relationship set's ``degrees``/``partial_map`` so metadata stays
    current as the set is mutated in place, and mirrors the pair sets
    into adjacency maps that :meth:`apply_delta` keeps in sync.
    """

    def __init__(self, result: RelationshipSet, space: ObservationSpace | None = None):
        self.result = result
        # full containment: container -> contained, and the reverse
        self._full_out: dict[URIRef, set[URIRef]] = {}
        self._full_in: dict[URIRef, set[URIRef]] = {}
        # partial containment, same orientation
        self._partial_out: dict[URIRef, set[URIRef]] = {}
        self._partial_in: dict[URIRef, set[URIRef]] = {}
        # complementarity (symmetric)
        self._compl: dict[URIRef, set[URIRef]] = {}
        for a, b in result.full:
            _add_edge(self._full_out, a, b)
            _add_edge(self._full_in, b, a)
        for a, b in result.partial:
            _add_edge(self._partial_out, a, b)
            _add_edge(self._partial_in, b, a)
        for a, b in result.complementary:
            _add_edge(self._compl, a, b)
            _add_edge(self._compl, b, a)

        # groupings (populated when a space is supplied)
        self._datasets: dict[URIRef, set[URIRef]] = {}
        self._cubes: dict[Signature, set[URIRef]] = {}
        self._uri_dataset: dict[URIRef, URIRef] = {}
        self._uri_signature: dict[URIRef, Signature] = {}
        self._registered: set[URIRef] = set()
        if space is not None:
            for record in space.observations:
                self.register(record.uri, record.dataset, space.level_signature(record.index))

        # degree-sorted partial neighbour lists, rebuilt lazily per uri
        self._rank: dict[URIRef, tuple[tuple[URIRef, float, str], ...]] = {}
        self._rank_dirty: set[URIRef] = set(self._partial_out) | set(self._partial_in)

    # ------------------------------------------------------------------
    # Point lookups — each a single dict probe.
    # ------------------------------------------------------------------
    def fully_contains(self, uri: URIRef) -> frozenset[URIRef]:
        """Observations fully contained by ``uri``."""
        return frozenset(self._full_out.get(uri, ()))

    def fully_within(self, uri: URIRef) -> frozenset[URIRef]:
        """Observations that fully contain ``uri``."""
        return frozenset(self._full_in.get(uri, ()))

    def partially_contains(self, uri: URIRef) -> frozenset[URIRef]:
        return frozenset(self._partial_out.get(uri, ()))

    def partially_within(self, uri: URIRef) -> frozenset[URIRef]:
        return frozenset(self._partial_in.get(uri, ()))

    def complements_of(self, uri: URIRef) -> frozenset[URIRef]:
        return frozenset(self._compl.get(uri, ()))

    def degree(self, container: URIRef, contained: URIRef) -> float | None:
        return self.result.degrees.get((container, contained))

    # ------------------------------------------------------------------
    # Degree-ranked partial neighbours (top-k partial containment).
    # ------------------------------------------------------------------
    def _ranked(self, uri: URIRef) -> tuple[tuple[URIRef, float, str], ...]:
        if uri in self._rank_dirty or uri not in self._rank:
            degrees = self.result.degrees
            entries = [
                (other, degrees.get((uri, other), 0.0), "contains")
                for other in self._partial_out.get(uri, ())
            ]
            entries += [
                (other, degrees.get((other, uri), 0.0), "within")
                for other in self._partial_in.get(uri, ())
            ]
            entries.sort(key=lambda item: (-item[1], str(item[0]), item[2]))
            self._rank[uri] = tuple(entries)
            self._rank_dirty.discard(uri)
        return self._rank[uri]

    def top_partial(
        self, uri: URIRef, k: int = 10, direction: str = "both"
    ) -> list[tuple[URIRef, float, str]]:
        """The ``k`` highest-degree partial-containment neighbours.

        ``direction`` restricts to ``"contains"`` (``uri`` as
        container), ``"within"`` (``uri`` as contained) or ``"both"``.
        """
        if direction not in ("both", "contains", "within"):
            raise ValueError(f"unknown direction {direction!r}")
        ranked = self._ranked(uri)
        if direction != "both":
            ranked = tuple(entry for entry in ranked if entry[2] == direction)
        return list(ranked[: max(k, 0)])

    # ------------------------------------------------------------------
    # Groupings
    # ------------------------------------------------------------------
    def register(self, uri: URIRef, dataset: URIRef, signature: Signature) -> None:
        """Record an observation's dataset/cube membership."""
        self.unregister(uri)
        self._registered.add(uri)
        self._uri_dataset[uri] = dataset
        self._uri_signature[uri] = signature
        self._datasets.setdefault(dataset, set()).add(uri)
        self._cubes.setdefault(signature, set()).add(uri)

    def unregister(self, uri: URIRef) -> None:
        dataset = self._uri_dataset.pop(uri, None)
        if dataset is not None:
            members = self._datasets.get(dataset)
            if members is not None:
                members.discard(uri)
                if not members:
                    del self._datasets[dataset]
        signature = self._uri_signature.pop(uri, None)
        if signature is not None:
            members = self._cubes.get(signature)
            if members is not None:
                members.discard(uri)
                if not members:
                    del self._cubes[signature]
        self._registered.discard(uri)

    def dataset_members(self, dataset: URIRef) -> frozenset[URIRef]:
        return frozenset(self._datasets.get(dataset, ()))

    def cube_members(self, signature: Signature) -> frozenset[URIRef]:
        return frozenset(self._cubes.get(tuple(signature), ()))

    def dataset_of(self, uri: URIRef) -> URIRef | None:
        return self._uri_dataset.get(uri)

    def signature_of(self, uri: URIRef) -> Signature | None:
        return self._uri_signature.get(uri)

    @property
    def datasets(self) -> Mapping[URIRef, set[URIRef]]:
        return self._datasets

    @property
    def cubes(self) -> Mapping[Signature, set[URIRef]]:
        return self._cubes

    # ------------------------------------------------------------------
    def __contains__(self, uri: URIRef) -> bool:
        if self._registered:
            if uri in self._registered:
                return True
        return any(
            uri in adjacency
            for adjacency in (
                self._full_out,
                self._full_in,
                self._partial_out,
                self._partial_in,
                self._compl,
            )
        )

    def observations(self) -> Iterator[URIRef]:
        """Every known observation URI (registered or pair endpoint)."""
        seen: set[URIRef] = set(self._registered)
        yield from self._registered
        for adjacency in (
            self._full_out,
            self._full_in,
            self._partial_out,
            self._partial_in,
            self._compl,
        ):
            for uri in adjacency:
                if uri not in seen:
                    seen.add(uri)
                    yield uri

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta: RelationshipDelta) -> None:
        """Apply one incremental write in O(|delta|).

        Adjacency entries of touched observations are updated in place;
        their degree-sorted neighbour lists are marked dirty and
        re-ranked on the next top-k query.
        """
        for a, b in delta.added_full:
            _add_edge(self._full_out, a, b)
            _add_edge(self._full_in, b, a)
        for a, b in delta.removed_full:
            _drop_edge(self._full_out, a, b)
            _drop_edge(self._full_in, b, a)
        for a, b in delta.added_partial:
            _add_edge(self._partial_out, a, b)
            _add_edge(self._partial_in, b, a)
        for a, b in delta.removed_partial:
            _drop_edge(self._partial_out, a, b)
            _drop_edge(self._partial_in, b, a)
        for a, b in delta.added_complementary:
            pair = canonical(a, b)
            _add_edge(self._compl, pair[0], pair[1])
            _add_edge(self._compl, pair[1], pair[0])
        for a, b in delta.removed_complementary:
            _drop_edge(self._compl, a, b)
            _drop_edge(self._compl, b, a)
        for uri in delta.touched():
            self._rank_dirty.add(uri)
            self._rank.pop(uri, None)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "full_pairs": len(self.result.full),
            "partial_pairs": len(self.result.partial),
            "complementary_pairs": len(self.result.complementary),
            "observations": len(self._registered) or sum(1 for _ in self.observations()),
            "datasets": len(self._datasets),
            "cubes": len(self._cubes),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"RelationshipIndex(full={stats['full_pairs']}, "
            f"partial={stats['partial_pairs']}, "
            f"complementary={stats['complementary_pairs']}, "
            f"observations={stats['observations']})"
        )
