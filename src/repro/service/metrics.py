"""Service metrics in Prometheus text exposition format.

:class:`ServiceMetrics` collects per-endpoint request counters and
latency histograms; :meth:`ServiceMetrics.render` emits them together
with engine gauges (cache hit rate, index generation, pair counts) as
``text/plain; version=0.0.4`` — the format Prometheus scrapes, also
perfectly readable with ``curl``.

Only stdlib: counters under one mutex, histogram as cumulative fixed
buckets (the standard Prometheus layout: every observation lands in
all buckets with ``le`` >= its value, plus ``+Inf``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["ServiceMetrics"]

#: Upper bounds (seconds) of the latency histogram buckets.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class ServiceMetrics:
    """Thread-safe request counters + latency histograms."""

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        # (endpoint, status) -> request count
        self._requests: dict[tuple[str, int], int] = {}
        # endpoint -> [per-bucket counts..., +Inf count]
        self._histogram: dict[str, list[int]] = {}
        self._latency_sum: dict[str, float] = {}
        self._latency_count: dict[str, int] = {}

    # ------------------------------------------------------------------
    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one served request."""
        with self._lock:
            key = (endpoint, status)
            self._requests[key] = self._requests.get(key, 0) + 1
            counts = self._histogram.setdefault(endpoint, [0] * (len(self.buckets) + 1))
            counts[bisect_left(self.buckets, seconds)] += 1
            self._latency_sum[endpoint] = self._latency_sum.get(endpoint, 0.0) + seconds
            self._latency_count[endpoint] = self._latency_count.get(endpoint, 0) + 1

    def request_count(self, endpoint: str | None = None) -> int:
        with self._lock:
            if endpoint is None:
                return sum(self._requests.values())
            return sum(
                count for (ep, _), count in self._requests.items() if ep == endpoint
            )

    # ------------------------------------------------------------------
    def render(self, engine_stats: dict | None = None) -> str:
        """The metrics page body (Prometheus text exposition)."""
        lines: list[str] = []
        with self._lock:
            lines.append("# HELP repro_requests_total HTTP requests served, by endpoint and status.")
            lines.append("# TYPE repro_requests_total counter")
            for (endpoint, status), count in sorted(self._requests.items()):
                lines.append(
                    f'repro_requests_total{{endpoint="{endpoint}",status="{status}"}} {count}'
                )
            lines.append("# HELP repro_request_latency_seconds Request latency, by endpoint.")
            lines.append("# TYPE repro_request_latency_seconds histogram")
            for endpoint in sorted(self._histogram):
                counts = self._histogram[endpoint]
                cumulative = 0
                for bound, count in zip(self.buckets, counts):
                    cumulative += count
                    lines.append(
                        f'repro_request_latency_seconds_bucket{{endpoint="{endpoint}",le="{bound}"}} {cumulative}'
                    )
                cumulative += counts[-1]
                lines.append(
                    f'repro_request_latency_seconds_bucket{{endpoint="{endpoint}",le="+Inf"}} {cumulative}'
                )
                lines.append(
                    f'repro_request_latency_seconds_sum{{endpoint="{endpoint}"}} '
                    f"{self._latency_sum[endpoint]!r}"
                )
                lines.append(
                    f'repro_request_latency_seconds_count{{endpoint="{endpoint}"}} '
                    f"{self._latency_count[endpoint]}"
                )
        if engine_stats:
            cache = engine_stats.get("cache", {})
            index = engine_stats.get("index", {})
            kernels = engine_stats.get("kernels", {})
            gauges = [
                ("repro_kernel_calls_total", "Vectorised cube-pair kernel invocations.", "counter", kernels.get("kernel_calls", 0)),
                ("repro_kernel_pairs_total", "Observation pairs scored by the vectorised kernel.", "counter", kernels.get("kernel_pairs", 0)),
                ("repro_kernel_ns_total", "Nanoseconds spent inside the vectorised kernel.", "counter", kernels.get("kernel_ns", 0)),
                ("repro_cache_hits_total", "Query-cache hits.", "counter", cache.get("hits", 0)),
                ("repro_cache_misses_total", "Query-cache misses.", "counter", cache.get("misses", 0)),
                ("repro_cache_evictions_total", "Query-cache LRU evictions.", "counter", cache.get("evictions", 0)),
                ("repro_cache_hit_ratio", "Query-cache hit ratio.", "gauge", cache.get("hit_rate", 0.0)),
                ("repro_cache_entries", "Live query-cache entries.", "gauge", cache.get("size", 0)),
                ("repro_index_generation", "Index generation (bumps on every incremental write).", "gauge", engine_stats.get("generation", 0)),
                ("repro_index_full_pairs", "Indexed full-containment pairs.", "gauge", index.get("full_pairs", 0)),
                ("repro_index_partial_pairs", "Indexed partial-containment pairs.", "gauge", index.get("partial_pairs", 0)),
                ("repro_index_complementary_pairs", "Indexed complementarity pairs.", "gauge", index.get("complementary_pairs", 0)),
                ("repro_observations", "Observations in the served space.", "gauge", engine_stats.get("observations") or index.get("observations", 0)),
            ]
            for name, help_text, kind, value in gauges:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"
