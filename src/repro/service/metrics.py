"""Service metrics in Prometheus text exposition format.

:class:`ServiceMetrics` collects per-endpoint request counters and
latency histograms on a *private* :class:`~repro.obs.registry.
MetricsRegistry` (so parallel server instances and tests never share
request state), and :meth:`ServiceMetrics.render` emits them together
with engine gauges (cache hit rate, index generation, pair counts)
**and** the process-wide registry of :func:`repro.obs.registry.
get_registry` — kernel dispatch, cubeMasking pruning, runner/parallel
resilience, storage I/O, build info — as ``text/plain; version=0.0.4``,
the format Prometheus scrapes, also perfectly readable with ``curl``.

Label values are escaped per the exposition format (``\\``, ``"`` and
newlines); the registry primitives own that logic.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_value,
    get_registry,
)

__all__ = ["ServiceMetrics"]

#: Upper bounds (seconds) of the latency histogram buckets.
LATENCY_BUCKETS = DEFAULT_BUCKETS

#: Engine-stats gauges emitted alongside the request series.  The
#: kernel counters deliberately do NOT appear here: the process-wide
#: registry already renders ``repro_kernel_*_total`` first-hand, and
#: one scrape must never carry the same series twice.
_ENGINE_GAUGES = (
    ("repro_cache_hits_total", "Query-cache hits.", "counter", ("cache", "hits")),
    ("repro_cache_misses_total", "Query-cache misses.", "counter", ("cache", "misses")),
    ("repro_cache_evictions_total", "Query-cache LRU evictions.", "counter", ("cache", "evictions")),
    ("repro_cache_hit_ratio", "Query-cache hit ratio.", "gauge", ("cache", "hit_rate")),
    ("repro_cache_entries", "Live query-cache entries.", "gauge", ("cache", "size")),
    ("repro_index_generation", "Index generation (bumps on every incremental write).", "gauge", ("generation",)),
    ("repro_index_full_pairs", "Indexed full-containment pairs.", "gauge", ("index", "full_pairs")),
    ("repro_index_partial_pairs", "Indexed partial-containment pairs.", "gauge", ("index", "partial_pairs")),
    ("repro_index_complementary_pairs", "Indexed complementarity pairs.", "gauge", ("index", "complementary_pairs")),
)


class ServiceMetrics:
    """Thread-safe request counters + latency histograms."""

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self._registry = MetricsRegistry()
        self._requests = self._registry.counter(
            "repro_requests_total",
            "HTTP requests served, by endpoint and status.",
            labelnames=("endpoint", "status"),
        )
        self._latency = self._registry.histogram(
            "repro_request_latency_seconds",
            "Request latency, by endpoint and status (RED duration).",
            buckets=self.buckets,
            labelnames=("endpoint", "status"),
        )

    # ------------------------------------------------------------------
    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one served request."""
        self._requests.inc(endpoint=endpoint, status=int(status))
        self._latency.observe(seconds, endpoint=endpoint, status=int(status))

    def request_count(self, endpoint: str | None = None) -> int:
        return int(
            sum(
                value
                for labels, value in self._requests.items()
                if endpoint is None or labels["endpoint"] == endpoint
            )
        )

    # ------------------------------------------------------------------
    def render(self, engine_stats: dict | None = None) -> str:
        """The metrics page body (Prometheus text exposition).

        Request series first, then the engine gauges, then the
        process-wide registry — three disjoint name sets, one scrape.
        """
        parts = [self._registry.render()]
        if engine_stats:
            lines: list[str] = []
            observations = engine_stats.get("observations") or engine_stats.get(
                "index", {}
            ).get("observations", 0)
            for name, help_text, kind, path in _ENGINE_GAUGES:
                value = engine_stats
                for key in path:
                    value = value.get(key, {}) if isinstance(value, dict) else 0
                if isinstance(value, dict):
                    value = 0
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                lines.append(f"{name} {format_value(value)}")
            lines.append("# HELP repro_observations Observations in the served space.")
            lines.append("# TYPE repro_observations gauge")
            lines.append(f"repro_observations {format_value(observations)}")
            parts.append("\n".join(lines) + "\n")
        parts.append(get_registry().render())
        return "".join(part for part in parts if part)
