"""A readers–writer lock for the relationship service.

Queries vastly outnumber writes in the serving workload, so plain
mutual exclusion would serialise the read path for nothing.  This lock
admits any number of concurrent readers; a writer gets exclusive
access.  Writers take priority: once a writer is waiting, newly
arriving readers block until it has run, so a steady stream of lookups
cannot starve an incremental insert indefinitely.

The implementation is a single condition variable over two counters —
no busy waiting, no thread-local bookkeeping.  The lock is neither
reentrant nor upgradable: a thread holding the read lock must release
it before writing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """Many-readers / one-writer lock with writer priority."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._waiting_writers = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._waiting_writers:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # diagnostic only
        return (
            f"RWLock(readers={self._active_readers}, writer={self._writer_active}, "
            f"waiting_writers={self._waiting_writers})"
        )
