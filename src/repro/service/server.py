"""Stdlib HTTP serving layer for the relationship query engine.

A :class:`RelationshipServer` is a ``ThreadingHTTPServer`` whose
handler translates a small JSON API onto :class:`QueryEngine` calls.
Observation ids are percent-encoded URIs in the path::

    GET    /healthz                                liveness + generation
    GET    /metrics                                Prometheus text format
    GET    /stats                                  engine/cache/index stats
    GET    /observations?dataset=&dimension=&limit=
    GET    /observations/<id>                      relationship profile
    GET    /observations/<id>/containers           full containers
    GET    /observations/<id>/contained            fully contained
    GET    /observations/<id>/complements          complementary
    GET    /observations/<id>/related?k=           top-k, all relations
    GET    /observations/<id>/partial?k=&direction=
    GET    /observations/<id>/transitive?direction=up|down&max_depth=
    POST   /observations                           incremental insert
    DELETE /observations/<id>                      incremental retract
    GET    /changes?since=&timeout=&limit=         changefeed (long-poll)
    GET    /changes/stream?since=&heartbeat=       changefeed (SSE)
    GET    /debug/vars                             registry + span snapshot
    GET    /debug/trace/<trace_id>                 this process's span store
    GET    /debug/profile?limit=&format=json       collapsed-stack profile

Thread safety comes from the engine's readers–writer lock: the handler
pool serves GETs concurrently under the shared side while POST/DELETE
take the exclusive side, so no request ever observes a half-applied
index mutation.  Every response is JSON except ``/metrics``.

The serving path is hardened (see ``docs/resilience.md``):

* every connection gets a **socket timeout**, so a stalled client
  cannot hold a handler thread forever;
* a ``X-Deadline-Ms`` request header binds a cooperative
  **deadline** that flows through the engine into every segment
  decode; an expired budget answers **504**;
* a :class:`~repro.resilience.shed.LoadShedder` bounds concurrent and
  queued requests — overload answers **503** with ``Retry-After``
  instead of growing the thread pile;
* storage reads run under the engine's circuit **breaker** (when the
  CLI installed one on the store): an open circuit answers **503**
  with ``Retry-After`` while the disk recovers;
* :meth:`RelationshipServer.graceful_shutdown` stops admissions,
  drains in-flight requests and only then stops the server — so a
  SIGTERM'd process finishes what it acknowledged.
"""

from __future__ import annotations

import json
import queue
import select
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ServiceError,
    UnknownObservationError,
)
from repro.obs import slowlog as _slowlog
from repro.obs.tracing import (
    bind_parent_span,
    bind_trace,
    new_trace_id,
    recorder,
    trace,
)
from repro.rdf.terms import URIRef
from repro.resilience.deadline import Deadline, bind_deadline, current_deadline
from repro.resilience.faults import inject
from repro.resilience.shed import LoadShedder
from repro.service.engine import QueryEngine
from repro.service.metrics import ServiceMetrics

__all__ = ["RelationshipServer", "start_server"]

#: Header carrying the client's per-request budget in milliseconds.
DEADLINE_HEADER = "X-Deadline-Ms"

#: Header carrying the caller's open span ID: the request span parents
#: onto it, so ``/debug/trace/<id>`` can assemble router and shard
#: spans into one tree across process boundaries.
SPAN_HEADER = "X-Span-Id"

#: Sentinel a route returns when it already wrote the response itself
#: (the SSE changefeed stream) — ``_dispatch`` must not reply again.
_STREAMED = object()

#: Long-poll waits are capped so a /changes request cannot pin a pool
#: worker and a shedder slot indefinitely.
MAX_LONGPOLL_SECONDS = 60.0
#: Hard cap on change records per response/SSE write burst.
MAX_CHANGE_BATCH = 1000

# Registry metrics resolved once per process; see docs/observability.md.
_SSE_METRICS = None


def _sse_metrics():
    global _SSE_METRICS
    if _SSE_METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _SSE_METRICS = {
            "events": registry.counter(
                "repro_stream_sse_events_total",
                "Change events written to SSE subscribers.",
            ),
            "streams": registry.gauge(
                "repro_stream_sse_subscribers",
                "Currently connected SSE changefeed subscribers.",
            ),
            "longpoll_wait": registry.histogram(
                "repro_stream_longpoll_wait_seconds",
                "Time /changes requests spent blocked waiting for new records.",
                buckets=(0.005, 0.05, 0.25, 1.0, 5.0, 15.0, 30.0, 60.0),
            ),
            "sse_write": registry.histogram(
                "repro_stream_sse_write_seconds",
                "Per-burst SSE serialisation+flush latency.",
                buckets=(0.0005, 0.005, 0.05, 0.25, 1.0, 5.0),
            ),
        }
    return _SSE_METRICS


class _HTTPError(Exception):
    """Internal: abort the request with this status/message."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _HandlerPool:
    """A fixed pool of worker threads draining accepted connections.

    ``ThreadingHTTPServer`` spawns one thread per connection — under a
    burst that means thousands of short-lived threads fighting for the
    GIL before the shedder even runs.  The pool caps handler
    concurrency at a fixed thread count: the accept loop stays cheap
    (enqueue only) and excess connections wait in the queue, where the
    per-connection socket timeout and the shedder still apply once a
    worker picks them up.
    """

    _STOP = object()

    def __init__(self, server, size: int):
        self._server = server
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(target=self._work, name=f"repro-http-{i}", daemon=True)
            for i in range(size)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, request, client_address) -> None:
        self._queue.put((request, client_address))

    @property
    def pending(self) -> int:
        """Accepted connections still waiting for a worker (approximate)."""
        return self._queue.qsize()

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            request, client_address = item
            # Mirrors ThreadingMixIn.process_request_thread, minus the
            # thread spawn.
            try:
                self._server.finish_request(request, client_address)
            except Exception:
                self._server.handle_error(request, client_address)
            finally:
                self._server.shutdown_request(request)

    def stop(self, timeout: float = 1.0) -> None:
        for _ in self._threads:
            self._queue.put(self._STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)


def pooled_handle(handler) -> None:
    """Serve a pool-fed keep-alive connection without pinning its worker.

    A fixed worker pool must not let persistent connections monopolise
    its threads: a handler blocked in ``readline`` waiting for a
    client's *next* request holds the worker for the whole keep-alive
    idle period, and once every worker idles like that, newly accepted
    connections starve in the queue — the classic thread-pool /
    keep-alive deadlock.  So between requests the worker waits in
    short ``select`` slices and, at each wake-up, checks the pool's
    queue: the moment other connections are waiting it stops serving
    this one (the client transparently reconnects — ``http.client``
    reopens a closed connection on the next ``request()``), and a
    connection idle for ``server.keepalive_idle`` seconds is dropped
    outright.  Active requests keep the full per-connection socket
    timeout, so stalled-*sender* protection is unchanged.

    (Pipelined requests sitting in the handler's read-ahead buffer
    would not wake ``select``; HTTP/1.1 pipelining is effectively
    nobody's client behaviour, and the worst case is the idle-timeout
    close, which pipelining clients must handle anyway.)
    """
    handler.close_connection = True
    handler.handle_one_request()
    pool = handler.server._pool
    idle = getattr(handler.server, "keepalive_idle", 5.0)
    while not handler.close_connection:
        deadline = time.monotonic() + idle
        ready = False
        while time.monotonic() < deadline:
            if pool.pending > 0:
                return  # yield the worker; queued connections go first
            try:
                readable, _, _ = select.select([handler.connection], [], [], 0.05)
            except (OSError, ValueError):  # connection torn down under us
                return
            if readable:
                ready = True
                break
        if not ready:
            return
        handler.handle_one_request()


class RelationshipHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request onto the server's query engine."""

    server: "RelationshipServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def setup(self) -> None:
        # A stalled or vanished client must not hold this handler
        # thread (and its shedder slot) forever: the socket timeout
        # turns dead air into a closed connection.
        self.timeout = self.server.request_timeout
        super().setup()

    def handle(self) -> None:
        if getattr(self.server, "_pool", None) is not None:
            pooled_handle(self)
        else:
            super().handle()

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        payload,
        content_type: str = "application/json",
        headers: dict | None = None,
    ) -> None:
        body = (
            payload.encode("utf-8")
            if isinstance(payload, str)
            else json.dumps(payload, default=str).encode("utf-8")
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _request_deadline(self) -> Deadline | None:
        """The deadline the ``X-Deadline-Ms`` header asks for, if any."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            return Deadline(float(raw))
        except ValueError:
            raise _HTTPError(
                400, f"{DEADLINE_HEADER} must be a positive number of "
                f"milliseconds, got {raw!r}"
            ) from None

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        segments = [unquote(part) for part in split.path.split("/") if part]
        query = {key: values[-1] for key, values in parse_qs(split.query).items()}
        # The request's trace ID: honoured from the caller's
        # ``X-Trace-Id`` header (so a client can stitch our spans into
        # its own trace), minted otherwise; echoed on every response.
        # ``X-Span-Id`` names the caller's open span — our request
        # span becomes its child, which is what stitches the
        # router→shard hop into one assembled tree.
        self._trace_id = self.headers.get("X-Trace-Id") or new_trace_id()
        parent_span_id = self.headers.get(SPAN_HEADER) or None
        deadline_header = self.headers.get(DEADLINE_HEADER)
        started = time.perf_counter()
        slow_token = _slowlog.begin_request()
        span_id = None
        try:
            with bind_trace(self._trace_id), bind_parent_span(parent_span_id), trace(
                "http.request", method=method, path=split.path, role=self.server.role
            ) as span:
                span_id = span.span_id
                if deadline_header is not None:
                    span.fields["deadline_ms"] = deadline_header
                self._dispatch_traced(method, segments, query, span, started)
        finally:
            _slowlog.end_request(slow_token)

    def _dispatch_traced(self, method, segments, query, span, started) -> None:
        endpoint = "unknown"
        status = 500
        try:
            with self.server.shedder.admitted():
                inject("http.handler")
                with bind_deadline(self._request_deadline()):
                    endpoint, status, payload, content_type = self._route(
                        method, segments, query
                    )
                    if payload is not _STREAMED:
                        self._reply(status, payload, content_type)
        except _HTTPError as exc:
            status = exc.status
            self._reply(status, {"error": str(exc)})
        except DeadlineExceededError as exc:
            status = 504
            self._reply(status, {"error": str(exc)})
        except (CircuitOpenError, OverloadedError) as exc:
            # Both are backpressure: tell the client when to come
            # back instead of letting it hammer a sick server.
            status = 503
            self._reply(
                status,
                {"error": str(exc)},
                headers={"Retry-After": str(max(1, round(exc.retry_after)))},
            )
        except UnknownObservationError as exc:
            status = 404
            self._reply(status, {"error": str(exc)})
        except ServiceError as exc:
            status = 409
            self._reply(status, {"error": str(exc)})
        except ReproError as exc:
            status = 400
            self._reply(status, {"error": str(exc)})
        except BrokenPipeError:
            status = 499  # client went away; nothing to send
        except Exception as exc:  # pragma: no cover - defensive
            status = 500
            self._reply(status, {"error": f"internal error: {exc}"})
        finally:
            span.fields["endpoint"] = endpoint
            span.fields["status"] = status
            elapsed = time.perf_counter() - started
            self.server.metrics.observe(endpoint, status, elapsed)
            log = _slowlog.get_slow_log()
            if log is not None:
                log.maybe_record(
                    endpoint,
                    elapsed,
                    status=status,
                    trace_id=self._trace_id,
                    span_id=span.span_id,
                    role=self.server.role,
                    deadline_ms=span.fields.get("deadline_ms"),
                )

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _engine_stats(self):
        """``engine.stats()``, degraded to ``(None, exc)`` on a storage
        outage.

        The observability endpoints must stay up precisely when storage
        is down: an open circuit breaker (or a raising store) would
        otherwise 503 the liveness probe — restart loops — and the
        ``/metrics`` scrape — blinding operators mid-incident.
        """
        from repro.errors import StorageError

        try:
            return self.server.engine.stats(), None
        except (CircuitOpenError, StorageError) as exc:
            return None, exc

    def _route(self, method: str, segments: list[str], query: dict):
        engine = self.server.engine
        if method in ("POST", "DELETE") and self.server.read_only:
            raise _HTTPError(
                405,
                "this endpoint is read-only (a cluster shard serves a "
                "routed view; writes go through the store's single writer)",
            )
        if segments == ["healthz"] and method == "GET":
            stats, outage = self._engine_stats()
            if outage is not None:
                # Alive but degraded: the process serves, storage is
                # failing fast.  200 keeps liveness probes from cycling
                # the process; the body and breaker gauge carry the bad
                # news.
                return (
                    "healthz",
                    200,
                    {
                        "status": "degraded",
                        "role": self.server.role,
                        "port": self.server.server_address[1],
                        "error": str(outage),
                    },
                    "application/json",
                )
            return (
                "healthz",
                200,
                {
                    "status": "ok",
                    "role": self.server.role,
                    # The *bound* port: with --port 0 this is the
                    # ephemeral port the OS chose, so probes and the
                    # cluster supervisor never race on fixed ports.
                    "port": self.server.server_address[1],
                    "generation": stats["generation"],
                    "observations": stats["observations"],
                    **(self.server.extra_health() if self.server.extra_health else {}),
                    # Segment-store deployments journal every write; the
                    # probe surfaces it so operators can alert on a
                    # serve process that silently lost its WAL.
                    "persistence": stats["persistence"],
                    # Storage-layer facts (segment count, WAL tail, last
                    # repair) when the engine fronts a segment store.
                    **({"storage": stats["storage"]} if "storage" in stats else {}),
                },
                "application/json",
            )
        if segments == ["metrics"] and method == "GET":
            stats, _ = self._engine_stats()  # registry-only scrape on outage
            body = self.server.metrics.render(stats)
            return "metrics", 200, body, "text/plain; version=0.0.4; charset=utf-8"
        if segments == ["stats"] and method == "GET":
            return "stats", 200, engine.stats(), "application/json"
        if segments == ["debug", "vars"] and method == "GET":
            from repro.obs.profile import get_continuous_profiler
            from repro.obs.registry import get_registry
            from repro.obs.spanstore import get_span_store

            spans = recorder()
            span_store = get_span_store()
            slow_log = _slowlog.get_slow_log()
            profiler = get_continuous_profiler()
            payload = {
                "metrics": get_registry().snapshot(),
                "top_spans": spans.top_spans(20),
                "recent_spans": spans.recent(20),
                "spanstore": span_store.stats() if span_store is not None else None,
                "slow_query_log": slow_log.stats() if slow_log is not None else None,
                "profiler": profiler.as_dict(10) if profiler is not None else None,
            }
            return "debug-vars", 200, payload, "application/json"
        if segments[:2] == ["debug", "trace"] and method == "GET":
            if len(segments) != 3:
                raise _HTTPError(404, "use /debug/trace/<trace_id>")
            from repro.obs.spanstore import get_span_store

            span_store = get_span_store()
            records = (
                span_store.spans_for(segments[2]) if span_store is not None else []
            )
            return (
                "debug-trace",
                200,
                {
                    "trace_id": segments[2],
                    "role": self.server.role,
                    "count": len(records),
                    "spans": records,
                },
                "application/json",
            )
        if segments == ["debug", "profile"] and method == "GET":
            from repro.obs.profile import get_continuous_profiler

            profiler = get_continuous_profiler()
            if profiler is None:
                raise _HTTPError(
                    404,
                    "continuous profiler not running (serve without "
                    "--no-profiler to enable it)",
                )
            limit = self._int_param(query, "limit", None)
            if query.get("format") == "json":
                return (
                    "debug-profile",
                    200,
                    profiler.as_dict(limit if limit is not None else 20),
                    "application/json",
                )
            return (
                "debug-profile",
                200,
                profiler.render(limit),
                "text/plain; charset=utf-8",
            )
        if segments and segments[0] == "changes":
            if method != "GET":
                raise _HTTPError(405, f"{method} not allowed on /changes")
            if len(segments) == 1:
                return self._read_changes(query)
            if segments == ["changes", "stream"]:
                return self._stream_changes(query)
            raise _HTTPError(404, f"no route for {'/'.join(segments)}")
        if not segments or segments[0] != "observations":
            raise _HTTPError(404, f"no route for {'/'.join(segments) or '/'}")

        if len(segments) == 1:
            if method == "GET":
                return self._list_observations(query)
            if method == "POST":
                return self._insert_observations()
            raise _HTTPError(405, f"{method} not allowed on /observations")

        uri = URIRef(segments[1])
        if len(segments) == 2:
            if method == "GET":
                return "observation", 200, engine.summary(uri), "application/json"
            if method == "DELETE":
                delta = engine.remove([uri])
                return (
                    "delete",
                    200,
                    {
                        "removed": 1,
                        "generation": engine.generation,
                        "pairs_removed": delta.total_removed(),
                    },
                    "application/json",
                )
            raise _HTTPError(405, f"{method} not allowed on /observations/<id>")

        if method != "GET" or len(segments) != 3:
            raise _HTTPError(404, f"no route for {'/'.join(segments)}")
        relation = segments[2]
        if relation == "containers":
            return "containers", 200, {"uri": uri, "containers": list(engine.containers(uri))}, "application/json"
        if relation == "contained":
            return "contained", 200, {"uri": uri, "contained": list(engine.contained(uri))}, "application/json"
        if relation == "complements":
            return "complements", 200, {"uri": uri, "complements": list(engine.complements(uri))}, "application/json"
        if relation == "related":
            k = self._int_param(query, "k", 10)
            return (
                "related",
                200,
                {"uri": uri, "related": list(engine.related(uri, k))},
                "application/json",
            )
        if relation == "partial":
            k = self._int_param(query, "k", 10)
            direction = query.get("direction", "both")
            try:
                entries = engine.top_partial(uri, k, direction)
            except ValueError as exc:
                raise _HTTPError(400, str(exc)) from None
            return (
                "partial",
                200,
                {
                    "uri": uri,
                    "partial": [
                        {"uri": other, "degree": degree, "direction": way}
                        for other, degree, way in entries
                    ],
                },
                "application/json",
            )
        if relation == "transitive":
            direction = query.get("direction", "up")
            if direction not in ("up", "down"):
                raise _HTTPError(400, f"direction must be 'up' or 'down', got {direction!r}")
            max_depth = self._int_param(query, "max_depth", None)
            walk = (
                engine.transitive_containers(uri, max_depth)
                if direction == "up"
                else engine.transitive_contained(uri, max_depth)
            )
            return (
                "transitive",
                200,
                {
                    "uri": uri,
                    "direction": direction,
                    "reachable": [{"uri": other, "depth": depth} for other, depth in walk],
                },
                "application/json",
            )
        raise _HTTPError(404, f"unknown relation {relation!r}")

    # ------------------------------------------------------------------
    # Changefeed
    # ------------------------------------------------------------------
    def _feed(self):
        feed = getattr(self.server.engine, "changefeed", None)
        if feed is None:
            raise _HTTPError(
                404,
                "no changefeed attached — serve a segment store (or pass "
                "--changefeed) to publish applied deltas",
            )
        return feed

    def _changes_cursor(self, query: dict, feed, consumer: str | None) -> int:
        """Resolve the replay cursor: explicit ``since`` wins, then the
        consumer's durable committed offset, then 0 (full replay)."""
        since = self._int_param(query, "since", None)
        if since is None:
            since = feed.committed(consumer) if consumer else 0
        if since < 0:
            raise _HTTPError(400, f"since must be >= 0, got {since}")
        return since

    def _longpoll_budget(self, query: dict, default: float = 0.0) -> float:
        """The long-poll wait, capped by policy and the request deadline."""
        timeout = min(self._float_param(query, "timeout", default), MAX_LONGPOLL_SECONDS)
        deadline = current_deadline()
        if deadline is not None:
            # Leave a slice of the budget to serialise the response.
            timeout = max(0.0, min(timeout, deadline.remaining() - 0.05))
        return timeout

    def _read_changes(self, query: dict):
        feed = self._feed()
        consumer = query.get("consumer") or None
        commit = self._int_param(query, "commit", None)
        committed = None
        if commit is not None:
            if consumer is None:
                raise _HTTPError(400, "commit= requires consumer=<name>")
            if self.server.read_only:
                raise _HTTPError(
                    405,
                    "consumer commits are read-only here; commit against "
                    "the store's single writer",
                )
            try:
                committed = feed.commit(consumer, commit)
            except ValueError as exc:
                raise _HTTPError(400, str(exc)) from None
        since = self._changes_cursor(query, feed, consumer)
        limit = min(self._int_param(query, "limit", 500), MAX_CHANGE_BATCH)
        if limit < 1:
            raise _HTTPError(400, f"limit must be >= 1, got {limit}")
        timeout = self._longpoll_budget(query)
        waited = time.perf_counter()
        records = feed.wait_for(since, timeout=timeout, limit=limit)
        _sse_metrics()["longpoll_wait"].observe(time.perf_counter() - waited)
        payload = {
            "since": since,
            "head": feed.head_offset,
            "count": len(records),
            "next": records[-1]["offset"] if records else since,
            "changes": records,
        }
        if consumer:
            payload["consumer"] = consumer
            payload["committed"] = (
                committed if committed is not None else feed.committed(consumer)
            )
        return "changes", 200, payload, "application/json"

    def _stream_changes(self, query: dict):
        """Server-Sent Events: live ordered change stream with resume.

        Each change goes out as ``id: <offset>`` + ``data: <record>``;
        a reconnecting client resumes where it stopped by sending the
        standard ``Last-Event-ID`` header (or ``since=``).  Idle
        periods carry ``: heartbeat`` comments so proxies and clients
        can tell a quiet feed from a dead one.  The stream pins one
        pool worker and one shedder slot for its lifetime — size
        ``--threads`` / ``--max-inflight`` for the subscriber count.
        """
        feed = self._feed()
        consumer = query.get("consumer") or None
        last_event = self.headers.get("Last-Event-ID")
        if last_event is not None:
            try:
                cursor = int(last_event)
            except ValueError:
                raise _HTTPError(
                    400, f"Last-Event-ID must be an offset, got {last_event!r}"
                ) from None
            if cursor < 0:
                raise _HTTPError(400, f"Last-Event-ID must be >= 0, got {cursor}")
        else:
            cursor = self._changes_cursor(query, feed, consumer)
        heartbeat = min(max(self._float_param(query, "heartbeat", 15.0), 0.5), 60.0)
        # 0 = stream until the client disconnects or the server drains.
        max_seconds = self._float_param(query, "max_seconds", 0.0)

        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        metrics = _sse_metrics()
        metrics["streams"].inc()
        started = time.monotonic()
        try:
            while True:
                if self.server.shedder.closed:
                    break  # draining: let the client reconnect elsewhere
                budget = heartbeat
                if max_seconds > 0:
                    budget = min(budget, max_seconds - (time.monotonic() - started))
                    if budget <= 0:
                        break
                records = feed.wait_for(cursor, timeout=budget, limit=MAX_CHANGE_BATCH)
                if records:
                    write_started = time.perf_counter()
                    for record in records:
                        body = json.dumps(record, default=str)
                        self.wfile.write(
                            f"id: {record['offset']}\ndata: {body}\n\n".encode("utf-8")
                        )
                    cursor = records[-1]["offset"]
                    self.wfile.flush()
                    metrics["sse_write"].observe(time.perf_counter() - write_started)
                    metrics["events"].inc(len(records))
                else:
                    self.wfile.write(b": heartbeat\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, ConnectionAbortedError, OSError):
            pass  # subscriber went away; the stream just ends
        finally:
            metrics["streams"].inc(-1.0)
        return "changes-stream", 200, _STREAMED, None

    @staticmethod
    def _float_param(query: dict, name: str, default: float) -> float:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise _HTTPError(
                400, f"query parameter {name!r} must be a number, got {raw!r}"
            ) from None

    # ------------------------------------------------------------------
    def _list_observations(self, query: dict):
        engine = self.server.engine
        dataset = URIRef(query["dataset"]) if "dataset" in query else None
        dimension = URIRef(query["dimension"]) if "dimension" in query else None
        limit = self._int_param(query, "limit", None)
        uris = engine.find(dataset=dataset, dimension=dimension, limit=limit)
        return "list", 200, {"observations": list(uris), "count": len(uris)}, "application/json"

    def _insert_observations(self):
        engine = self.server.engine
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise _HTTPError(400, "missing or invalid Content-Length") from None
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, f"invalid JSON body: {exc}") from None
        entries = payload.get("observations") if isinstance(payload, dict) else None
        if not isinstance(entries, list) or not entries:
            raise _HTTPError(400, "body must be {\"observations\": [...]} with at least one entry")
        observations = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise _HTTPError(400, f"observation entry must be an object, got {entry!r}")
            for field in ("uri", "dataset"):
                if not isinstance(entry.get(field), str):
                    raise _HTTPError(400, f"observation entry needs a string {field!r}")
            dims = entry.get("dimensions", {})
            measures = entry.get("measures", [])
            if not isinstance(dims, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in dims.items()
            ):
                raise _HTTPError(400, "dimensions must map dimension URIs to code URIs")
            if not isinstance(measures, list) or not all(isinstance(m, str) for m in measures):
                raise _HTTPError(400, "measures must be a list of URIs")
            observations.append(
                (
                    URIRef(entry["uri"]),
                    URIRef(entry["dataset"]),
                    {URIRef(k): URIRef(v) for k, v in dims.items()},
                    [URIRef(m) for m in measures],
                )
            )
        delta = engine.insert(observations)
        return (
            "insert",
            200,
            {
                "inserted": len(observations),
                "generation": engine.generation,
                "pairs_added": delta.total_added(),
                "feed_offset": engine.feed_offset,
            },
            "application/json",
        )

    @staticmethod
    def _int_param(query: dict, name: str, default):
        raw = query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise _HTTPError(400, f"query parameter {name!r} must be an integer, got {raw!r}") from None


class RelationshipServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one query engine."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: QueryEngine,
        metrics: ServiceMetrics | None = None,
        verbose: bool = False,
        request_timeout: float = 30.0,
        shedder: LoadShedder | None = None,
        threads: int = 0,
        read_only: bool = False,
        role: str = "serve",
        extra_health=None,
        keepalive_idle: float = 5.0,
        span_dir: str | None = None,
        profiler: bool = True,
        slow_log_path: str | None = None,
        slow_query_ms: float = 100.0,
    ):
        super().__init__(address, RelationshipHandler)
        self.engine = engine
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.verbose = verbose
        #: Per-connection socket timeout applied in the handler's setup.
        self.request_timeout = float(request_timeout)
        #: Idle keep-alive budget for pool-served connections (see
        #: :func:`pooled_keepalive`).
        self.keepalive_idle = float(keepalive_idle)
        self.shedder = shedder if shedder is not None else LoadShedder()
        #: Writes (POST/DELETE) answer 405 — the cluster's shard
        #: workers serve read-only views of a store owned elsewhere.
        self.read_only = bool(read_only)
        #: Reported in /healthz so probes can tell tiers apart.
        self.role = role
        #: Zero-arg callable merged into the /healthz body (e.g. a
        #: shard's partition facts).
        self.extra_health = extra_health
        #: threads > 0: fixed handler pool; 0: thread per connection.
        self._pool = _HandlerPool(self, threads) if threads and threads > 0 else None
        self.pool_threads = threads if self._pool is not None else 0
        # Every instrumented layer's series shows up (zero-valued) on
        # the very first /metrics scrape instead of trickling in as
        # compute and storage paths first run.
        from repro.obs import preregister
        from repro.obs.spanstore import install_span_store

        preregister()
        # The span store backs /debug/trace/<id>; ``span_dir`` (or
        # $REPRO_SPAN_DIR) adds the JSONL ring on disk.
        install_span_store(span_dir)
        if profiler:
            from repro.obs.profile import start_continuous_profiler

            start_continuous_profiler()
        if slow_log_path:
            from repro.obs.slowlog import install_slow_log

            install_slow_log(slow_log_path, threshold_ms=slow_query_ms)

    def process_request(self, request, client_address):
        if self._pool is not None:
            self._pool.submit(request, client_address)
        else:
            super().process_request(request, client_address)

    def server_close(self):
        super().server_close()
        if self._pool is not None:
            self._pool.stop()

    def graceful_shutdown(self, drain_timeout: float = 10.0) -> bool:
        """Drain and stop: finish what was admitted, refuse the rest.

        Closes the shedder (new requests get 503), waits up to
        ``drain_timeout`` seconds for in-flight requests to finish,
        then stops the accept loop and closes the socket.  Returns
        whether the drain completed (False = timed out with requests
        still running; their daemon threads die with the process).
        """
        self.shedder.close()
        drained = self.shedder.drain(timeout=drain_timeout)
        self.shutdown()
        self.server_close()
        return drained


def start_server(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics: ServiceMetrics | None = None,
    background: bool = True,
    verbose: bool = False,
    request_timeout: float = 30.0,
    shedder: LoadShedder | None = None,
    threads: int = 0,
    read_only: bool = False,
    role: str = "serve",
    extra_health=None,
    span_dir: str | None = None,
    profiler: bool = True,
    slow_log_path: str | None = None,
    slow_query_ms: float = 100.0,
) -> RelationshipServer:
    """Bind a :class:`RelationshipServer` and (optionally) serve.

    With ``background=True`` (the default, used by tests and the
    example) ``serve_forever`` runs on a daemon thread and the bound
    server is returned immediately — ``server.server_address`` carries
    the ephemeral port when ``port=0``.  Call ``server.shutdown()``
    (or ``server.graceful_shutdown()`` to drain first) to stop it.
    With ``background=False`` the call blocks until interrupted (the
    CLI path).
    """
    server = RelationshipServer(
        (host, port),
        engine,
        metrics,
        verbose,
        request_timeout=request_timeout,
        shedder=shedder,
        threads=threads,
        read_only=read_only,
        role=role,
        extra_health=extra_health,
        span_dir=span_dir,
        profiler=profiler,
        slow_log_path=slow_log_path,
        slow_query_ms=slow_query_ms,
    )
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
    else:
        try:
            server.serve_forever()
        finally:
            server.server_close()
    return server
