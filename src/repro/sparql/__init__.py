"""SPARQL subset engine.

Implements the fragment of SPARQL 1.1 the paper's comparator queries
need, plus the analytics features a cube workload uses:

* SELECT / ASK / CONSTRUCT query forms,
* basic graph patterns with a selectivity-based join optimizer,
* property paths (``/ | * + ^ ?``),
* ``FILTER`` expressions, ``EXISTS`` / ``NOT EXISTS``, ``IN``,
  ``IF`` / ``COALESCE`` and the common builtins,
* ``OPTIONAL``, ``UNION``, ``MINUS``, ``BIND``, ``VALUES``,
* aggregates ``COUNT/SUM/AVG/MIN/MAX/SAMPLE`` with ``GROUP BY`` and
  ``HAVING``, expression aliases ``(expr AS ?v)``,
* named graphs via ``GRAPH`` when querying an
  :class:`repro.rdf.RDFDataset`,
* solution modifiers ``DISTINCT`` / ``ORDER BY`` / ``LIMIT`` / ``OFFSET``.

Usage::

    from repro.rdf import parse_turtle
    from repro.sparql import query

    rows = query(graph, "SELECT ?s WHERE { ?s a qb:Observation }")
"""

from repro.sparql.evaluator import query, select
from repro.sparql.parser import parse_query

__all__ = ["query", "select", "parse_query"]
