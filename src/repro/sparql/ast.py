"""Abstract syntax tree for the SPARQL subset.

The node classes are plain immutable dataclasses; evaluation logic lives
in :mod:`repro.sparql.evaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.rdf.terms import Term

__all__ = [
    "Var",
    "PathLink",
    "PathInverse",
    "PathSequence",
    "PathAlternative",
    "PathMod",
    "Path",
    "TriplePattern",
    "Filter",
    "Exists",
    "OptionalPattern",
    "UnionPattern",
    "GroupPattern",
    "ValuesPattern",
    "BindPattern",
    "MinusPattern",
    "GraphGraphPattern",
    "Expression",
    "TermExpr",
    "VarExpr",
    "UnaryExpr",
    "BinaryExpr",
    "FunctionCall",
    "ExistsExpr",
    "InExpr",
    "OrderCondition",
    "Aggregate",
    "Projection",
    "SelectQuery",
    "ConstructQuery",
    "AskQuery",
]


@dataclass(frozen=True)
class Var:
    """A query variable, stored without the ``?``/``$`` sigil."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


# ----------------------------------------------------------------------
# Property paths
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathLink:
    """An atomic path step: a single predicate IRI."""

    iri: Term


@dataclass(frozen=True)
class PathInverse:
    """``^path`` — traverse the inner path backwards."""

    path: "Path"


@dataclass(frozen=True)
class PathSequence:
    """``p1/p2/...`` — paths applied one after the other."""

    steps: tuple["Path", ...]


@dataclass(frozen=True)
class PathAlternative:
    """``p1|p2|...`` — union of the component paths."""

    options: tuple["Path", ...]


@dataclass(frozen=True)
class PathMod:
    """``path*``, ``path+`` or ``path?`` closures."""

    path: "Path"
    modifier: str  # one of '*', '+', '?'


Path = Union[PathLink, PathInverse, PathSequence, PathAlternative, PathMod]


# ----------------------------------------------------------------------
# Graph patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern; the predicate may be a property path."""

    subject: Term | Var
    predicate: Term | Var | PathInverse | PathSequence | PathAlternative | PathMod | PathLink
    obj: Term | Var


@dataclass(frozen=True)
class Filter:
    """``FILTER expr`` constraint inside a group."""

    expression: "Expression"


@dataclass(frozen=True)
class Exists:
    """``FILTER [NOT] EXISTS { ... }`` used as a pattern-level constraint."""

    group: "GroupPattern"
    negated: bool


@dataclass(frozen=True)
class OptionalPattern:
    """``OPTIONAL { ... }``."""

    group: "GroupPattern"


@dataclass(frozen=True)
class UnionPattern:
    """``{ ... } UNION { ... } [UNION ...]``."""

    branches: tuple["GroupPattern", ...]


@dataclass(frozen=True)
class ValuesPattern:
    """``VALUES (?a ?b) { (x y) ... }`` inline data."""

    variables: tuple[Var, ...]
    rows: tuple[tuple[Term | None, ...], ...]


@dataclass(frozen=True)
class BindPattern:
    """``BIND(expr AS ?var)``."""

    expression: "Expression"
    variable: Var


@dataclass(frozen=True)
class MinusPattern:
    """``MINUS { ... }`` — remove compatible solutions."""

    group: "GroupPattern"


@dataclass(frozen=True)
class GraphGraphPattern:
    """``GRAPH ?g { ... }`` / ``GRAPH <iri> { ... }``."""

    name: Term | Var
    group: "GroupPattern"


@dataclass(frozen=True)
class GroupPattern:
    """A ``{ ... }`` group: ordered list of patterns and constraints."""

    elements: tuple[object, ...] = field(default_factory=tuple)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TermExpr:
    term: Term


@dataclass(frozen=True)
class VarExpr:
    var: Var


@dataclass(frozen=True)
class UnaryExpr:
    op: str  # '!' or '-'
    operand: "Expression"


@dataclass(frozen=True)
class BinaryExpr:
    op: str  # comparison, arithmetic or logical operator
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    name: str  # upper-cased builtin name, e.g. 'BOUND'
    args: tuple["Expression", ...]


@dataclass(frozen=True)
class ExistsExpr:
    """``[NOT] EXISTS { ... }`` inside an expression."""

    group: GroupPattern
    negated: bool


@dataclass(frozen=True)
class InExpr:
    """``expr [NOT] IN (e1, e2, ...)``."""

    needle: "Expression"
    haystack: tuple["Expression", ...]
    negated: bool


Expression = Union[TermExpr, VarExpr, UnaryExpr, BinaryExpr, FunctionCall, ExistsExpr, InExpr]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Aggregate:
    """An aggregate call in a projection: COUNT/SUM/AVG/MIN/MAX.

    ``argument is None`` encodes ``COUNT(*)``.
    """

    name: str  # upper-cased
    argument: "Expression | None"
    distinct: bool = False


@dataclass(frozen=True)
class Projection:
    """One SELECT item: a bare variable or ``(expr AS ?alias)``."""

    variable: Var
    expression: "Expression | Aggregate | None" = None  # None = bare variable


@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    variables: tuple[Var, ...]  # empty tuple means SELECT *
    where: GroupPattern
    distinct: bool = False
    order_by: tuple[OrderCondition, ...] = ()
    limit: int | None = None
    offset: int = 0
    projections: tuple[Projection, ...] = ()  # aliased/aggregate items
    group_by: tuple[Var, ...] = ()
    having: tuple["Expression", ...] = ()


@dataclass(frozen=True)
class ConstructQuery:
    """``CONSTRUCT { template } WHERE { ... }``."""

    template: tuple[TriplePattern, ...]
    where: GroupPattern


@dataclass(frozen=True)
class AskQuery:
    where: GroupPattern
