"""Evaluator for the SPARQL subset.

Evaluation is a straightforward streaming nested-loop index join: a
group pattern threads a list of partial solutions through its elements,
substituting bound variables before each index lookup.  Property paths
with ``*``/``+`` modifiers run a breadth-first closure over the graph.

This deliberately mirrors how a general-purpose engine behaves on the
paper's comparator queries — correct, but with no containment-specific
pruning — which is what makes the SPARQL baseline slow in Figure 5.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SPARQLEvaluationError
from repro.rdf.dataset import RDFDataset
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, Term, URIRef
from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    BinaryExpr,
    BindPattern,
    ConstructQuery,
    Exists,
    ExistsExpr,
    Expression,
    Filter,
    FunctionCall,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    MinusPattern,
    OptionalPattern,
    OrderCondition,
    Path,
    PathAlternative,
    PathInverse,
    PathLink,
    PathMod,
    PathSequence,
    Projection,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    ValuesPattern,
    Var,
    VarExpr,
)
from repro.sparql.functions import FALSE, TRUE, EvalError, call_builtin, compare_terms, ebv, numeric_value
from repro.sparql.parser import parse_query

__all__ = ["query", "select", "evaluate_group", "Solution"]

Solution = dict[Var, Term]


# ----------------------------------------------------------------------
# Property path evaluation
# ----------------------------------------------------------------------
def _graph_nodes(graph: Graph) -> Iterator[Term]:
    """All terms that occur in subject or object position."""
    seen: set[Term] = set()
    for s, _, o in graph:
        if s not in seen:
            seen.add(s)
            yield s
        if o not in seen:
            seen.add(o)
            yield o


def _path_forward(graph: Graph, path: Path, start: Term) -> Iterator[Term]:
    """All terms reachable from ``start`` over ``path`` (one application)."""
    if isinstance(path, PathLink):
        if isinstance(start, (URIRef, BNode)):
            yield from graph.objects(start, path.iri)  # type: ignore[arg-type]
        return
    if isinstance(path, PathInverse):
        yield from _path_backward(graph, path.path, start)
        return
    if isinstance(path, PathSequence):
        frontier = {start}
        for step in path.steps:
            frontier = {end for node in frontier for end in _path_forward(graph, step, node)}
            if not frontier:
                return
        yield from frontier
        return
    if isinstance(path, PathAlternative):
        seen: set[Term] = set()
        for option in path.options:
            for end in _path_forward(graph, option, start):
                if end not in seen:
                    seen.add(end)
                    yield end
        return
    if isinstance(path, PathMod):
        yield from _closure(graph, path, start, forward=True)
        return
    raise SPARQLEvaluationError(f"unsupported path {path!r}")


def _path_backward(graph: Graph, path: Path, end: Term) -> Iterator[Term]:
    """All terms from which ``end`` is reachable over ``path``."""
    if isinstance(path, PathLink):
        yield from graph.subjects(path.iri, end)
        return
    if isinstance(path, PathInverse):
        yield from _path_forward(graph, path.path, end)
        return
    if isinstance(path, PathSequence):
        frontier = {end}
        for step in reversed(path.steps):
            frontier = {s for node in frontier for s in _path_backward(graph, step, node)}
            if not frontier:
                return
        yield from frontier
        return
    if isinstance(path, PathAlternative):
        seen: set[Term] = set()
        for option in path.options:
            for node in _path_backward(graph, option, end):
                if node not in seen:
                    seen.add(node)
                    yield node
        return
    if isinstance(path, PathMod):
        yield from _closure(graph, path, end, forward=False)
        return
    raise SPARQLEvaluationError(f"unsupported path {path!r}")


def _closure(graph: Graph, mod: PathMod, origin: Term, forward: bool) -> Iterator[Term]:
    """Breadth-first closure for ``* + ?`` path modifiers."""
    step = _path_forward if forward else _path_backward
    if mod.modifier in ("*", "?"):
        yield origin
    if mod.modifier == "?":
        for node in step(graph, mod.path, origin):
            if node != origin:
                yield node
        return
    seen: set[Term] = {origin}
    frontier = [origin]
    while frontier:
        next_frontier: list[Term] = []
        for node in frontier:
            for neighbour in step(graph, mod.path, node):
                if neighbour not in seen:
                    seen.add(neighbour)
                    next_frontier.append(neighbour)
                    yield neighbour
                elif neighbour == origin and mod.modifier == "+":
                    # origin reachable in >=1 steps still counts for '+'.
                    yield origin
                    seen.add(origin)
        frontier = next_frontier


def _path_pairs(graph: Graph, path: Path, subject: Term | None, obj: Term | None) -> Iterator[tuple[Term, Term]]:
    """Yield (subject, object) pairs related by ``path``.

    ``None`` in a position means unbound.  With both ends unbound the
    candidate domain is every node of the graph (required for the
    zero-length semantics of ``*`` and ``?``).
    """
    if subject is not None:
        for end in _path_forward(graph, path, subject):
            if obj is None or obj == end:
                yield (subject, end)
        return
    if obj is not None:
        for start in _path_backward(graph, path, obj):
            yield (start, obj)
        return
    if isinstance(path, PathLink):
        for s, _, o in graph.triples(None, path.iri, None):
            yield (s, o)
        return
    for node in list(_graph_nodes(graph)):
        for end in _path_forward(graph, path, node):
            yield (node, end)


# ----------------------------------------------------------------------
# Pattern evaluation
# ----------------------------------------------------------------------
def _substitute(node: Term | Var, solution: Solution) -> Term | None:
    if isinstance(node, Var):
        return solution.get(node)
    return node


def _match_triple(graph: Graph, pattern: TriplePattern, solution: Solution) -> Iterator[Solution]:
    subject = _substitute(pattern.subject, solution)
    obj = _substitute(pattern.obj, solution)
    predicate = pattern.predicate
    if isinstance(predicate, (PathLink, PathInverse, PathSequence, PathAlternative, PathMod)):
        for s, o in _path_pairs(graph, predicate, subject, obj):
            extended = dict(solution)
            if isinstance(pattern.subject, Var):
                extended[pattern.subject] = s
            if isinstance(pattern.obj, Var):
                if subject is None and isinstance(pattern.subject, Var) and pattern.subject == pattern.obj and s != o:
                    continue
                extended[pattern.obj] = o
            yield extended
        return
    pred_term = _substitute(predicate, solution)  # type: ignore[arg-type]
    sub_q = subject if isinstance(subject, (URIRef, BNode)) or subject is None else subject
    if isinstance(subject, Literal):
        return  # literals cannot be subjects
    for s, p, o in graph.triples(sub_q, pred_term, obj):  # type: ignore[arg-type]
        extended = dict(solution)
        consistent = True
        for var_or_term, value in ((pattern.subject, s), (pattern.predicate, p), (pattern.obj, o)):
            if isinstance(var_or_term, Var):
                bound = extended.get(var_or_term)
                if bound is None:
                    extended[var_or_term] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def evaluate_group(
    graph: Graph,
    group: GroupPattern,
    bindings: Iterable[Solution],
    dataset: RDFDataset | None = None,
) -> Iterator[Solution]:
    """Thread solutions through the elements of a group pattern.

    ``dataset`` supplies the named graphs for ``GRAPH`` patterns; with
    ``None`` those patterns simply match nothing.
    """
    solutions: Iterable[Solution] = bindings
    for element in group.elements:
        solutions = _apply_element(graph, element, solutions, dataset)
    yield from solutions


def _apply_element(
    graph: Graph,
    element: object,
    solutions: Iterable[Solution],
    dataset: RDFDataset | None = None,
) -> Iterator[Solution]:
    if isinstance(element, TriplePattern):
        for solution in solutions:
            yield from _match_triple(graph, element, solution)
        return
    if isinstance(element, Filter):
        for solution in solutions:
            if _filter_passes(graph, element.expression, solution, dataset):
                yield solution
        return
    if isinstance(element, Exists):
        for solution in solutions:
            has = _group_has_solution(graph, element.group, solution, dataset)
            if has != element.negated:
                yield solution
        return
    if isinstance(element, OptionalPattern):
        for solution in solutions:
            matched = False
            for extended in evaluate_group(graph, element.group, [solution], dataset):
                matched = True
                yield extended
            if not matched:
                yield solution
        return
    if isinstance(element, UnionPattern):
        for solution in solutions:
            for branch in element.branches:
                yield from evaluate_group(graph, branch, [solution], dataset)
        return
    if isinstance(element, GraphGraphPattern):
        names = dataset.names() if dataset is not None else []
        for solution in solutions:
            target = element.name
            if isinstance(target, Var):
                bound = solution.get(target)
                candidates = [bound] if bound is not None else names
            else:
                candidates = [target]
            for name in candidates:
                if dataset is None or not isinstance(name, URIRef) or name not in names:
                    continue
                named_graph = dataset.graph(name, create=False)
                extended_base = dict(solution)
                if isinstance(element.name, Var) and element.name not in extended_base:
                    extended_base[element.name] = name
                yield from evaluate_group(named_graph, element.group, [extended_base], dataset)
        return
    if isinstance(element, BindPattern):
        for solution in solutions:
            if element.variable in solution:
                raise SPARQLEvaluationError(
                    f"BIND would rebind already-bound variable ?{element.variable.name}"
                )
            extended = dict(solution)
            try:
                extended[element.variable] = _evaluate_expression(
                    graph, element.expression, solution
                )
            except EvalError:
                pass  # expression error leaves the variable unbound
            yield extended
        return
    if isinstance(element, MinusPattern):
        removal = list(evaluate_group(graph, element.group, [{}], dataset))
        for solution in solutions:
            removed = False
            for candidate in removal:
                shared = solution.keys() & candidate.keys()
                if shared and all(solution[v] == candidate[v] for v in shared):
                    removed = True
                    break
            if not removed:
                yield solution
        return
    if isinstance(element, ValuesPattern):
        for solution in solutions:
            for row in element.rows:
                extended = dict(solution)
                consistent = True
                for var, value in zip(element.variables, row):
                    if value is None:
                        continue
                    bound = extended.get(var)
                    if bound is None:
                        extended[var] = value
                    elif bound != value:
                        consistent = False
                        break
                if consistent:
                    yield extended
        return
    if isinstance(element, GroupPattern):
        for solution in solutions:
            yield from evaluate_group(graph, element, [solution], dataset)
        return
    raise SPARQLEvaluationError(f"unsupported pattern element {element!r}")


def _group_has_solution(
    graph: Graph, group: GroupPattern, solution: Solution, dataset: RDFDataset | None = None
) -> bool:
    for _ in evaluate_group(graph, group, [dict(solution)], dataset):
        return True
    return False


def _filter_passes(
    graph: Graph, expression: Expression, solution: Solution, dataset: RDFDataset | None = None
) -> bool:
    try:
        return ebv(_evaluate_expression(graph, expression, solution, dataset))
    except EvalError:
        return False


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
def _evaluate_expression(
    graph: Graph, expression: Expression, solution: Solution, dataset: RDFDataset | None = None
) -> Term:
    if isinstance(expression, TermExpr):
        return expression.term
    if isinstance(expression, VarExpr):
        value = solution.get(expression.var)
        if value is None:
            raise EvalError(f"unbound variable {expression.var!r}")
        return value
    if isinstance(expression, UnaryExpr):
        if expression.op == "!":
            inner = ebv(_evaluate_expression(graph, expression.operand, solution))
            return FALSE if inner else TRUE
        if expression.op == "-":
            value = numeric_value(_evaluate_expression(graph, expression.operand, solution))
            return Literal(-value)
        raise EvalError(f"unknown unary operator {expression.op}")
    if isinstance(expression, BinaryExpr):
        return _evaluate_binary(graph, expression, solution)
    if isinstance(expression, FunctionCall):
        if expression.name == "BOUND":
            arg = expression.args[0]
            if not isinstance(arg, VarExpr):
                raise EvalError("BOUND requires a variable")
            return TRUE if arg.var in solution else FALSE
        if expression.name == "IF":
            if len(expression.args) != 3:
                raise EvalError("IF requires exactly three arguments")
            condition = ebv(_evaluate_expression(graph, expression.args[0], solution))
            chosen = expression.args[1] if condition else expression.args[2]
            return _evaluate_expression(graph, chosen, solution)
        if expression.name == "COALESCE":
            for arg in expression.args:
                try:
                    return _evaluate_expression(graph, arg, solution)
                except EvalError:
                    continue
            raise EvalError("COALESCE: every argument errored")
        args = [_evaluate_expression(graph, arg, solution) for arg in expression.args]
        return call_builtin(expression.name, args)
    if isinstance(expression, ExistsExpr):
        has = _group_has_solution(graph, expression.group, solution, dataset)
        return TRUE if has != expression.negated else FALSE
    if isinstance(expression, InExpr):
        needle = _evaluate_expression(graph, expression.needle, solution)
        found = False
        for option in expression.haystack:
            try:
                if compare_terms("=", needle, _evaluate_expression(graph, option, solution)):
                    found = True
                    break
            except EvalError:
                continue
        return TRUE if found != expression.negated else FALSE
    raise EvalError(f"unsupported expression {expression!r}")


def _evaluate_binary(graph: Graph, expression: BinaryExpr, solution: Solution) -> Term:
    op = expression.op
    if op == "||":
        # SPARQL 3-valued OR: an error on one side is recoverable if the
        # other side is true.
        left_err: EvalError | None = None
        try:
            if ebv(_evaluate_expression(graph, expression.left, solution)):
                return TRUE
        except EvalError as exc:
            left_err = exc
        right = ebv(_evaluate_expression(graph, expression.right, solution))
        if right:
            return TRUE
        if left_err is not None:
            raise left_err
        return FALSE
    if op == "&&":
        left_err = None
        left_value = True
        try:
            left_value = ebv(_evaluate_expression(graph, expression.left, solution))
            if not left_value:
                return FALSE
        except EvalError as exc:
            left_err = exc
        right = ebv(_evaluate_expression(graph, expression.right, solution))
        if not right:
            return FALSE
        if left_err is not None:
            raise left_err
        return TRUE
    left = _evaluate_expression(graph, expression.left, solution)
    right = _evaluate_expression(graph, expression.right, solution)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return TRUE if compare_terms(op, left, right) else FALSE
    if op in ("+", "-", "*", "/"):
        lv, rv = numeric_value(left), numeric_value(right)
        try:
            if op == "+":
                return Literal(lv + rv)
            if op == "-":
                return Literal(lv - rv)
            if op == "*":
                return Literal(lv * rv)
            return Literal(lv / rv)
        except ZeroDivisionError as exc:
            raise EvalError("division by zero") from exc
    raise EvalError(f"unknown operator {op}")


# ----------------------------------------------------------------------
# Query execution
# ----------------------------------------------------------------------
def _sort_key_for(term: Term | None):
    if term is None:
        return (-1, "")
    try:
        value = numeric_value(term)
        return (1, float(value))
    except EvalError:
        return (2,) + term._sort_key()


def _evaluate_aggregate(
    graph: Graph, aggregate: Aggregate, solutions: list[Solution]
) -> Term | None:
    """Fold an aggregate over one group; ``None`` means unbound."""
    if aggregate.argument is None:  # COUNT(*)
        if aggregate.distinct:
            distinct = {
                tuple(sorted((v.name, t) for v, t in sol.items())) for sol in solutions
            }
            return Literal(len(distinct))
        return Literal(len(solutions))
    values: list[Term] = []
    for solution in solutions:
        try:
            values.append(_evaluate_expression(graph, aggregate.argument, solution))
        except EvalError:
            continue
    if aggregate.distinct:
        unique: list[Term] = []
        seen: set[Term] = set()
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        values = unique
    name = aggregate.name
    if name == "COUNT":
        return Literal(len(values))
    if name == "SAMPLE":
        return values[0] if values else None
    if name == "SUM":
        total = 0
        for value in values:
            total = total + numeric_value(value)
        return Literal(total)
    if not values:
        return None
    if name == "AVG":
        total = 0
        for value in values:
            total = total + numeric_value(value)
        return Literal(total / len(values))
    # MIN/MAX: numeric when possible, else lexicographic on sort keys.
    try:
        keyed = [(numeric_value(v), v) for v in values]
    except EvalError:
        keyed = [(v._sort_key(), v) for v in values]  # type: ignore[misc]
    keyed.sort(key=lambda pair: pair[0])
    return keyed[0][1] if name == "MIN" else keyed[-1][1]


def _select_with_aggregates(graph: Graph, parsed: SelectQuery, solutions: list[Solution]) -> list[Solution]:
    """GROUP BY evaluation: one output row per group."""
    group_vars = parsed.group_by
    groups: dict[tuple, list[Solution]] = {}
    for solution in solutions:
        key = tuple(solution.get(var) for var in group_vars)
        groups.setdefault(key, []).append(solution)
    if not group_vars and not groups:
        groups[()] = []  # aggregates over an empty match set still yield a row
    grouped_allowed = set(group_vars)
    rows: list[Solution] = []
    for key, members in groups.items():
        row: Solution = {}
        key_bindings: Solution = {
            var: term for var, term in zip(group_vars, key) if term is not None
        }
        for projection in parsed.projections:
            if projection.expression is None:
                if projection.variable not in grouped_allowed:
                    raise SPARQLEvaluationError(
                        f"variable ?{projection.variable.name} must appear in GROUP BY"
                    )
                value = key_bindings.get(projection.variable)
                if value is not None:
                    row[projection.variable] = value
            elif isinstance(projection.expression, Aggregate):
                value = _evaluate_aggregate(graph, projection.expression, members)
                if value is not None:
                    row[projection.variable] = value
            else:
                try:
                    row[projection.variable] = _evaluate_expression(
                        graph, projection.expression, key_bindings
                    )
                except EvalError:
                    pass
        rows.append(row)
    return rows


def select(
    graph: Graph,
    parsed: SelectQuery,
    optimize: bool = True,
    dataset: RDFDataset | None = None,
) -> list[Solution]:
    """Execute a parsed SELECT query and return solution mappings.

    ``optimize`` (default) reorders basic graph patterns by estimated
    selectivity before evaluation; results are identical either way.
    """
    where = _maybe_optimize(graph, parsed.where, optimize)
    solutions = list(evaluate_group(graph, where, [{}], dataset))
    has_aggregates = any(
        isinstance(p.expression, Aggregate) for p in parsed.projections
    )
    if parsed.group_by or has_aggregates:
        projected = _select_with_aggregates(graph, parsed, solutions)
        if parsed.having:
            # HAVING evaluates over the projected row, so aggregate
            # aliases are visible to the condition.
            projected = [
                row
                for row in projected
                if all(_filter_passes(graph, condition, row) for condition in parsed.having)
            ]
    elif parsed.projections and any(p.expression is not None for p in parsed.projections):
        projected = []
        for solution in solutions:
            row: Solution = {}
            for projection in parsed.projections:
                if projection.expression is None:
                    if projection.variable in solution:
                        row[projection.variable] = solution[projection.variable]
                else:
                    try:
                        row[projection.variable] = _evaluate_expression(
                            graph, projection.expression, solution  # type: ignore[arg-type]
                        )
                    except EvalError:
                        pass
            projected.append(row)
    elif parsed.variables:
        projected = [
            {var: sol[var] for var in parsed.variables if var in sol} for sol in solutions
        ]
    else:
        projected = solutions
    if parsed.order_by:
        def order_key(sol: Solution):
            key = []
            for condition in parsed.order_by:
                try:
                    term = _evaluate_expression(graph, condition.expression, sol)
                except EvalError:
                    term = None
                part = _sort_key_for(term)
                key.append((part, condition.descending))
            return tuple(
                _Reversed(part) if desc else part for part, desc in key
            )
        projected.sort(key=order_key)
    if parsed.distinct:
        seen: set[tuple] = set()
        unique: list[Solution] = []
        for sol in projected:
            fingerprint = tuple(sorted((v.name, t) for v, t in sol.items()))
            if fingerprint not in seen:
                seen.add(fingerprint)
                unique.append(sol)
        projected = unique
    if parsed.offset:
        projected = projected[parsed.offset :]
    if parsed.limit is not None:
        projected = projected[: parsed.limit]
    return projected


class _Reversed:
    """Wrapper inverting comparison order, for ORDER BY ... DESC."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _maybe_optimize(graph: Graph, group: GroupPattern, optimize: bool) -> GroupPattern:
    if not optimize:
        return group
    from repro.sparql.optimizer import optimize_group

    return optimize_group(graph, group)


def construct(
    graph: Graph,
    parsed: ConstructQuery,
    optimize: bool = True,
    dataset: RDFDataset | None = None,
) -> Graph:
    """Execute a CONSTRUCT query; returns the built graph.

    Template triples with unbound variables or invalid positions
    (literal subjects/predicates) are skipped per solution, as the
    SPARQL specification requires.
    """
    out = Graph()
    where = _maybe_optimize(graph, parsed.where, optimize)
    for solution in evaluate_group(graph, where, [{}], dataset):
        for pattern in parsed.template:
            s = _substitute(pattern.subject, solution)
            p = _substitute(pattern.predicate, solution)  # type: ignore[arg-type]
            o = _substitute(pattern.obj, solution)
            if not isinstance(s, (URIRef, BNode)) or not isinstance(p, URIRef) or o is None:
                continue
            out.add((s, p, o))
    return out


def query(
    graph: Graph | RDFDataset, text: str, optimize: bool = True
) -> list[Solution] | bool | Graph:
    """Parse and execute ``text`` against a graph or RDF dataset.

    SELECT queries return a list of ``{Var: Term}`` solution dicts, ASK
    queries a boolean, CONSTRUCT queries a :class:`Graph`.  ``optimize``
    toggles BGP join reordering (results are order-independent).

    Passing an :class:`~repro.rdf.dataset.RDFDataset` makes ``GRAPH``
    patterns match its named graphs; plain patterns match its default
    graph.
    """
    dataset: RDFDataset | None = None
    if isinstance(graph, RDFDataset):
        dataset = graph
        graph = dataset.default
    parsed = parse_query(text)
    if isinstance(parsed, AskQuery):
        where = _maybe_optimize(graph, parsed.where, optimize)
        return _group_has_solution(graph, where, {}, dataset)
    if isinstance(parsed, ConstructQuery):
        return construct(graph, parsed, optimize=optimize, dataset=dataset)
    return select(graph, parsed, optimize=optimize, dataset=dataset)
