"""Expression evaluation helpers: builtins, comparisons and EBV.

SPARQL expression errors (unbound variables, type mismatches) are
signalled by raising :class:`EvalError`; the evaluator treats an error
inside ``FILTER`` as "condition not satisfied", matching the SPARQL
error-propagation semantics.
"""

from __future__ import annotations

import re
from decimal import Decimal
from typing import Any

from repro.errors import SPARQLEvaluationError
from repro.rdf.terms import (
    BNode,
    Literal,
    Term,
    URIRef,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)

__all__ = ["EvalError", "ebv", "compare_terms", "numeric_value", "call_builtin", "TRUE", "FALSE"]

TRUE = Literal("true", datatype=XSD_BOOLEAN)
FALSE = Literal("false", datatype=XSD_BOOLEAN)

_NUMERIC_DATATYPES = {
    XSD_INTEGER,
    XSD_DECIMAL,
    XSD_DOUBLE,
    "http://www.w3.org/2001/XMLSchema#float",
    "http://www.w3.org/2001/XMLSchema#long",
    "http://www.w3.org/2001/XMLSchema#int",
    "http://www.w3.org/2001/XMLSchema#short",
    "http://www.w3.org/2001/XMLSchema#byte",
    "http://www.w3.org/2001/XMLSchema#nonNegativeInteger",
}


class EvalError(SPARQLEvaluationError):
    """An expression could not be evaluated for the current solution."""


def is_numeric(term: Term) -> bool:
    return (
        isinstance(term, Literal)
        and term.datatype is not None
        and str(term.datatype) in _NUMERIC_DATATYPES
    )


def numeric_value(term: Term) -> int | float | Decimal:
    """Return the numeric value of a literal or raise :class:`EvalError`."""
    if not is_numeric(term):
        raise EvalError(f"not a numeric literal: {term!r}")
    value = term.to_python()  # type: ignore[union-attr]
    if not isinstance(value, (int, float, Decimal)):
        raise EvalError(f"literal does not parse as a number: {term!r}")
    return value


def ebv(term: Term) -> bool:
    """Effective boolean value per SPARQL 17.2.2."""
    if isinstance(term, Literal):
        dt = str(term.datatype) if term.datatype else None
        if dt == XSD_BOOLEAN:
            return term.lexical.strip().lower() in ("true", "1")
        if dt in _NUMERIC_DATATYPES:
            try:
                return bool(numeric_value(term))
            except EvalError:
                return False
        if dt is None or dt == XSD_STRING:
            return len(term.lexical) > 0
    raise EvalError(f"no effective boolean value for {term!r}")


def compare_terms(op: str, left: Term, right: Term) -> bool:
    """Apply a SPARQL comparison operator to two RDF terms.

    Numeric literals compare by value; strings by codepoint; other term
    combinations support only (in)equality, raising :class:`EvalError`
    for the ordering operators.
    """
    if op in ("=", "!="):
        equal = _term_equal(left, right)
        return equal if op == "=" else not equal
    if is_numeric(left) and is_numeric(right):
        lv, rv = numeric_value(left), numeric_value(right)
    elif (
        isinstance(left, Literal)
        and isinstance(right, Literal)
        and not left.language
        and not right.language
    ):
        lv, rv = left.lexical, right.lexical
    else:
        raise EvalError(f"terms are not order-comparable: {left!r} {op} {right!r}")
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    raise EvalError(f"unknown comparison operator {op!r}")


def _term_equal(left: Term, right: Term) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left == right:
            return True
        if is_numeric(left) and is_numeric(right):
            return numeric_value(left) == numeric_value(right)
        # Different datatypes and not numerically comparable: SPARQL says
        # equality is an error unless the lexical forms coincide.
        if left.datatype != right.datatype:
            raise EvalError(f"incomparable literals: {left!r} = {right!r}")
        return False
    if isinstance(left, Literal) or isinstance(right, Literal):
        return False
    return left == right


def _string_value(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, URIRef):
        return str(term)
    raise EvalError(f"STR is undefined for blank node {term!r}")


def call_builtin(name: str, args: list[Any]) -> Term:
    """Evaluate a builtin call; ``args`` are already-evaluated terms.

    ``BOUND`` is special-cased in the evaluator (it needs the raw
    variable), every other builtin arrives here.
    """
    if name == "STR":
        return Literal(_string_value(args[0]))
    if name == "DATATYPE":
        term = args[0]
        if not isinstance(term, Literal):
            raise EvalError("DATATYPE requires a literal")
        if term.language:
            return URIRef("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
        return term.datatype or URIRef(XSD_STRING)
    if name == "LANG":
        term = args[0]
        if not isinstance(term, Literal):
            raise EvalError("LANG requires a literal")
        return Literal(term.language or "")
    if name in ("ISIRI", "ISURI"):
        return TRUE if isinstance(args[0], URIRef) else FALSE
    if name == "ISBLANK":
        return TRUE if isinstance(args[0], BNode) else FALSE
    if name == "ISLITERAL":
        return TRUE if isinstance(args[0], Literal) else FALSE
    if name == "ISNUMERIC":
        return TRUE if is_numeric(args[0]) else FALSE
    if name == "SAMETERM":
        return TRUE if args[0] == args[1] and type(args[0]) is type(args[1]) else FALSE
    if name == "REGEX":
        text = _string_value(args[0])
        pattern = _string_value(args[1])
        flags = re.IGNORECASE if len(args) > 2 and "i" in _string_value(args[2]) else 0
        return TRUE if re.search(pattern, text, flags) else FALSE
    if name == "STRSTARTS":
        return TRUE if _string_value(args[0]).startswith(_string_value(args[1])) else FALSE
    if name == "STRENDS":
        return TRUE if _string_value(args[0]).endswith(_string_value(args[1])) else FALSE
    if name == "CONTAINS":
        return TRUE if _string_value(args[1]) in _string_value(args[0]) else FALSE
    if name == "STRLEN":
        return Literal(len(_string_value(args[0])))
    if name == "ABS":
        return Literal(abs(numeric_value(args[0])))
    if name == "UCASE":
        return Literal(_string_value(args[0]).upper())
    if name == "LCASE":
        return Literal(_string_value(args[0]).lower())
    if name == "CONCAT":
        return Literal("".join(_string_value(a) for a in args))
    if name == "STRBEFORE":
        text, needle = _string_value(args[0]), _string_value(args[1])
        index = text.find(needle)
        return Literal(text[:index] if index >= 0 else "")
    if name == "STRAFTER":
        text, needle = _string_value(args[0]), _string_value(args[1])
        index = text.find(needle)
        return Literal(text[index + len(needle):] if index >= 0 else "")
    if name == "SUBSTR":
        text = _string_value(args[0])
        start = int(numeric_value(args[1]))  # SPARQL is 1-based
        if len(args) > 2:
            length = int(numeric_value(args[2]))
            return Literal(text[start - 1 : start - 1 + length])
        return Literal(text[start - 1 :])
    if name == "REPLACE":
        text = _string_value(args[0])
        pattern = _string_value(args[1])
        replacement = _string_value(args[2])
        flags = re.IGNORECASE if len(args) > 3 and "i" in _string_value(args[3]) else 0
        return Literal(re.sub(pattern, replacement, text, flags=flags))
    if name == "ROUND":
        value = numeric_value(args[0])
        return Literal(float(round(value)) if isinstance(value, float) else round(value))
    if name in ("FLOOR", "CEIL"):
        import math

        value = numeric_value(args[0])
        out = math.floor(value) if name == "FLOOR" else math.ceil(value)
        return Literal(float(out) if isinstance(value, float) else int(out))
    raise EvalError(f"unknown builtin function {name}")
