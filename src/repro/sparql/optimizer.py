"""Join-order optimisation for basic graph patterns.

A real SPARQL engine (the paper benchmarks Virtuoso) reorders triple
patterns so selective patterns run first and every join stays
connected.  This module implements the classic greedy strategy:

1. estimate each pattern's cardinality against the graph's indexes
   (constants bound now, variables assumed bound if a previously
   chosen pattern binds them),
2. repeatedly pick the cheapest pattern that shares a variable with
   the already-chosen set (or the globally cheapest one when none
   connects).

Only *consecutive runs of triple patterns* are reordered; filters and
other elements keep their positions, so FILTER/OPTIONAL semantics are
untouched.  The evaluator applies this by default; pass
``optimize=False`` to :func:`repro.sparql.evaluator.select` /
``query`` to keep the textual order (the benchmarks use that to show
what the naive order costs).
"""

from __future__ import annotations

from repro.rdf.graph import Graph
from repro.sparql.ast import (
    GroupPattern,
    PathAlternative,
    PathInverse,
    PathLink,
    PathMod,
    PathSequence,
    TriplePattern,
    Var,
)

__all__ = ["optimize_group", "estimate_pattern"]

_PATH_TYPES = (PathLink, PathInverse, PathSequence, PathAlternative, PathMod)


def _is_path(predicate) -> bool:
    return isinstance(predicate, _PATH_TYPES)


def estimate_pattern(graph: Graph, pattern: TriplePattern, bound: set[Var]) -> float:
    """Rough result-cardinality estimate for one pattern.

    Uses the graph indexes where a position is a constant; variables in
    ``bound`` count as constants with an optimistic selectivity factor.
    Property paths get a pessimistic constant (their closure can blow
    up), which pushes them late in the join order.
    """
    subject = pattern.subject
    predicate = pattern.predicate
    obj = pattern.obj

    def state(node) -> str:
        if isinstance(node, Var):
            return "bound" if node in bound else "free"
        return "const"

    s, o = state(subject), state(obj)
    if _is_path(predicate):
        base = float(len(graph)) * 4.0
        for end_state in (s, o):
            if end_state == "const":
                base /= 50.0
            elif end_state == "bound":
                base /= 10.0
        return max(base, 1.0)
    p = state(predicate)

    # Exact counts for fully/partially constant shapes.
    if s == "const" and p == "const" and o == "const":
        return 0.5  # existence check
    if s == "const" and p == "const":
        return float(sum(1 for _ in graph.triples(subject, predicate, None)))  # type: ignore[arg-type]
    if p == "const" and o == "const":
        return float(sum(1 for _ in graph.triples(None, predicate, obj)))  # type: ignore[arg-type]
    if s == "const" and o == "const":
        return float(sum(1 for _ in graph.triples(subject, None, obj)))  # type: ignore[arg-type]
    if p == "const":
        count = float(sum(1 for _ in graph.triples(None, predicate, None)))  # type: ignore[arg-type]
    elif s == "const":
        count = float(sum(1 for _ in graph.triples(subject, None, None)))  # type: ignore[arg-type]
    elif o == "const":
        count = float(sum(1 for _ in graph.triples(None, None, obj)))
    else:
        count = float(len(graph))
    # Bound variables shrink the result like constants would, but we
    # cannot index on them ahead of time; use a heuristic divisor.
    for end_state in (s, p, o):
        if end_state == "bound":
            count /= 10.0
    return max(count, 0.5)


def _pattern_variables(pattern: TriplePattern) -> set[Var]:
    out: set[Var] = set()
    for node in (pattern.subject, pattern.predicate, pattern.obj):
        if isinstance(node, Var):
            out.add(node)
    return out


def _order_run(graph: Graph, run: list[TriplePattern], bound: set[Var]) -> list[TriplePattern]:
    """Greedy connected ordering of one run of triple patterns."""
    remaining = list(run)
    ordered: list[TriplePattern] = []
    current_bound = set(bound)
    while remaining:
        connected = [
            p for p in remaining if _pattern_variables(p) & current_bound
        ] or remaining
        best = min(connected, key=lambda p: estimate_pattern(graph, p, current_bound))
        remaining.remove(best)
        ordered.append(best)
        current_bound |= _pattern_variables(best)
    return ordered


def optimize_group(graph: Graph, group: GroupPattern, bound: set[Var] | None = None) -> GroupPattern:
    """Reorder consecutive triple patterns of ``group`` (recursively).

    Nested groups (OPTIONAL/UNION/EXISTS bodies) are optimised with the
    variables of the enclosing patterns assumed bound.
    """
    from repro.sparql.ast import Exists, Filter, OptionalPattern, UnionPattern

    bound = set(bound or ())
    elements: list[object] = []
    run: list[TriplePattern] = []

    def flush() -> None:
        nonlocal run
        if run:
            ordered = _order_run(graph, run, bound)
            elements.extend(ordered)
            for pattern in ordered:
                bound.update(_pattern_variables(pattern))
            run = []

    for element in group.elements:
        if isinstance(element, TriplePattern):
            run.append(element)
            continue
        flush()
        if isinstance(element, OptionalPattern):
            elements.append(OptionalPattern(optimize_group(graph, element.group, bound)))
        elif isinstance(element, UnionPattern):
            elements.append(
                UnionPattern(
                    tuple(optimize_group(graph, branch, bound) for branch in element.branches)
                )
            )
        elif isinstance(element, Exists):
            elements.append(
                Exists(optimize_group(graph, element.group, bound), element.negated)
            )
        elif isinstance(element, GroupPattern):
            elements.append(optimize_group(graph, element, bound))
        else:
            elements.append(element)
    flush()
    return GroupPattern(tuple(elements))
