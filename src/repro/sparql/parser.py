"""Recursive-descent parser for the SPARQL subset.

Grammar (informal)::

    Query        := Prologue (SelectQuery | AskQuery | ConstructQuery)
    Prologue     := (PREFIX pname: <iri>)*
    SelectQuery  := SELECT [DISTINCT] (Projection+ | '*') WHERE? Group
                    [GROUP BY Var+] [HAVING '(' Expr ')']*
                    [ORDER BY Cond+] [LIMIT n] [OFFSET n]
    Projection   := Var | '(' (Expr | Aggregate) AS Var ')'
    Aggregate    := (COUNT|SUM|AVG|MIN|MAX|SAMPLE) '(' [DISTINCT] ('*'|Expr) ')'
    Construct    := CONSTRUCT '{' Template '}' WHERE? Group
    Group        := '{' (TriplesBlock | Filter | Optional | Union | Minus
                         | Bind | Values | GraphBlock | Group)* '}'
    GraphBlock   := GRAPH (Var | iri) Group
    Filter       := FILTER ( '(' Expr ')' | [NOT] EXISTS Group | Builtin )
    Bind         := BIND '(' Expr AS Var ')'
    Path         := PathAlt ; PathAlt := PathSeq ('|' PathSeq)* ;
                    PathSeq := PathElt ('/' PathElt)* ;
                    PathElt := ['^'] PathPrimary ['*'|'+'|'?']

Expressions support ``|| && ! = != < <= > >= + - * / IN NOT IN`` and the
builtins listed in ``_BUILTIN_FUNCTIONS`` (``BOUND``, ``STR``, ``REGEX``,
``IF``, ``COALESCE``, string and numeric functions, ...).
"""

from __future__ import annotations

from repro.errors import SPARQLSyntaxError
from repro.rdf.namespaces import PREFIXES, RDF, XSD
from repro.rdf.terms import BNode, Literal, Term, URIRef, unescape_string
from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    BinaryExpr,
    BindPattern,
    ConstructQuery,
    Exists,
    ExistsExpr,
    Expression,
    Filter,
    FunctionCall,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    MinusPattern,
    OptionalPattern,
    OrderCondition,
    Path,
    PathAlternative,
    PathInverse,
    PathLink,
    PathMod,
    PathSequence,
    Projection,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    ValuesPattern,
    Var,
    VarExpr,
)
from repro.sparql.tokenizer import Token, tokenize

__all__ = ["parse_query"]

_BUILTIN_FUNCTIONS = {
    "BOUND",
    "STR",
    "DATATYPE",
    "LANG",
    "ISIRI",
    "ISURI",
    "ISBLANK",
    "ISLITERAL",
    "ISNUMERIC",
    "REGEX",
    "SAMETERM",
    "STRSTARTS",
    "STRENDS",
    "CONTAINS",
    "STRLEN",
    "ABS",
    "IF",
    "COALESCE",
    "UCASE",
    "LCASE",
    "CONCAT",
    "STRBEFORE",
    "STRAFTER",
    "SUBSTR",
    "REPLACE",
    "ROUND",
    "FLOOR",
    "CEIL",
}


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = list(tokenize(text))
        self._index = 0
        self._prefixes: dict[str, str] = {name: str(ns) for name, ns in PREFIXES.items()}

    # -- token plumbing -------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> SPARQLSyntaxError:
        token = token or self._peek()
        return SPARQLSyntaxError(message, position=token.pos)

    def _expect_op(self, value: str) -> None:
        token = self._next()
        if token.kind != "op" or token.value != value:
            raise self._error(f"expected {value!r}, found {token.value!r}", token)

    def _expect_keyword(self, name: str) -> None:
        token = self._next()
        if not token.is_keyword(name):
            raise self._error(f"expected {name}, found {token.value!r}", token)

    def _at_op(self, value: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.value == value

    # -- entry ----------------------------------------------------------
    def parse(self) -> SelectQuery | AskQuery | ConstructQuery:
        self._parse_prologue()
        token = self._peek()
        if token.is_keyword("SELECT"):
            result = self._parse_select()
        elif token.is_keyword("ASK"):
            result = self._parse_ask()
        elif token.is_keyword("CONSTRUCT"):
            result = self._parse_construct()
        else:
            raise self._error("query must start with SELECT, ASK or CONSTRUCT")
        if self._peek().kind != "eof":
            raise self._error(f"unexpected trailing input {self._peek().value!r}")
        return result

    def _parse_prologue(self) -> None:
        while self._peek().is_keyword("PREFIX"):
            self._next()
            name_token = self._next()
            if name_token.kind != "pname" or not name_token.value.endswith(":"):
                raise self._error("expected 'name:' after PREFIX", name_token)
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise self._error("expected <iri> after prefix name", iri_token)
            self._prefixes[name_token.value[:-1]] = iri_token.value[1:-1]

    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = False
        if self._peek().is_keyword("DISTINCT", "REDUCED"):
            distinct = self._next().value.upper() == "DISTINCT"
        projections: list[Projection] = []
        if self._at_op("*"):
            self._next()
        else:
            while True:
                token = self._peek()
                if token.kind == "var":
                    projections.append(Projection(Var(self._next().value[1:])))
                elif token.kind == "op" and token.value == "(":
                    projections.append(self._parse_aliased_projection())
                else:
                    break
            if not projections:
                raise self._error("SELECT needs '*' or at least one projection")
        if self._peek().is_keyword("WHERE"):
            self._next()
        where = self._parse_group()
        group_by: list[Var] = []
        having: list[Expression] = []
        order_by: list[OrderCondition] = []
        limit: int | None = None
        offset = 0
        while True:
            token = self._peek()
            if token.is_keyword("GROUP"):
                self._next()
                self._expect_keyword("BY")
                while self._peek().kind == "var":
                    group_by.append(Var(self._next().value[1:]))
                if not group_by:
                    raise self._error("GROUP BY requires at least one variable")
            elif token.is_keyword("HAVING"):
                self._next()
                self._expect_op("(")
                having.append(self._parse_expression())
                self._expect_op(")")
            elif token.is_keyword("ORDER"):
                self._next()
                self._expect_keyword("BY")
                order_by.extend(self._parse_order_conditions())
            elif token.is_keyword("LIMIT"):
                self._next()
                limit = self._parse_integer()
            elif token.is_keyword("OFFSET"):
                self._next()
                offset = self._parse_integer()
            else:
                break
        bare = tuple(p.variable for p in projections if p.expression is None)
        return SelectQuery(
            variables=bare if len(bare) == len(projections) else (),
            where=where,
            distinct=distinct,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            projections=tuple(projections),
            group_by=tuple(group_by),
            having=tuple(having),
        )

    _AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE"}

    def _parse_aliased_projection(self) -> Projection:
        """``( expr AS ?alias )`` where expr may be an aggregate call."""
        self._expect_op("(")
        token = self._peek()
        expression: Expression | Aggregate
        if token.kind == "name" and token.value.upper() in self._AGGREGATE_NAMES:
            expression = self._parse_aggregate()
        else:
            expression = self._parse_expression()
        self._expect_keyword("AS")
        var_token = self._next()
        if var_token.kind != "var":
            raise self._error("expected a variable after AS", var_token)
        self._expect_op(")")
        return Projection(Var(var_token.value[1:]), expression)

    def _parse_aggregate(self) -> Aggregate:
        name = self._next().value.upper()
        self._expect_op("(")
        distinct = False
        if self._peek().is_keyword("DISTINCT"):
            self._next()
            distinct = True
        if self._at_op("*"):
            self._next()
            if name != "COUNT":
                raise self._error(f"{name}(*) is not valid; only COUNT(*)")
            argument = None
        else:
            argument = self._parse_expression()
        self._expect_op(")")
        return Aggregate(name, argument, distinct)

    def _parse_ask(self) -> AskQuery:
        self._expect_keyword("ASK")
        if self._peek().is_keyword("WHERE"):
            self._next()
        return AskQuery(where=self._parse_group())

    def _parse_construct(self) -> ConstructQuery:
        self._expect_keyword("CONSTRUCT")
        self._expect_op("{")
        template: list[TriplePattern] = []
        while not self._at_op("}"):
            for pattern in self._parse_triples_block():
                if not isinstance(pattern.predicate, (URIRef, Var)):
                    raise self._error("property paths are not allowed in CONSTRUCT templates")
                template.append(pattern)
            if self._at_op("."):
                self._next()
        self._next()  # '}'
        if self._peek().is_keyword("WHERE"):
            self._next()
        return ConstructQuery(template=tuple(template), where=self._parse_group())

    def _parse_integer(self) -> int:
        token = self._next()
        if token.kind != "integer":
            raise self._error("expected an integer", token)
        return int(token.value)

    def _parse_order_conditions(self) -> list[OrderCondition]:
        conditions: list[OrderCondition] = []
        while True:
            token = self._peek()
            if token.is_keyword("ASC", "DESC"):
                descending = self._next().value.upper() == "DESC"
                self._expect_op("(")
                expr = self._parse_expression()
                self._expect_op(")")
                conditions.append(OrderCondition(expr, descending))
            elif token.kind == "var":
                conditions.append(OrderCondition(VarExpr(Var(self._next().value[1:]))))
            else:
                break
        if not conditions:
            raise self._error("ORDER BY requires at least one condition")
        return conditions

    # -- graph patterns ---------------------------------------------------
    def _parse_group(self) -> GroupPattern:
        self._expect_op("{")
        elements: list[object] = []
        while not self._at_op("}"):
            token = self._peek()
            if token.is_keyword("FILTER"):
                self._next()
                elements.append(self._parse_filter_body())
            elif token.is_keyword("OPTIONAL"):
                self._next()
                elements.append(OptionalPattern(self._parse_group()))
            elif token.is_keyword("MINUS"):
                self._next()
                elements.append(MinusPattern(self._parse_group()))
            elif token.is_keyword("GRAPH"):
                self._next()
                name_token = self._peek()
                if name_token.kind == "var":
                    self._next()
                    name = Var(name_token.value[1:])
                else:
                    name = self._parse_term_token()
                    if not isinstance(name, URIRef):
                        raise self._error("GRAPH requires a variable or IRI", name_token)
                elements.append(GraphGraphPattern(name, self._parse_group()))
            elif token.is_keyword("BIND"):
                self._next()
                self._expect_op("(")
                expression = self._parse_expression()
                self._expect_keyword("AS")
                var_token = self._next()
                if var_token.kind != "var":
                    raise self._error("expected a variable after AS", var_token)
                self._expect_op(")")
                elements.append(BindPattern(expression, Var(var_token.value[1:])))
            elif token.is_keyword("VALUES"):
                self._next()
                elements.append(self._parse_values())
            elif token.kind == "op" and token.value == "{":
                elements.append(self._parse_union_or_group())
            elif token.kind == "eof":
                raise self._error("unterminated group pattern")
            else:
                elements.extend(self._parse_triples_block())
            if self._at_op("."):
                self._next()
        self._next()  # consume '}'
        return GroupPattern(tuple(elements))

    def _parse_union_or_group(self) -> object:
        branches = [self._parse_group()]
        while self._peek().is_keyword("UNION"):
            self._next()
            branches.append(self._parse_group())
        if len(branches) == 1:
            return branches[0]
        return UnionPattern(tuple(branches))

    def _parse_filter_body(self) -> object:
        token = self._peek()
        if token.is_keyword("NOT"):
            self._next()
            self._expect_keyword("EXISTS")
            return Exists(self._parse_group(), negated=True)
        if token.is_keyword("EXISTS"):
            self._next()
            return Exists(self._parse_group(), negated=False)
        if self._at_op("("):
            self._next()
            expr = self._parse_expression()
            self._expect_op(")")
            return Filter(expr)
        if token.kind == "name" and token.value.upper() in _BUILTIN_FUNCTIONS:
            return Filter(self._parse_primary_expression())
        raise self._error("FILTER requires '(', EXISTS or a builtin call")

    def _parse_values(self) -> ValuesPattern:
        variables: list[Var] = []
        single = False
        if self._peek().kind == "var":
            variables.append(Var(self._next().value[1:]))
            single = True
        else:
            self._expect_op("(")
            while self._peek().kind == "var":
                variables.append(Var(self._next().value[1:]))
            self._expect_op(")")
        self._expect_op("{")
        rows: list[tuple[Term | None, ...]] = []
        while not self._at_op("}"):
            if single:
                rows.append((self._parse_values_term(),))
            else:
                self._expect_op("(")
                row: list[Term | None] = []
                while not self._at_op(")"):
                    row.append(self._parse_values_term())
                self._next()
                if len(row) != len(variables):
                    raise self._error("VALUES row arity mismatch")
                rows.append(tuple(row))
        self._next()
        return ValuesPattern(tuple(variables), tuple(rows))

    def _parse_values_term(self) -> Term | None:
        if self._peek().is_keyword("UNDEF"):
            self._next()
            return None
        node = self._parse_var_or_term()
        if isinstance(node, Var):
            raise self._error("variables are not allowed inside VALUES data")
        return node

    def _parse_triples_block(self) -> list[TriplePattern]:
        patterns: list[TriplePattern] = []
        subject = self._parse_var_or_term()
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_var_or_term()
                patterns.append(TriplePattern(subject, predicate, obj))
                if self._at_op(","):
                    self._next()
                    continue
                break
            if self._at_op(";"):
                self._next()
                if self._at_op(".") or self._at_op("}"):
                    break
                continue
            break
        return patterns

    def _parse_verb(self) -> object:
        token = self._peek()
        if token.kind == "var":
            self._next()
            return Var(token.value[1:])
        path = self._parse_path()
        # A plain one-step path is just a predicate term.
        if isinstance(path, PathLink):
            return path.iri
        return path

    # -- property paths ---------------------------------------------------
    def _parse_path(self) -> Path:
        options = [self._parse_path_sequence()]
        while self._at_op("|"):
            self._next()
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return options[0]
        return PathAlternative(tuple(options))

    def _parse_path_sequence(self) -> Path:
        steps = [self._parse_path_elt()]
        while self._at_op("/"):
            self._next()
            steps.append(self._parse_path_elt())
        if len(steps) == 1:
            return steps[0]
        return PathSequence(tuple(steps))

    def _parse_path_elt(self) -> Path:
        inverse = False
        if self._at_op("^"):
            self._next()
            inverse = True
        path = self._parse_path_primary()
        token = self._peek()
        if token.kind == "op" and token.value in ("*", "+", "?"):
            self._next()
            path = PathMod(path, token.value)
        if inverse:
            path = PathInverse(path)
        return path

    def _parse_path_primary(self) -> Path:
        token = self._peek()
        if token.kind == "op" and token.value == "(":
            self._next()
            path = self._parse_path()
            self._expect_op(")")
            return path
        if token.is_keyword("A"):
            self._next()
            return PathLink(RDF.type)
        term = self._parse_term_token()
        if not isinstance(term, URIRef):
            raise self._error("property path steps must be IRIs", token)
        return PathLink(term)

    # -- terms -------------------------------------------------------------
    def _parse_var_or_term(self) -> Term | Var:
        token = self._peek()
        if token.kind == "var":
            self._next()
            return Var(token.value[1:])
        return self._parse_term_token()

    def _parse_term_token(self) -> Term:
        token = self._next()
        if token.kind == "iri":
            return URIRef(token.value[1:-1])
        if token.kind == "pname":
            prefix, _, local = token.value.partition(":")
            if prefix not in self._prefixes:
                raise self._error(f"undefined prefix {prefix!r}", token)
            return URIRef(self._prefixes[prefix] + local)
        if token.kind == "bnode":
            return BNode(token.value[2:])
        if token.kind == "string":
            value = unescape_string(token.value[1:-1])
            nxt = self._peek()
            if nxt.kind == "langtag":
                self._next()
                return Literal(value, language=nxt.value[1:])
            if nxt.kind == "op" and nxt.value == "^^":
                self._next()
                datatype = self._parse_term_token()
                if not isinstance(datatype, URIRef):
                    raise self._error("datatype must be an IRI")
                return Literal(value, datatype=str(datatype))
            return Literal(value)
        if token.kind == "integer":
            return Literal(token.value, datatype=str(XSD.integer))
        if token.kind == "decimal":
            return Literal(token.value, datatype=str(XSD.decimal))
        if token.kind == "double":
            return Literal(token.value, datatype=str(XSD.double))
        if token.is_keyword("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=str(XSD.boolean))
        if token.is_keyword("A"):
            return RDF.type
        raise self._error(f"expected an RDF term, found {token.value!r}", token)

    # -- expressions ---------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._at_op("||"):
            self._next()
            left = BinaryExpr("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self._at_op("&&"):
            self._next()
            left = BinaryExpr("&&", left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            return BinaryExpr(token.value, left, self._parse_additive())
        negated = False
        if token.is_keyword("NOT") and self._peek(1).is_keyword("IN"):
            self._next()
            negated = True
            token = self._peek()
        if token.is_keyword("IN"):
            self._next()
            self._expect_op("(")
            options: list[Expression] = []
            if not self._at_op(")"):
                options.append(self._parse_expression())
                while self._at_op(","):
                    self._next()
                    options.append(self._parse_expression())
            self._expect_op(")")
            return InExpr(left, tuple(options), negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._peek().kind == "op" and self._peek().value in ("+", "-"):
            op = self._next().value
            left = BinaryExpr(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._peek().kind == "op" and self._peek().value in ("*", "/"):
            op = self._next().value
            left = BinaryExpr(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind == "op" and token.value in ("!", "-", "+"):
            self._next()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            return UnaryExpr(token.value, operand)
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "op" and token.value == "(":
            self._next()
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        if token.kind == "var":
            self._next()
            return VarExpr(Var(token.value[1:]))
        if token.is_keyword("NOT"):
            self._next()
            self._expect_keyword("EXISTS")
            return ExistsExpr(self._parse_group(), negated=True)
        if token.is_keyword("EXISTS"):
            self._next()
            return ExistsExpr(self._parse_group(), negated=False)
        if token.kind == "name" and token.value.upper() in _BUILTIN_FUNCTIONS:
            self._next()
            name = token.value.upper()
            self._expect_op("(")
            args: list[Expression] = []
            if not self._at_op(")"):
                args.append(self._parse_expression())
                while self._at_op(","):
                    self._next()
                    args.append(self._parse_expression())
            self._expect_op(")")
            return FunctionCall(name, tuple(args))
        return TermExpr(self._parse_term_token())


def parse_query(text: str) -> SelectQuery | AskQuery:
    """Parse SPARQL text into a query AST.

    Raises :class:`repro.errors.SPARQLSyntaxError` on invalid input.
    """
    return _Parser(text).parse()
