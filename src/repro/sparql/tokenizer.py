"""Tokenizer for the SPARQL subset grammar."""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import SPARQLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT",
    "ASK",
    "CONSTRUCT",
    "GROUP",
    "AS",
    "DISTINCT",
    "REDUCED",
    "WHERE",
    "FILTER",
    "NOT",
    "EXISTS",
    "OPTIONAL",
    "UNION",
    "MINUS",
    "BIND",
    "HAVING",
    "GRAPH",
    "PREFIX",
    "BASE",
    "LIMIT",
    "OFFSET",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "VALUES",
    "UNDEF",
    "A",
    "TRUE",
    "FALSE",
    "IN",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<string>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<langtag>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<decimal>[+-]?\d*\.\d+)
  | (?P<integer>[+-]?\d+)
  | (?P<bnode>_:[A-Za-z0-9_.\-]+)
  | (?P<pname>(?:[A-Za-z_][\w\-.]*)?:[\w\-.%]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\^\^|&&|\|\||!=|<=|>=|[{}()\[\].;,/|*+?^!=<>])
    """,
    re.VERBOSE,
)


class Token:
    """A lexical token with its kind, text and source offset."""

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value.upper() in names

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`SPARQLSyntaxError` on bad input.

    Bare names matching :data:`KEYWORDS` (case-insensitive) are emitted
    as ``keyword`` tokens; other bare names (builtin function names such
    as ``BOUND``) come out as ``name`` tokens.
    """
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SPARQLSyntaxError(f"unexpected character {text[pos]!r}", position=pos)
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value.upper() in KEYWORDS:
            kind = "keyword"
        yield Token(kind, value, match.start())
    yield Token("eof", "", length)
