"""Segmented binary storage for materialised relationship sets.

The paper's economics — materialise S_F/S_P/S_C once, serve them
cheaply forever — only hold if *reloading* the materialisation is
cheap.  This package replaces O(pairs) JSON text parsing on every
startup with:

``format``
    The struct-packed, CRC-checksummed binary segment layout (pair
    tables over a URI dictionary, float64 degree arrays, packed
    occurrence bitsets for ``map_P``).
``store``
    :class:`SegmentStore` — a directory of immutable segments
    partitioned by dataset / cube-lattice signature (so lattice-style
    dominance pruning applies at the segment level), committed through
    an atomically-replaced manifest.
``wal``
    :class:`WriteAheadLog` — the CRC-framed delta log that absorbs
    incremental writes and journalled materialisation units until
    ``repro compact`` folds them into segments.
``lazy``
    :class:`SegmentRelationshipSet` / :class:`LazyRelationshipIndex` —
    mmap-backed views that defer decoding and index building off the
    ``repro serve`` startup path (O(manifest) instead of O(pairs)).
``journal``
    :class:`SegmentJournal` — lets the fault-tolerant materialisation
    runner checkpoint its work units straight into a store's WAL.

Quickstart::

    from repro.storage import SegmentStore, save_segments

    save_segments(result, "links.rseg", space=space)   # partitioned
    store = SegmentStore.open("links.rseg")
    engine_view = store.relationship_set()             # lazy, WAL-aware
"""

from repro.storage.format import decode_segment, encode_segment
from repro.storage.journal import SegmentJournal, is_segment_checkpoint
from repro.storage.lazy import LazyRelationshipIndex, SegmentRelationshipSet
from repro.storage.store import (
    SegmentStore,
    is_segment_store,
    load_segments,
    partition_relationships,
    save_segments,
)
from repro.storage.wal import WriteAheadLog, delta_from_payload, delta_to_payload

__all__ = [
    "SegmentStore",
    "SegmentJournal",
    "SegmentRelationshipSet",
    "LazyRelationshipIndex",
    "WriteAheadLog",
    "save_segments",
    "load_segments",
    "partition_relationships",
    "is_segment_store",
    "is_segment_checkpoint",
    "encode_segment",
    "decode_segment",
    "delta_to_payload",
    "delta_from_payload",
]
