"""Binary layout of one relationship segment.

A segment is a single file holding a slice of a materialised
:class:`~repro.core.results.RelationshipSet` in a struct-packed form
that needs **no text parsing** to reload:

========================  =============================================
region                    contents
========================  =============================================
header (20 bytes)         magic ``RSEG``, version, flags, CRC-32 of the
                          payload, payload length
dimension table           the segment's dimension bus (for bitsets)
URI dictionary            every distinct observation URI, utf-8,
                          newline-joined (URIs cannot contain control
                          characters, so ``\\n`` is a safe separator)
pair tables               S_F / S_C / S_P as ``uint32`` index pairs
                          into the URI dictionary
degree array              one ``float64`` per partial pair
                          (``NaN`` = no recorded degree)
occurrence bitsets        one packed bitset per partial pair over the
                          dimension table (``map_P``; all-zero = none)
========================  =============================================

Everything is little-endian.  The CRC in the header covers the whole
payload, so a torn write (crash mid-``write``) or bit rot is detected
on open — :func:`decode_segment` raises
:class:`~repro.errors.StorageError` instead of returning garbage.

Decoding is vectorised: pair tables and degrees come out of
``array.frombytes`` over the mmap'd buffer (one C-level copy, no
per-pair Python parsing), and each distinct URI is converted to a
:class:`~repro.rdf.terms.URIRef` exactly once.
"""

from __future__ import annotations

import math
import struct
import sys
import zlib
from array import array
from typing import Sequence

from repro.errors import StorageError
from repro.core.results import RelationshipSet
from repro.rdf.terms import URIRef

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "HEADER",
    "encode_segment",
    "decode_segment",
    "segment_counts",
]

SEGMENT_MAGIC = b"RSEG"
SEGMENT_VERSION = 1

#: magic, version, flags, payload crc32, payload length
HEADER = struct.Struct("<4sHHIQ")

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _pack_u32(value: int) -> bytes:
    return _U32.pack(value)


def _uri_table(result: RelationshipSet) -> list[URIRef]:
    uris: set[URIRef] = set()
    for pairs in (result.full, result.partial, result.complementary):
        for a, b in pairs:
            uris.add(a)
            uris.add(b)
    return sorted(uris, key=str)


def _pack_pairs(pairs: Sequence[tuple[URIRef, URIRef]], index: dict[URIRef, int]) -> bytes:
    flat = array("I")
    if flat.itemsize != 4:  # pragma: no cover - exotic platforms
        return b"".join(_pack_u32(index[a]) + _pack_u32(index[b]) for a, b in pairs)
    for a, b in pairs:
        flat.append(index[a])
        flat.append(index[b])
    if sys.byteorder == "big":  # pragma: no cover
        flat.byteswap()
    return flat.tobytes()


def _unpack_u32_array(view: memoryview, count: int) -> array:
    values = array("I")
    if values.itemsize != 4:  # pragma: no cover - exotic platforms
        values = array("L")
    values.frombytes(bytes(view[: 4 * count]))
    if sys.byteorder == "big":  # pragma: no cover
        values.byteswap()
    return values


def encode_segment(result: RelationshipSet, dimensions: Sequence[URIRef] | None = None) -> bytes:
    """Serialise one relationship slice to segment bytes.

    ``dimensions`` fixes the bitset table (the dimension bus); when
    omitted it is derived from the dimensions referenced by
    ``result.partial_map``.  Output is deterministic for equal inputs
    (pairs and URIs are sorted), which the round-trip tests rely on.
    """
    if dimensions is None:
        referenced: set[URIRef] = set()
        for dims in result.partial_map.values():
            referenced |= dims
        dimensions = sorted(referenced, key=str)
    dimensions = list(dimensions)
    dim_index = {dim: position for position, dim in enumerate(dimensions)}
    mask_bytes = (len(dimensions) + 7) // 8

    uris = _uri_table(result)
    uri_index = {uri: position for position, uri in enumerate(uris)}

    full = sorted(result.full)
    complementary = sorted(result.complementary)
    partial = sorted(result.partial)

    chunks: list[bytes] = []
    dim_blob = "\n".join(str(d) for d in dimensions).encode("utf-8")
    chunks.append(_pack_u32(len(dimensions)))
    chunks.append(_pack_u32(len(dim_blob)))
    chunks.append(dim_blob)

    uri_blob = "\n".join(str(u) for u in uris).encode("utf-8")
    chunks.append(_pack_u32(len(uris)))
    chunks.append(_U64.pack(len(uri_blob)))
    chunks.append(uri_blob)

    for pairs in (full, complementary, partial):
        chunks.append(_pack_u32(len(pairs)))
        chunks.append(_pack_pairs(pairs, uri_index))

    degrees = array("d")
    for pair in partial:
        degree = result.degrees.get(pair)
        degrees.append(math.nan if degree is None else float(degree))
    if sys.byteorder == "big":  # pragma: no cover
        degrees.byteswap()
    chunks.append(degrees.tobytes())

    masks = bytearray()
    for pair in partial:
        mask = 0
        for dim in result.partial_map.get(pair, ()):
            try:
                mask |= 1 << dim_index[dim]
            except KeyError:
                raise StorageError(
                    f"partial pair {pair!r} references dimension {dim} "
                    "missing from the segment's dimension table"
                ) from None
        masks += mask.to_bytes(mask_bytes, "little")
    chunks.append(bytes(masks))

    payload = b"".join(chunks)
    header = HEADER.pack(
        SEGMENT_MAGIC, SEGMENT_VERSION, 0, zlib.crc32(payload), len(payload)
    )
    return header + payload


def _check_header(buffer, context: str) -> memoryview:
    """Validate magic/version/CRC and return the payload view."""
    view = memoryview(buffer)
    if len(view) < HEADER.size:
        raise StorageError(f"{context}: truncated segment ({len(view)} bytes)")
    magic, version, _flags, crc, length = HEADER.unpack_from(view, 0)
    if magic != SEGMENT_MAGIC:
        raise StorageError(f"{context}: not a relationship segment (magic {magic!r})")
    if version != SEGMENT_VERSION:
        raise StorageError(f"{context}: unsupported segment version {version}")
    payload = view[HEADER.size :]
    if len(payload) < length:
        raise StorageError(
            f"{context}: torn segment — header promises {length} payload "
            f"bytes, file has {len(payload)}"
        )
    payload = payload[:length]
    if zlib.crc32(payload) != crc:
        raise StorageError(f"{context}: segment payload fails its CRC check")
    return payload


def decode_segment(buffer, context: str = "segment") -> RelationshipSet:
    """Decode segment bytes (or an mmap'd view) into a relationship set."""
    payload = _check_header(buffer, context)
    offset = 0

    def take(n: int) -> memoryview:
        nonlocal offset
        if offset + n > len(payload):
            raise StorageError(f"{context}: segment payload ends prematurely")
        piece = payload[offset : offset + n]
        offset += n
        return piece

    n_dims = _U32.unpack(take(4))[0]
    dim_blob = bytes(take(_U32.unpack(take(4))[0]))
    dim_text = dim_blob.decode("utf-8")
    dimensions = [URIRef(part) for part in dim_text.split("\n")] if dim_text else []
    if len(dimensions) != n_dims:
        raise StorageError(f"{context}: dimension table count mismatch")
    mask_bytes = (n_dims + 7) // 8

    n_uris = _U32.unpack(take(4))[0]
    uri_blob = bytes(take(_U64.unpack(take(8))[0]))
    uri_text = uri_blob.decode("utf-8")
    uris = [URIRef(part) for part in uri_text.split("\n")] if uri_text else []
    if len(uris) != n_uris:
        raise StorageError(f"{context}: URI dictionary count mismatch")

    def read_pairs() -> list[tuple[URIRef, URIRef]]:
        count = _U32.unpack(take(4))[0]
        flat = _unpack_u32_array(take(8 * count), 2 * count)
        try:
            resolved = [uris[i] for i in flat]
        except IndexError:
            raise StorageError(f"{context}: pair index beyond the URI dictionary") from None
        return list(zip(resolved[0::2], resolved[1::2]))

    full = read_pairs()
    complementary = read_pairs()
    partial = read_pairs()

    degrees = array("d")
    degrees.frombytes(bytes(take(8 * len(partial))))
    if sys.byteorder == "big":  # pragma: no cover
        degrees.byteswap()

    masks = bytes(take(mask_bytes * len(partial))) if mask_bytes else b""

    result = RelationshipSet(full=full, complementary=complementary)
    degree_map = result.degrees
    partial_map = result.partial_map
    result.partial.update(partial)
    for position, pair in enumerate(partial):
        degree = degrees[position]
        if not math.isnan(degree):
            degree_map[pair] = degree
        if mask_bytes:
            mask = int.from_bytes(
                masks[position * mask_bytes : (position + 1) * mask_bytes], "little"
            )
            if mask:
                dims = frozenset(
                    dimensions[bit] for bit in range(n_dims) if mask >> bit & 1
                )
                partial_map[pair] = dims
    return result


def segment_counts(result: RelationshipSet) -> dict:
    """The manifest bookkeeping for one segment's content."""
    uris: set[URIRef] = set()
    for pairs in (result.full, result.partial, result.complementary):
        for a, b in pairs:
            uris.add(a)
            uris.add(b)
    return {
        "full": len(result.full),
        "partial": len(result.partial),
        "complementary": len(result.complementary),
        "uris": len(uris),
    }
