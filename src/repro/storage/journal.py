"""Checkpoint blocks straight into a segment store.

:class:`SegmentJournal` speaks the same protocol as the JSONL
:class:`~repro.core.runner.Checkpoint` — ``create(header)``,
``open_append()``, ``append_unit()``, ``load()``, ``close()`` — but
journals into a segment store's write-ahead log instead of a
stand-alone file.  A materialisation run pointed at a ``*.rseg``
checkpoint therefore leaves behind a store that is *immediately
servable*:

* while running (or after a crash), the store is empty segments plus a
  WAL of ``header``/``unit`` records — ``repro serve`` replays them;
* an interrupted run resumes exactly like the JSONL checkpoint (same
  header validation, same torn-tail repair, same unit-id bookkeeping);
* ``repro compact`` folds the completed WAL into real partitioned
  segments — the offline fold step, deliberately not automatic so a
  finished run stays resumable/auditable until the operator compacts.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import CheckpointError, StorageError
from repro.core.results import RelationshipSet
from repro.storage.store import SegmentStore, is_segment_store
from repro.storage.wal import set_from_payload, set_to_payload

__all__ = ["SegmentJournal", "is_segment_checkpoint"]


def is_segment_checkpoint(path: str | os.PathLike) -> bool:
    """Should this checkpoint path journal into a segment store?

    True for an existing segment-store directory, or any path spelled
    with the ``.rseg`` suffix (the creation case).
    """
    return is_segment_store(path) or str(path).endswith(".rseg")


class SegmentJournal:
    """Materialisation checkpoint backed by a segment store's WAL."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._store: SegmentStore | None = None

    def exists(self) -> bool:
        return is_segment_store(self.path)

    def _open_store(self) -> SegmentStore:
        if self._store is None:
            self._store = SegmentStore.open(self.path)
        return self._store

    # -- writing (Checkpoint protocol) ---------------------------------
    def create(self, header: dict) -> None:
        if self.exists():
            # Mirrors Checkpoint: the caller decides about overwrites.
            raise CheckpointError(f"segment checkpoint {self.path} already exists")
        self._store = SegmentStore.create(self.path)
        self._store.acquire_writer_lock()
        self._store.wal.append({"type": "header", **header})

    def open_append(self) -> None:
        store = self._open_store()
        store.acquire_writer_lock()
        store.wal.open()

    def append_unit(self, unit_id, delta: RelationshipSet) -> None:
        store = self._open_store()
        store.acquire_writer_lock()
        store.wal.append(
            {"type": "unit", "id": unit_id, "delta": set_to_payload(delta)}
        )

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    # -- reading (Checkpoint protocol) ---------------------------------
    def load(self) -> tuple[dict, dict, bool]:
        """``(header, deltas_by_unit, repaired)`` from the store's WAL."""
        store = self._open_store()
        try:
            records, repaired = store.wal.records()
        except StorageError as exc:
            raise CheckpointError(str(exc)) from exc
        if not records or records[0].get("type") != "header":
            raise CheckpointError(
                f"segment checkpoint {self.path} has no header record — "
                "either it was never a checkpoint or it has been compacted"
            )
        header = records[0]
        deltas: dict = {}
        for record in records[1:]:
            if record.get("type") != "unit" or "id" not in record:
                raise CheckpointError(f"unexpected checkpoint record: {record!r}")
            try:
                deltas[record["id"]] = set_from_payload(record.get("delta", {}))
            except StorageError as exc:
                raise CheckpointError(
                    f"malformed unit delta for {record.get('id')!r}: {exc}"
                ) from exc
        return header, deltas, repaired
