"""Lazy, zero-copy-backed views over a segment store.

``repro serve`` used to pay O(total pairs) of JSON parsing and index
building before it could bind a socket.  These two classes move that
cost off the startup path:

* :class:`SegmentRelationshipSet` — a :class:`RelationshipSet` whose
  pair sets materialise (mmap + struct decode + WAL replay) only on
  first access; counts and ``repr`` come from the manifest in O(1).
* :class:`LazyRelationshipIndex` — a :class:`RelationshipIndex` whose
  adjacency maps are built on first lookup instead of at construction.

Both rely on ``__getattr__``, which Python only consults when normal
attribute lookup fails — i.e. exactly while the underlying state has
not been materialised yet.  After the one-time build every access is a
plain slot/dict hit with zero overhead.

The server that consumes these views is a ``ThreadingHTTPServer`` whose
queries run under a *shared* read lock, so several first queries can
race into the build.  Both builds are therefore guarded by a
``threading.Lock`` with a double-checked fast path, and both are
atomic: state becomes visible only after a complete, successful build,
so a failed build (e.g. a corrupt segment) leaves the view unbuilt and
retryable instead of half-populated and silently empty.
"""

from __future__ import annotations

import threading

from repro.core.results import RelationshipSet
from repro.service.index import RelationshipIndex

__all__ = ["SegmentRelationshipSet", "LazyRelationshipIndex"]

#: The slot attributes whose first access triggers materialisation.
_SET_SLOTS = ("full", "partial", "complementary", "partial_map", "degrees")


class SegmentRelationshipSet(RelationshipSet):
    """A relationship set that decodes its segment store on demand."""

    # No __slots__ here: the subclass needs a __dict__ for its own
    # bookkeeping while the parent's slots stay unset until first use.

    def __init__(self, store, partitions=None):
        # Deliberately does NOT call super().__init__ — leaving the
        # parent's data slots unset is what makes __getattr__ fire.
        # The columnar-queue state does get initialised (empty): the
        # parent's partial/partial_map/degrees property setters drain
        # it during materialisation.
        self._pending = []
        self._pending_lock = threading.Lock()
        self._store = store
        #: None = the whole store; otherwise the (dataset, signature)
        #: partition keys this view covers (a cluster shard's slice).
        self._partitions = list(partitions) if partitions is not None else None
        if self._partitions is None:
            self._totals = store.totals()
        else:
            # Manifest-level counts for just the covered segments, so
            # counts/repr stay O(manifest) for shard views too.  WAL
            # records are excluded, exactly like the whole-store totals.
            self._totals = {"full": 0, "partial": 0, "complementary": 0}
            for entry in store.segments_in(self._partitions):
                for field in self._totals:
                    self._totals[field] += entry.get(field, 0)
        self._build_lock = threading.Lock()

    # -- lazy materialisation -----------------------------------------
    def __getattr__(self, name: str):
        if name in _SET_SLOTS:
            self._materialise()
            return getattr(self, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _materialise(self) -> None:
        if self.__dict__.get("_loaded"):
            return
        with self.__dict__["_build_lock"]:
            if self.__dict__.get("_loaded"):
                return
            from repro.obs.registry import get_registry
            from repro.obs.tracing import trace

            get_registry().counter(
                "repro_storage_lazy_materialisations_total",
                "Lazy segment views materialised on first access.",
            ).inc()
            from repro.resilience.deadline import check_deadline

            check_deadline("lazy.materialise")
            # Decode fully before assigning anything: a load failure
            # leaves every slot unset, so the next access retries
            # instead of serving empty sets.
            with trace("storage.materialise"):
                if self.__dict__["_partitions"] is not None:
                    loaded = self._store.load_partitions(self.__dict__["_partitions"])
                else:
                    loaded = self._store.load()
            self.full = loaded.full
            self.partial = loaded.partial
            self.complementary = loaded.complementary
            self.partial_map = loaded.partial_map
            self.degrees = loaded.degrees
            self._loaded = True

    @property
    def materialised(self) -> bool:
        return bool(self.__dict__.get("_loaded"))

    # -- O(1) overrides from the manifest ------------------------------
    def total(self) -> int:
        if not self.materialised:
            return int(
                self._totals.get("full", 0)
                + self._totals.get("partial", 0)
                + self._totals.get("complementary", 0)
            )
        return super().total()

    def __repr__(self) -> str:
        if not self.materialised:
            return (
                f"SegmentRelationshipSet(full={self._totals.get('full', 0)}, "
                f"partial={self._totals.get('partial', 0)}, "
                f"complementary={self._totals.get('complementary', 0)}, lazy)"
            )
        return super().__repr__().replace("RelationshipSet", "SegmentRelationshipSet", 1)


def _lazy_view(name: str) -> property:
    """Materialise-on-first-read wrapper for a parent property view.

    ``partial`` / ``partial_map`` / ``degrees`` are *properties* on
    :class:`RelationshipSet` (they drain the columnar queue), so unlike
    the plain ``full`` / ``complementary`` slots their first access
    never falls through to ``__getattr__``.  Wrap them so a read
    triggers the segment decode exactly once; the ``materialised``
    guard (not just delegation) matters because the cluster shard wraps
    ``_materialise`` with a prune step that itself reads these views.
    """
    parent = getattr(RelationshipSet, name)

    def fget(self):
        if not self.materialised:
            self._materialise()
        return parent.fget(self)

    return property(fget, parent.fset, doc=parent.__doc__)


for _name in ("partial", "partial_map", "degrees"):
    setattr(SegmentRelationshipSet, _name, _lazy_view(_name))
del _name


class LazyRelationshipIndex(RelationshipIndex):
    """A relationship index built on first lookup, not at construction.

    Construction stores the ``(result, space)`` pair and returns
    immediately; the first attribute the parent's methods touch (an
    adjacency map, ``result``...) triggers the real
    :class:`RelationshipIndex` build.  Served queries before and after
    the build behave identically — only the first one pays.

    The build runs into a *fresh* index whose state is adopted only on
    success: concurrent first lookups serialise on the build lock, and
    a build that raises keeps ``_pending`` so the index stays unbuilt
    (and retryable) rather than permanently half-populated.
    """

    def __init__(self, result: RelationshipSet, space=None):
        self.__dict__["_pending"] = (result, space)
        self.__dict__["_build_lock"] = threading.Lock()

    def __getattr__(self, name: str):
        state = self.__dict__
        lock = state.get("_build_lock")
        if lock is None or "_pending" not in state:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        with lock:
            pending = state.get("_pending")
            if pending is not None:
                built = RelationshipIndex(*pending)
                state.update(built.__dict__)
                del state["_pending"]
        return getattr(self, name)

    @property
    def built(self) -> bool:
        return "_pending" not in self.__dict__
