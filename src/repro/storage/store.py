"""The segmented relationship store: manifest + segments + WAL.

A store is a *directory* (conventionally ``links.rseg/``)::

    links.rseg/
    ├── MANIFEST.json          commit point: formats, segment list, WAL name
    ├── seg-00000-00000.rseg   immutable binary segments (repro.storage.format)
    ├── seg-00000-00001.rseg
    └── wal-00000.jsonl        write-ahead delta log (repro.storage.wal)

Segments are partitioned by the **container observation's dataset and
cube-lattice signature** (when the observation space is available at
write time).  Because full containment can only point from a cube node
to one it dominates — the container's per-dimension hierarchy levels
are component-wise ≤ the contained's — and complementarity only links
identical signatures, a lookup can prune whole segments from the
manifest alone, exactly the way cubeMasking prunes lattice nodes
(:meth:`SegmentStore.segments_for`).

Durability protocol:

* segment files are written atomically (temp + ``os.replace`` + dir
  fsync) and are immutable once referenced,
* ``MANIFEST.json`` is the single commit point: a new generation's
  segments and (empty) WAL are written *first*, then the manifest is
  atomically replaced, then stale files are unlinked — a crash at any
  point leaves a readable store (old or new, never a mix),
* every segment's byte count and CRC-32 are recorded in the manifest
  *and* in the segment's own header, so torn writes and bit rot are
  detected on open,
* a ``.lock`` file in the store directory carries an advisory
  ``flock`` held by whichever process writes the store — a serving
  engine appending WAL deltas, or ``repro compact`` rotating the WAL.
  The lock makes the two mutually exclusive *across processes*:
  compacting under a live server would rotate the WAL out from under
  its open file handle and silently lose every later acknowledged
  append to the orphaned inode.

Reads are lazy: :meth:`SegmentStore.relationship_set` returns a
:class:`~repro.storage.lazy.SegmentRelationshipSet` that answers
counts/repr from the manifest in O(1) and only mmaps + decodes the
segments (and replays the WAL) on first real access — which is what
lets ``repro serve`` start in O(manifest) instead of O(pairs).
"""

from __future__ import annotations

import json
import mmap
import os
import zlib
from pathlib import Path
from typing import Iterable, Sequence

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX: no cross-process lock
    fcntl = None

from repro.errors import StorageError
from repro.core.results import RelationshipDelta, RelationshipSet
from repro.obs.tracing import trace
from repro.resilience.deadline import check_deadline
from repro.resilience.faults import inject
from repro.rdf.terms import URIRef
from repro.storage.format import SEGMENT_VERSION, decode_segment, encode_segment, segment_counts
from repro.storage.wal import WriteAheadLog, replay_into

__all__ = [
    "SegmentStore",
    "MANIFEST_NAME",
    "LOCK_NAME",
    "SEGMENT_STORE_FORMAT",
    "SEGMENT_STORE_VERSION",
    "is_segment_store",
    "save_segments",
    "load_segments",
]

MANIFEST_NAME = "MANIFEST.json"
LOCK_NAME = ".lock"
SEGMENT_STORE_FORMAT = "repro-segments"
SEGMENT_STORE_VERSION = 1

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "segment_loads": registry.counter(
                "repro_storage_segment_loads_total",
                "Immutable segment files decoded (mmap + parse).",
            ),
            "mmap_bytes": registry.counter(
                "repro_storage_mmap_bytes_total",
                "Segment bytes memory-mapped for decoding.",
            ),
            "generations": registry.counter(
                "repro_storage_generations_total",
                "Segment generations committed (writes and compactions).",
            ),
            "bytes_written": registry.counter(
                "repro_storage_segment_bytes_written_total",
                "Segment bytes written across committed generations.",
            ),
            "compactions": registry.counter(
                "repro_storage_compactions_total",
                "WAL-folding compactions completed.",
            ),
        }
    return _METRICS

#: Manifest key for pairs whose container is unknown to the space (or
#: when no space was supplied): the single default partition.
_DEFAULT_KEY = (None, None)

Signature = tuple[int, ...]
PartitionKey = tuple[str | None, Signature | None]


def is_segment_store(path: str | os.PathLike) -> bool:
    """True when ``path`` is a directory holding a segment manifest."""
    return (Path(path) / MANIFEST_NAME).is_file()


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def _observation_keys(space) -> dict[URIRef, PartitionKey]:
    keys: dict[URIRef, PartitionKey] = {}
    if space is None:
        return keys
    for record in space.observations:
        keys[record.uri] = (str(record.dataset), space.level_signature(record.index))
    return keys


def partition_relationships(
    result: RelationshipSet, space=None
) -> dict[PartitionKey, RelationshipSet]:
    """Split a relationship set into per-(dataset, signature) slices.

    Pairs are keyed by their **container** observation (canonical first
    element for the symmetric complementarity pairs); observations the
    space does not know — or every pair, when no space is given — land
    in the default partition.
    """
    keys = _observation_keys(space)
    parts: dict[PartitionKey, RelationshipSet] = {}

    def slot(uri: URIRef) -> RelationshipSet:
        key = keys.get(uri, _DEFAULT_KEY)
        part = parts.get(key)
        if part is None:
            part = parts[key] = RelationshipSet()
        return part

    for a, b in result.full:
        slot(a).full.add((a, b))
    for a, b in result.complementary:
        slot(a).complementary.add((a, b))
    for pair in result.partial:
        part = slot(pair[0])
        part.partial.add(pair)
        dims = result.partial_map.get(pair)
        if dims:
            part.partial_map[pair] = dims
        degree = result.degrees.get(pair)
        if degree is not None:
            part.degrees[pair] = degree
    if not parts:
        parts[_DEFAULT_KEY] = RelationshipSet()
    return parts


def _dominates(container_sig: Sequence[int], contained_sig: Sequence[int]) -> bool:
    """Lattice dominance: the container sits at equal-or-coarser levels."""
    return len(container_sig) == len(contained_sig) and all(
        a <= b for a, b in zip(container_sig, contained_sig)
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class SegmentStore:
    """One segmented, WAL-fronted relationship store directory."""

    def __init__(self, path: str | os.PathLike, manifest: dict):
        self.path = Path(path)
        self.manifest = manifest
        self._wal: WriteAheadLog | None = None
        self._lock_handle = None
        #: Optional :class:`repro.resilience.breaker.CircuitBreaker`
        #: guarding segment decodes; installed by the serving layer so
        #: a failing disk fails fast instead of stalling every request.
        self.breaker = None

    # -- the writer lock ----------------------------------------------
    def acquire_writer_lock(self) -> None:
        """Take the store's cross-process writer lock (idempotent).

        A non-blocking ``flock`` on ``<store>/.lock``: exactly one
        process may write (WAL appends, segment rewrites, compaction)
        at a time.  Raises :class:`StorageError` when another process —
        typically a running ``repro serve`` — already holds it.  The
        lock is released by :meth:`close` or process exit.
        """
        if self._lock_handle is not None or fcntl is None:
            return
        self.path.mkdir(parents=True, exist_ok=True)
        handle = open(self.path / LOCK_NAME, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise StorageError(
                f"{self.path} is locked by another writer (a running "
                "`repro serve`?) — stop it before compacting or rewriting "
                "the store"
            ) from None
        self._lock_handle = handle

    def release_writer_lock(self) -> None:
        if self._lock_handle is not None:
            self._lock_handle.close()  # closing the fd drops the flock
            self._lock_handle = None

    # -- opening / creating -------------------------------------------
    @classmethod
    def open(cls, path: str | os.PathLike) -> "SegmentStore":
        target = Path(path)
        manifest_path = target / MANIFEST_NAME
        try:
            payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StorageError(f"{target} is not a segment store (no {MANIFEST_NAME})") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"cannot read segment manifest {manifest_path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != SEGMENT_STORE_FORMAT:
            raise StorageError(
                f"{manifest_path}: not a segment-store manifest "
                f"(format {payload.get('format') if isinstance(payload, dict) else payload!r})"
            )
        if payload.get("version") != SEGMENT_STORE_VERSION:
            raise StorageError(
                f"unsupported segment-store version {payload.get('version')!r}"
            )
        return cls(target, payload)

    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        result: RelationshipSet | None = None,
        space=None,
    ) -> "SegmentStore":
        """Initialise a store directory (empty unless ``result`` given)."""
        store = cls(Path(path), {})
        store.write(result if result is not None else RelationshipSet(), space)
        return store

    # -- writing a generation -----------------------------------------
    def write(self, result: RelationshipSet, space=None) -> None:
        """Write ``result`` as a fresh segment generation (fold point).

        New segments and a new empty WAL are written first; the
        atomically-replaced manifest commits them; stale files from the
        previous generation are then removed (best effort — the
        manifest never references them, so leftovers are inert).

        The writer lock is held for the duration (and released again
        unless this store already holds it as a long-lived writer), so
        a rewrite cannot race a serving process's WAL appends.
        """
        held = self._lock_handle is not None
        self.acquire_writer_lock()
        try:
            with trace("storage.write"):
                self._write_locked(result, space)
        finally:
            if not held:
                self.release_writer_lock()

    def _write_locked(self, result: RelationshipSet, space=None) -> None:
        from repro.store import atomic_write_bytes, atomic_write_text

        self.path.mkdir(parents=True, exist_ok=True)
        generation = int(self.manifest.get("generation", -1)) + 1
        dimensions = list(getattr(space, "dimensions", ()) or ())

        entries = []
        parts = partition_relationships(result, space)
        for index, key in enumerate(sorted(parts, key=lambda k: (k[0] or "", k[1] or ()))):
            part = parts[key]
            blob = encode_segment(part, dimensions=dimensions if dimensions else None)
            name = f"seg-{generation:05d}-{index:05d}.rseg"
            inject("segment.write")
            atomic_write_bytes(self.path / name, blob)
            counts = segment_counts(part)
            entries.append(
                {
                    "name": name,
                    "bytes": len(blob),
                    "crc32": zlib.crc32(blob),
                    "dataset": key[0],
                    "signature": list(key[1]) if key[1] is not None else None,
                    **counts,
                }
            )

        wal_name = f"wal-{generation:05d}.jsonl"
        self._close_wal()
        (self.path / wal_name).touch()

        manifest = {
            "format": SEGMENT_STORE_FORMAT,
            "version": SEGMENT_STORE_VERSION,
            "segment_version": SEGMENT_VERSION,
            "generation": generation,
            "wal": wal_name,
            "segments": entries,
            "totals": {
                "full": len(result.full),
                "partial": len(result.partial),
                "complementary": len(result.complementary),
            },
        }
        action = inject("manifest.commit", torn_capable=True)
        if action is not None:
            # The manifest replace is atomic, so a "torn" commit means
            # dying *before* the commit point: new segments on disk,
            # old manifest still authoritative.
            action.die()
        atomic_write_text(self.path / MANIFEST_NAME, json.dumps(manifest, indent=2))
        old_manifest, self.manifest = self.manifest, manifest
        self._cleanup(old_manifest)
        metrics = _metrics()
        metrics["generations"].inc()
        metrics["bytes_written"].inc(sum(entry["bytes"] for entry in entries))

    def _cleanup(self, old_manifest: dict) -> None:
        keep = {entry["name"] for entry in self.manifest.get("segments", ())}
        keep.add(self.manifest.get("wal"))
        keep.add(MANIFEST_NAME)
        stale = {entry["name"] for entry in old_manifest.get("segments", ())}
        if old_manifest.get("wal"):
            stale.add(old_manifest["wal"])
        for name in stale - keep:
            try:
                (self.path / name).unlink()
            except OSError:
                pass

    # -- reading -------------------------------------------------------
    def _decode_file(self, name: str) -> RelationshipSet:
        """Decode one segment, under the breaker when one is installed.

        The breaker observes only genuine storage outcomes: a deadline
        expiring mid-read is the *request's* failure, not the disk's,
        and must not trip reads open for everyone else — so it is
        checked before the breaker is consulted.
        """
        check_deadline("segment.read")
        if self.breaker is not None:
            return self.breaker.call(self._decode_file_inner, name)
        return self._decode_file_inner(name)

    def _decode_file_inner(self, name: str) -> RelationshipSet:
        inject("segment.read")
        path = self.path / name
        try:
            with open(path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size == 0:
                    raise StorageError(f"{path}: empty segment file")
                metrics = _metrics()
                metrics["segment_loads"].inc()
                metrics["mmap_bytes"].inc(size)
                inject("mmap.attach")
                view = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                try:
                    return decode_segment(view, context=str(path))
                finally:
                    try:
                        view.close()
                    except BufferError:
                        # A decode error keeps memoryviews alive in the
                        # propagating traceback; the map is released when
                        # the exception is.
                        pass
        except FileNotFoundError:
            raise StorageError(f"missing segment file {path} (listed in manifest)") from None
        except OSError as exc:
            raise StorageError(f"cannot map segment {path}: {exc}") from exc

    def load(self, apply_wal: bool = True, verify_manifest: bool = True) -> RelationshipSet:
        """Eagerly decode every segment (and replay the WAL) into a set."""
        with trace(
            "storage.load", segments=len(self.manifest.get("segments", ()))
        ):
            result = RelationshipSet()
            for entry in self.manifest.get("segments", ()):
                part = self._decode_file(entry["name"])
                if verify_manifest:
                    counts = segment_counts(part)
                    for field in ("full", "partial", "complementary"):
                        if counts[field] != entry.get(field):
                            raise StorageError(
                                f"segment {entry['name']}: manifest promises "
                                f"{entry.get(field)} {field} pair(s), file holds {counts[field]}"
                            )
                result.merge(part)
            if apply_wal:
                check_deadline("wal.replay")
                records, _ = self.wal.records()
                replay_into(result, records)
            return result

    def load_subset(
        self,
        dataset: URIRef | str | None = None,
        signature: Sequence[int] | None = None,
        mode: str = "containers",
    ) -> RelationshipSet:
        """Decode only the segments that can be related to the query.

        The segment-level analogue of cubeMasking's lattice pruning —
        see :meth:`segments_for` for the dominance rules.  WAL deltas
        (unpartitioned by nature) are always replayed on top.
        """
        result = RelationshipSet()
        for entry in self.segments_for(dataset=dataset, signature=signature, mode=mode):
            result.merge(self._decode_file(entry["name"]))
        records, _ = self.wal.records()
        replay_into(result, records)
        return result

    def segments_for(
        self,
        dataset: URIRef | str | None = None,
        signature: Sequence[int] | None = None,
        mode: str = "containers",
    ) -> list[dict]:
        """Manifest entries whose partition can be related to the query.

        ``mode="containers"`` keeps segments whose container signature
        *dominates* the query signature (could contain it);
        ``mode="contained"`` keeps segments the query dominates;
        ``mode="complements"`` keeps exact-signature segments.  A
        ``dataset`` filter keeps that dataset's segments.  Segments
        without a recorded partition key (the default partition, or
        pre-partitioning stores) are never pruned.
        """
        if mode not in ("containers", "contained", "complements"):
            raise ValueError(f"unknown pruning mode {mode!r}")
        query_sig = tuple(signature) if signature is not None else None
        kept = []
        for entry in self.manifest.get("segments", ()):
            seg_dataset = entry.get("dataset")
            seg_sig = entry.get("signature")
            if seg_dataset is None and seg_sig is None:
                kept.append(entry)  # default partition: cannot prune
                continue
            if dataset is not None and seg_dataset is not None and str(dataset) != seg_dataset:
                continue
            if query_sig is not None and seg_sig is not None:
                seg_sig = tuple(seg_sig)
                if mode == "containers" and not _dominates(seg_sig, query_sig):
                    continue
                if mode == "contained" and not _dominates(query_sig, seg_sig):
                    continue
                if mode == "complements" and seg_sig != query_sig:
                    continue
            kept.append(entry)
        return kept

    def relationship_set(self, partitions: Iterable[PartitionKey] | None = None):
        """The lazy, WAL-aware view served by ``repro serve``.

        With ``partitions`` the view covers only those partition keys —
        the shard worker's slice of the store (``repro.cluster``).
        """
        from repro.storage.lazy import SegmentRelationshipSet

        return SegmentRelationshipSet(self, partitions=partitions)

    def partition_keys(self) -> list[PartitionKey]:
        """Distinct ``(dataset, signature)`` partition keys, manifest order.

        The unit the cluster tier shards by: every segment belongs to
        exactly one key, and the consistent-hash ring assigns keys (not
        files) to shards, so a compaction that renames segment files
        never moves data between shards.
        """
        seen: set[PartitionKey] = set()
        keys: list[PartitionKey] = []
        for entry in self.manifest.get("segments", ()):
            signature = entry.get("signature")
            key = (
                entry.get("dataset"),
                tuple(signature) if signature is not None else None,
            )
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    def segments_in(self, partitions: Iterable[PartitionKey]) -> list[dict]:
        """Manifest entries whose partition key is in ``partitions``."""
        wanted = {
            (dataset, tuple(signature) if signature is not None else None)
            for dataset, signature in partitions
        }
        return [
            entry
            for entry in self.manifest.get("segments", ())
            if (
                entry.get("dataset"),
                tuple(entry["signature"]) if entry.get("signature") is not None else None,
            )
            in wanted
        ]

    def load_partitions(
        self, partitions: Iterable[PartitionKey], apply_wal: bool = True
    ) -> RelationshipSet:
        """Decode only the named partitions' segments into one set.

        The shard worker's load path: each of N shard processes decodes
        ~1/N of the segment bytes.  The files are attached with the
        same ``mmap`` path as every other read, so replicas of one
        shard share the kernel page cache instead of duplicating heap.
        WAL deltas are unpartitioned and cheap; they are replayed in
        full so an acknowledged write is visible on every shard that
        could be asked about it.
        """
        entries = self.segments_in(partitions)
        with trace("storage.load_partitions", segments=len(entries)):
            result = RelationshipSet()
            for entry in entries:
                result.merge(self._decode_file(entry["name"]))
            if apply_wal:
                check_deadline("wal.replay")
                records, _ = self.wal.records()
                replay_into(result, records)
            return result

    # -- the WAL -------------------------------------------------------
    @property
    def wal(self) -> WriteAheadLog:
        current = self.manifest.get("wal") or "wal-00000.jsonl"
        if self._wal is None or self._wal.path.name != current:
            self._close_wal()
            self._wal = WriteAheadLog(self.path / current)
        return self._wal

    def _close_wal(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def append_delta(self, delta: RelationshipDelta) -> None:
        """Durably journal one incremental write (the engine's sink).

        Takes (and keeps) the writer lock, so a concurrent ``repro
        compact`` in another process cannot rotate the WAL this append
        lands in.
        """
        self.acquire_writer_lock()
        self.wal.append_delta(delta)

    def close(self) -> None:
        self._close_wal()
        self.release_writer_lock()

    # -- maintenance ---------------------------------------------------
    def compact(self, space=None) -> dict:
        """Fold the WAL into a fresh segment generation.

        Returns ``{"folded": <records>, "segments": <count>}``.  With a
        ``space`` the new generation is re-partitioned by dataset and
        lattice signature; without one, existing partition keys are
        lost (everything lands in the default segment).

        Refuses (:class:`StorageError`) while another process holds
        the writer lock — compacting under a live server would rotate
        the WAL out from under its open handle and lose its later
        acknowledged appends.
        """
        held = self._lock_handle is not None
        self.acquire_writer_lock()
        try:
            with trace("storage.compact"):
                records, _ = self.wal.records()
                result = self.load(apply_wal=True)
                self.write(result, space)
                _metrics()["compactions"].inc()
        finally:
            if not held:
                self.release_writer_lock()
        return {"folded": len(records), "segments": len(self.manifest["segments"])}

    # -- introspection -------------------------------------------------
    def totals(self) -> dict:
        return dict(self.manifest.get("totals", {}))

    def describe(self) -> dict:
        """Manifest-level facts (O(1), no segment decode)."""
        segment_bytes = sum(entry["bytes"] for entry in self.manifest.get("segments", ()))
        try:
            wal_records = self.wal.record_count()
        except StorageError:
            wal_records = None
        return {
            "format": SEGMENT_STORE_FORMAT,
            "version": SEGMENT_STORE_VERSION,
            "generation": self.manifest.get("generation", 0),
            "segments": len(self.manifest.get("segments", ())),
            "partitioned": any(
                entry.get("dataset") is not None or entry.get("signature") is not None
                for entry in self.manifest.get("segments", ())
            ),
            "bytes": segment_bytes + self.wal.size_bytes(),
            "wal_records": wal_records,
            "wal_bytes": self.wal.size_bytes(),
            "last_repair": self.wal.last_repair,
            "totals": self.totals(),
        }

    def __repr__(self) -> str:
        info = self.describe()
        return (
            f"SegmentStore({str(self.path)!r}, segments={info['segments']}, "
            f"generation={info['generation']}, wal_records={info['wal_records']})"
        )


# ----------------------------------------------------------------------
# Module-level conveniences (the repro.store integration points)
# ----------------------------------------------------------------------
def save_segments(
    result: RelationshipSet, path: str | os.PathLike, space=None
) -> SegmentStore:
    """Write ``result`` as a segment store at ``path`` (a directory)."""
    if is_segment_store(path):
        store = SegmentStore.open(path)
        store.write(result, space)
        return store
    return SegmentStore.create(path, result, space)


def load_segments(path: str | os.PathLike, lazy: bool = False):
    """Load a segment store: eager by default, lazy on request."""
    store = SegmentStore.open(path)
    if lazy:
        return store.relationship_set()
    return store.load()
