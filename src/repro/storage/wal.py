"""The segment store's write-ahead delta log.

Segments are immutable; every mutation between compactions — an
incremental ``insert``/``remove`` served by the query engine, or a
completed work unit of a materialisation run checkpointing straight
into a store — lands here first, as one CRC-framed JSON record per
line::

    <crc32 as 8 hex chars> <record JSON>\\n

The CRC covers the record text exactly, so a torn final line (crash
mid-append) is detected and dropped on replay — the same contract as
the materialisation checkpoint of :mod:`repro.core.runner` — while
corruption anywhere *else* raises :class:`~repro.errors.StorageError`
(a mid-file flip is damage, not an interrupted append).  Appends are
flushed and fsynced before returning, so an acknowledged write
survives a crash.

Record types:

``{"type": "delta", ...}``
    One :class:`~repro.core.results.RelationshipDelta` — added/removed
    pairs plus the metadata of the added partial pairs.
``{"type": "header", ...}`` / ``{"type": "unit", ...}``
    The materialisation journal records written when a
    :class:`~repro.storage.journal.SegmentJournal` checkpoints a run
    into the store; ``unit`` deltas are add-only relationship slices.

:func:`replay_into` folds every record type into a
:class:`~repro.core.results.RelationshipSet`, which is how a reader
reconstructs the live state: segments ⊎ WAL.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path

from repro.errors import StorageError
from repro.core.results import RelationshipDelta, RelationshipSet
from repro.rdf.terms import URIRef

__all__ = [
    "WriteAheadLog",
    "delta_to_payload",
    "delta_from_payload",
    "set_to_payload",
    "set_from_payload",
    "replay_into",
]

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "appends": registry.counter(
                "repro_wal_appends_total",
                "Records durably appended to write-ahead logs.",
            ),
            "append_bytes": registry.counter(
                "repro_wal_append_bytes_total",
                "Bytes durably appended to write-ahead logs.",
            ),
            "repairs": registry.counter(
                "repro_wal_repairs_total",
                "Torn WAL tails dropped during replay or reopen.",
            ),
            "replayed": registry.counter(
                "repro_wal_replayed_records_total",
                "WAL records folded into live relationship state.",
            ),
        }
    return _METRICS


# ----------------------------------------------------------------------
# Payload (de)serialisation
# ----------------------------------------------------------------------
def _pairs_out(pairs) -> list[list[str]]:
    return sorted([str(a), str(b)] for a, b in pairs)


def _pairs_in(entries) -> set[tuple[URIRef, URIRef]]:
    try:
        return {(URIRef(a), URIRef(b)) for a, b in entries}
    except (TypeError, ValueError) as exc:
        raise StorageError(f"malformed WAL pair list: {entries!r}") from exc


def _partial_out(pairs, partial_map, degrees) -> list[dict]:
    return [
        {
            "container": str(a),
            "contained": str(b),
            "degree": degrees.get((a, b)),
            "dimensions": sorted(str(d) for d in partial_map.get((a, b), ())),
        }
        for a, b in sorted(pairs)
    ]


def delta_to_payload(delta: RelationshipDelta) -> dict:
    """Serialise a relationship delta to its WAL JSON form."""
    return {
        "added": {
            "full": _pairs_out(delta.added_full),
            "complementary": _pairs_out(delta.added_complementary),
            "partial": _partial_out(delta.added_partial, delta.partial_map, delta.degrees),
        },
        "removed": {
            "full": _pairs_out(delta.removed_full),
            "complementary": _pairs_out(delta.removed_complementary),
            "partial": _pairs_out(delta.removed_partial),
        },
    }


def delta_from_payload(payload: dict) -> RelationshipDelta:
    if not isinstance(payload, dict):
        raise StorageError(f"malformed WAL delta payload: {payload!r}")
    added = payload.get("added", {})
    removed = payload.get("removed", {})
    delta = RelationshipDelta(
        added_full=_pairs_in(added.get("full", ())),
        added_complementary=_pairs_in(added.get("complementary", ())),
        removed_full=_pairs_in(removed.get("full", ())),
        removed_partial=_pairs_in(removed.get("partial", ())),
        removed_complementary=_pairs_in(removed.get("complementary", ())),
    )
    for entry in added.get("partial", ()):
        try:
            pair = (URIRef(entry["container"]), URIRef(entry["contained"]))
        except (TypeError, KeyError) as exc:
            raise StorageError(f"malformed WAL partial entry: {entry!r}") from exc
        delta.added_partial.add(pair)
        degree = entry.get("degree")
        if degree is not None:
            delta.degrees[pair] = float(degree)
        dims = frozenset(URIRef(d) for d in entry.get("dimensions", ()))
        if dims:
            delta.partial_map[pair] = dims
    return delta


def set_to_payload(result: RelationshipSet) -> dict:
    """Serialise a full relationship slice (a journalled work unit)."""
    return {
        "full": _pairs_out(result.full),
        "complementary": _pairs_out(result.complementary),
        "partial": _partial_out(result.partial, result.partial_map, result.degrees),
    }


def set_from_payload(payload: dict) -> RelationshipSet:
    if not isinstance(payload, dict):
        raise StorageError(f"malformed WAL unit payload: {payload!r}")
    result = RelationshipSet(
        full=_pairs_in(payload.get("full", ())),
        complementary=_pairs_in(payload.get("complementary", ())),
    )
    for entry in payload.get("partial", ()):
        try:
            container, contained = URIRef(entry["container"]), URIRef(entry["contained"])
        except (TypeError, KeyError) as exc:
            raise StorageError(f"malformed WAL partial entry: {entry!r}") from exc
        dims = frozenset(URIRef(d) for d in entry.get("dimensions", ()))
        degree = entry.get("degree")
        result.add_partial(
            container,
            contained,
            dims if dims else None,
            float(degree) if degree is not None else None,
        )
    return result


# ----------------------------------------------------------------------
# The log itself
# ----------------------------------------------------------------------
class WriteAheadLog:
    """CRC-framed, fsynced, append-only record log."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._handle = None
        #: Unix timestamp of the last torn-tail repair this instance
        #: performed, or ``None``; surfaced by ``SegmentStore.describe``.
        self.last_repair: float | None = None

    # -- writing -------------------------------------------------------
    def open(self, truncate: bool = False) -> None:
        if not truncate:
            self._ensure_clean_tail()
        self._handle = open(self.path, "w" if truncate else "a", encoding="utf-8")

    def _ensure_clean_tail(self) -> None:
        """Repair/terminate an unterminated final line before appending.

        Durability must not depend on every caller having replayed the
        log first: appending after an unrepaired torn tail would
        concatenate the new fsynced record onto the torn line, and the
        combined line would later be dropped by tail repair.  A torn
        final line is dropped (atomic rewrite, as in :meth:`records`);
        a *valid* record merely missing its newline is terminated in
        place.
        """

        def ends_with_newline() -> bool | None:
            try:
                with open(self.path, "rb") as handle:
                    handle.seek(0, os.SEEK_END)
                    if handle.tell() == 0:
                        return True
                    handle.seek(-1, os.SEEK_END)
                    return handle.read(1) == b"\n"
            except (FileNotFoundError, OSError):
                return None

        if ends_with_newline() is not False:
            return
        self.records(repair=True)  # drops an unparsable torn final line
        if ends_with_newline() is False:
            # The final line was a valid record, just unterminated
            # (e.g. torn exactly at the newline): terminate it so the
            # next append starts a fresh line.
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def append(self, record: dict) -> None:
        """Durably append one record (opens the log on first use)."""
        from repro.resilience.faults import inject

        if self._handle is None:
            self.open()
        body = json.dumps(record, sort_keys=True, ensure_ascii=False)
        line = f"{zlib.crc32(body.encode('utf-8')):08x} {body}\n"
        action = inject("wal.append", torn_capable=True)
        if action is not None:
            # A torn fault: persist only a prefix of the record — the
            # crash-mid-append the CRC framing exists to survive.
            torn = line[: max(1, int(len(line) * action.fraction))]
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            action.die()
        self._handle.write(line)
        self._handle.flush()
        inject("wal.fsync")
        os.fsync(self._handle.fileno())
        metrics = _metrics()
        metrics["appends"].inc()
        metrics["append_bytes"].inc(len(line.encode("utf-8")))

    def append_delta(self, delta: RelationshipDelta) -> None:
        self.append({"type": "delta", **delta_to_payload(delta)})

    # -- reading -------------------------------------------------------
    def records(self, repair: bool = True) -> tuple[list[dict], bool]:
        """Parse the log into ``(records, repaired)``.

        A torn *final* line is dropped; with ``repair=True`` the file is
        rewritten without it (atomically), mirroring the checkpoint
        loader's crash recovery.  A bad CRC or unparsable record before
        the final line raises :class:`StorageError`.
        """
        from repro.store import atomic_write_text

        if not self.path.exists():
            return [], False
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: list[dict] = []
        repaired = False
        for index, line in enumerate(lines):
            record = self._parse_line(line)
            if record is None:
                if index == len(lines) - 1:
                    repaired = True
                    if repair:
                        atomic_write_text(
                            self.path, "".join(l + "\n" for l in lines[:index])
                        )
                        self.last_repair = time.time()
                        _metrics()["repairs"].inc()
                    break
                raise StorageError(
                    f"corrupt WAL {self.path} at record {index + 1}: CRC mismatch"
                )
            records.append(record)
        return records, repaired

    @staticmethod
    def _parse_line(line: str) -> dict | None:
        if len(line) < 10 or line[8] != " ":
            return None
        crc_text, body = line[:8], line[9:]
        try:
            expected = int(crc_text, 16)
        except ValueError:
            return None
        if zlib.crc32(body.encode("utf-8")) != expected:
            return None
        try:
            record = json.loads(body)
        except json.JSONDecodeError:
            return None
        return record if isinstance(record, dict) else None

    def record_count(self) -> int:
        records, _ = self.records(repair=False)
        return len(records)

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0


def replay_into(result: RelationshipSet, records) -> int:
    """Fold WAL records into ``result``; returns how many applied.

    ``delta`` records apply added *and removed* pairs; ``unit`` records
    (journalled materialisation blocks) merge their add-only slice;
    ``header`` records carry no relationship data.
    """
    applied = 0
    for record in records:
        kind = record.get("type")
        if kind == "delta":
            result.apply_delta(delta_from_payload(record))
            applied += 1
        elif kind == "unit":
            result.merge(set_from_payload(record.get("delta", {})))
            applied += 1
        elif kind == "header":
            continue
        else:
            raise StorageError(f"unknown WAL record type {kind!r}")
    if applied:
        _metrics()["replayed"].inc(applied)
    return applied
