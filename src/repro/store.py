"""Persistence for materialised relationship sets.

The paper's use case is *batch materialisation*: relationships are
computed offline and consulted during online exploration.  Two formats:

* RDF (Turtle/N-Triples) via :func:`repro.qb.writer.relationships_to_graph`
  — interoperable, queryable with SPARQL,
* a compact JSON format (this module) — fast to reload, keeps the
  partial-containment degrees and dimension annotations losslessly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.errors import ReproError
from repro.core.results import RelationshipSet
from repro.rdf.terms import URIRef

__all__ = ["save_relationships", "load_relationships", "dumps_relationships", "loads_relationships"]

_FORMAT_VERSION = 1


def dumps_relationships(result: RelationshipSet, indent: int | None = None) -> str:
    """Serialize a relationship set to a JSON string."""
    payload = {
        "version": _FORMAT_VERSION,
        "full": sorted([str(a), str(b)] for a, b in result.full),
        "complementary": sorted([str(a), str(b)] for a, b in result.complementary),
        "partial": [
            {
                "container": str(a),
                "contained": str(b),
                "degree": result.degrees.get((a, b)),
                "dimensions": sorted(str(d) for d in result.partial_map.get((a, b), ())),
            }
            for a, b in sorted(result.partial)
        ],
    }
    return json.dumps(payload, indent=indent)


def loads_relationships(text: str) -> RelationshipSet:
    """Parse a relationship set from its JSON string form."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid relationship JSON: {exc}") from exc
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ReproError(f"unsupported relationship-store version {version!r}")
    result = RelationshipSet()
    for a, b in payload.get("full", ()):
        result.add_full(URIRef(a), URIRef(b))
    for a, b in payload.get("complementary", ()):
        result.add_complementary(URIRef(a), URIRef(b))
    for entry in payload.get("partial", ()):
        dims = frozenset(URIRef(d) for d in entry.get("dimensions", ()))
        result.add_partial(
            URIRef(entry["container"]),
            URIRef(entry["contained"]),
            dims if dims else None,
            entry.get("degree"),
        )
    return result


def save_relationships(result: RelationshipSet, target: str | Path | IO[str], indent: int | None = None) -> None:
    """Write the JSON form to a path or text file object."""
    text = dumps_relationships(result, indent=indent)
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
        return
    Path(target).write_text(text)  # type: ignore[arg-type]


def load_relationships(source: str | Path | IO[str]) -> RelationshipSet:
    """Read the JSON form from a path or text file object."""
    if hasattr(source, "read"):
        return loads_relationships(source.read())  # type: ignore[union-attr]
    return loads_relationships(Path(source).read_text())  # type: ignore[arg-type]
