"""Persistence for materialised relationship sets.

The paper's use case is *batch materialisation*: relationships are
computed offline and consulted during online exploration.  Two formats:

* RDF (Turtle/N-Triples) via :func:`repro.qb.writer.relationships_to_graph`
  — interoperable, queryable with SPARQL,
* a compact JSON format (this module) — fast to reload, keeps the
  partial-containment degrees and dimension annotations losslessly —
  optionally gzip-compressed (``*.json.gz``) for CI artifacts,
* the binary segment store of :mod:`repro.storage` (``*.rseg``) —
  struct-packed, CRC-checked, mmap-loaded; the production format.

:func:`save_relationships` / :func:`load_relationships` route between
all three by path (:func:`detect_store_kind`), so every caller gets
format auto-detection for free.

Writes are crash-safe: :func:`save_relationships` (and the other
path-writing helpers that build on :func:`atomic_write_text`) never
leave a half-written file behind — content lands in a same-directory
temporary file that is ``os.replace``d into place only once fully
flushed, so an interrupted save preserves whatever was there before.
"""

from __future__ import annotations

import json
import os
import tempfile
from numbers import Real
from pathlib import Path
from typing import IO

from repro.errors import ReproError
from repro.core.results import RelationshipSet
from repro.rdf.terms import URIRef

__all__ = [
    "save_relationships",
    "load_relationships",
    "dumps_relationships",
    "loads_relationships",
    "profile_relationships",
    "describe_store",
    "detect_store_kind",
    "atomic_write_text",
    "atomic_write_bytes",
    "STORE_FORMAT",
    "STORE_VERSION",
]

#: The ``format`` tag written into every store payload, so a reader can
#: tell a relationship store apart from any other JSON file without
#: guessing from the filename.
STORE_FORMAT = "repro-relationships"
STORE_VERSION = 1

# Backward-compatible aliases (pre-existing internal name).
_FORMAT_VERSION = STORE_VERSION


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a completed rename survives a crash.

    ``os.replace`` makes the swap atomic, but the *rename itself* lives
    in the directory inode — without fsyncing it, a power cut can roll
    the directory back to the old entry even though the data file was
    fsynced.  Best effort: some filesystems refuse ``open``/``fsync``
    on directories, which leaves the (weaker) pre-existing guarantee.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: str | Path, data, mode: str) -> None:
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    handle = tempfile.NamedTemporaryFile(
        mode, dir=directory, prefix=f".{target.name}.", suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The content goes to a temporary file in the *same directory* (so the
    final rename cannot cross filesystems), is flushed and fsynced, and
    is then ``os.replace``d over ``path``; the directory entry is then
    fsynced too, so the rename itself is crash-durable.  A crash at any
    point leaves either the old file or the new one — never a torn mix.
    """
    _atomic_write(path, text, "w")


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Binary twin of :func:`atomic_write_text` (segment files, gzip)."""
    _atomic_write(path, data, "wb")


def dumps_relationships(result: RelationshipSet, indent: int | None = None) -> str:
    """Serialize a relationship set to a JSON string."""
    payload = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "full": sorted([str(a), str(b)] for a, b in result.full),
        "complementary": sorted([str(a), str(b)] for a, b in result.complementary),
        "partial": [
            {
                "container": str(a),
                "contained": str(b),
                "degree": result.degrees.get((a, b)),
                "dimensions": sorted(str(d) for d in result.partial_map.get((a, b), ())),
            }
            for a, b in sorted(result.partial)
        ],
    }
    return json.dumps(payload, indent=indent)


def _pair_entries(payload: dict, key: str):
    """Validated ``[container, contained]`` pairs under ``key``."""
    entries = payload.get(key, ())
    if not isinstance(entries, (list, tuple)):
        raise ReproError(f"malformed relationship store: {key!r} must be a list, got {entries!r}")
    for entry in entries:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(part, str) for part in entry)
        ):
            raise ReproError(
                f"malformed {key} entry {entry!r}: expected a pair of URI strings"
            )
        yield entry


def _partial_entries(payload: dict):
    """Validated partial-containment entries."""
    entries = payload.get("partial", ())
    if not isinstance(entries, (list, tuple)):
        raise ReproError(
            f"malformed relationship store: 'partial' must be a list, got {entries!r}"
        )
    for entry in entries:
        if not isinstance(entry, dict):
            raise ReproError(f"malformed partial entry {entry!r}: expected an object")
        for field in ("container", "contained"):
            if not isinstance(entry.get(field), str):
                raise ReproError(
                    f"malformed partial entry {entry!r}: missing or non-string {field!r}"
                )
        degree = entry.get("degree")
        if degree is not None and (isinstance(degree, bool) or not isinstance(degree, Real)):
            raise ReproError(
                f"malformed partial entry {entry!r}: degree must be numeric or null"
            )
        dimensions = entry.get("dimensions", ())
        if not isinstance(dimensions, (list, tuple)) or not all(
            isinstance(d, str) for d in dimensions
        ):
            raise ReproError(
                f"malformed partial entry {entry!r}: dimensions must be a list of URI strings"
            )
        yield entry


def loads_relationships(text: str) -> RelationshipSet:
    """Parse a relationship set from its JSON string form.

    Raises :class:`ReproError` naming the offending entry when the
    payload shape is invalid (non-pair containment entries, non-numeric
    degrees, partial entries without ``container``/``contained``...).
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid relationship JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ReproError(f"malformed relationship store: expected an object, got {payload!r}")
    declared = payload.get("format", STORE_FORMAT)  # absent in v1 files
    if declared != STORE_FORMAT:
        raise ReproError(
            f"not a relationship store: format {declared!r} (expected {STORE_FORMAT!r})"
        )
    version = payload.get("version")
    if version != STORE_VERSION:
        raise ReproError(f"unsupported relationship-store version {version!r}")
    result = RelationshipSet()
    for a, b in _pair_entries(payload, "full"):
        result.add_full(URIRef(a), URIRef(b))
    for a, b in _pair_entries(payload, "complementary"):
        result.add_complementary(URIRef(a), URIRef(b))
    for entry in _partial_entries(payload):
        dims = frozenset(URIRef(d) for d in entry.get("dimensions", ()))
        degree = entry.get("degree")
        result.add_partial(
            URIRef(entry["container"]),
            URIRef(entry["contained"]),
            dims if dims else None,
            float(degree) if degree is not None else None,
        )
    return result


def detect_store_kind(path: str | Path) -> str:
    """Classify a store path: ``"segments"``, ``"json.gz"`` or ``"json"``.

    Existing paths are sniffed (a directory with a segment manifest is
    a segment store whatever its name); otherwise the extension decides,
    so the same function routes both reads and about-to-happen writes.
    """
    from repro.storage.store import is_segment_store

    target = Path(path)
    if is_segment_store(target) or str(target).endswith(".rseg"):
        return "segments"
    if str(target).endswith(".gz"):
        return "json.gz"
    return "json"


def save_relationships(
    result: RelationshipSet,
    target: str | Path | IO[str],
    indent: int | None = None,
    space=None,
) -> None:
    """Write a relationship store to a path or text file object.

    The format follows the path: ``*.rseg`` (or an existing segment
    directory) writes the binary segment store of :mod:`repro.storage`
    — partitioned by dataset/lattice signature when the observation
    ``space`` is supplied — ``*.gz`` writes gzip-compressed JSON, and
    anything else the plain JSON form.  Path targets are written
    atomically: a crash mid-write never corrupts an existing store.
    """
    if hasattr(target, "write"):
        target.write(dumps_relationships(result, indent=indent))  # type: ignore[union-attr]
        return
    kind = detect_store_kind(target)  # type: ignore[arg-type]
    if kind == "segments":
        from repro.storage import save_segments

        save_segments(result, target, space=space)  # type: ignore[arg-type]
        return
    text = dumps_relationships(result, indent=indent)
    if kind == "json.gz":
        import gzip

        # mtime=0 keeps the compressed bytes deterministic for equal inputs.
        atomic_write_bytes(target, gzip.compress(text.encode("utf-8"), mtime=0))  # type: ignore[arg-type]
        return
    atomic_write_text(target, text)  # type: ignore[arg-type]


def load_relationships(source: str | Path | IO[str]) -> RelationshipSet:
    """Read a relationship store from a path or text file object.

    Paths are format-detected (binary segment store, ``.json.gz``,
    plain JSON) via :func:`detect_store_kind`; file objects are always
    treated as JSON text.
    """
    if hasattr(source, "read"):
        return loads_relationships(source.read())  # type: ignore[union-attr]
    kind = detect_store_kind(source)  # type: ignore[arg-type]
    if kind == "segments":
        from repro.storage import load_segments

        return load_segments(source)  # type: ignore[arg-type]
    if kind == "json.gz":
        import gzip
        import zlib

        # zlib.error: a stream corrupted *after* a valid gzip header;
        # gzip.BadGzipFile (bad header / trailer CRC) is an OSError.
        try:
            blob = Path(source).read_bytes()  # type: ignore[arg-type]
            text = gzip.decompress(blob).decode("utf-8")
        except (OSError, EOFError, zlib.error) as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            raise ReproError(f"cannot read gzip store {source}: {exc}") from exc
        return loads_relationships(text)
    return loads_relationships(Path(source).read_text())  # type: ignore[arg-type]


def describe_store(path: str | Path) -> dict:
    """Cheap (no full load) facts about a store file for ``repro inspect``.

    Returns ``{"kind", "bytes", "version", "segments", "wal_records"}``
    — the last two are ``None`` for the JSON formats.
    """
    target = Path(path)
    kind = detect_store_kind(target)
    if kind == "segments":
        from repro.storage import SegmentStore

        store = SegmentStore.open(target)
        info = store.describe()
        return {
            "kind": kind,
            "bytes": info["bytes"],
            "version": info["version"],
            "segments": info["segments"],
            "wal_records": info["wal_records"],
        }
    size = target.stat().st_size
    return {"kind": kind, "bytes": size, "version": STORE_VERSION, "segments": None, "wal_records": None}


def profile_relationships(result: RelationshipSet, bins: int = 10) -> dict:
    """A store profile: pair counts, referenced URIs, degree histogram.

    The histogram buckets the OCM degrees of the partial pairs into
    ``bins`` equal-width bins over ``(0, 1)``; a degree of exactly 1.0
    lands in the last bin.  ``repro inspect`` renders this dict.
    """
    uris: set[URIRef] = set()
    for pairs in (result.full, result.partial, result.complementary):
        for a, b in pairs:
            uris.add(a)
            uris.add(b)
    histogram = [0] * bins
    for degree in result.degrees.values():
        slot = min(int(float(degree) * bins), bins - 1)
        histogram[slot] += 1
    container_counts: dict[URIRef, int] = {}
    for container, _ in result.full:
        container_counts[container] = container_counts.get(container, 0) + 1
    top_containers = sorted(
        container_counts.items(), key=lambda item: (-item[1], str(item[0]))
    )[:5]
    return {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "full_pairs": len(result.full),
        "partial_pairs": len(result.partial),
        "complementary_pairs": len(result.complementary),
        "total_pairs": result.total(),
        "observations": len(uris),
        "degrees_recorded": len(result.degrees),
        "partial_dimensions_recorded": len(result.partial_map),
        "degree_histogram": histogram,
        "top_containers": top_containers,
    }
