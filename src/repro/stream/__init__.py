"""repro.stream — streaming ingest and the relationship changefeed.

Two halves:

- :mod:`repro.stream.changefeed`: the WAL-backed ordered feed of
  applied relationship deltas (monotonic offsets, ``since=`` replay,
  durable named consumer offsets).
- :mod:`repro.stream.ingest`: the batching, backpressured pump that
  tails an observation source and drives incremental inserts.

See ``docs/streaming.md`` for the wire grammar and semantics.
"""

from repro.stream.changefeed import (
    Changefeed,
    ChangefeedReader,
    change_record,
    delta_from_change,
)
from repro.stream.ingest import (
    IDLE,
    CsvObservationParser,
    EngineSink,
    FileBoundary,
    HttpSink,
    IngestError,
    IngestStats,
    NTriplesObservationParser,
    StreamIngester,
    make_parser,
    sniff_format,
    watch_directory,
)

__all__ = [
    "Changefeed",
    "ChangefeedReader",
    "change_record",
    "delta_from_change",
    "CsvObservationParser",
    "EngineSink",
    "FileBoundary",
    "HttpSink",
    "IDLE",
    "IngestError",
    "IngestStats",
    "NTriplesObservationParser",
    "StreamIngester",
    "make_parser",
    "sniff_format",
    "watch_directory",
]
