"""WAL-backed ordered relationship changefeed.

Every delta the query engine applies is published here as one
``change`` record with a **monotonic offset**, persisted through the
same CRC-framed, fsynced line format as :mod:`repro.storage.wal` — so
a torn final line (crash mid-publish) is detected and dropped on
replay, and an acknowledged publish survives a crash.

The feed lives in its own directory (``<store>/changefeed`` for a
segment store) as a sequence of rotated segments::

    changefeed/
        feed-00000000000000000001.jsonl
        feed-00000000000000001374.jsonl
        CONSUMERS.json

Each segment file name carries the **first offset it holds**, so a
``since=<offset>`` replay can skip whole segments without opening
them.  Offsets start at 1; ``read(since=N)`` returns records with
``offset > N``, which makes ``since=0`` a full replay and lets a
consumer resume by handing back the last offset it processed.

``CONSUMERS.json`` holds durable named consumer offsets, rewritten
atomically (:func:`repro.store.atomic_write_text`) on every commit —
the at-least-once handoff contract is documented in
``docs/streaming.md``.

:class:`Changefeed` is the single-writer handle the engine publishes
through (it owns an in-process condition variable for long-poll
wakeups); :class:`ChangefeedReader` is the read-only, cross-process
view the shard servers use (it re-lists segments on demand and falls
back to polling for ``wait_for``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.core.results import RelationshipDelta
from repro.errors import StorageError
from repro.storage.wal import WriteAheadLog, delta_from_payload, delta_to_payload

__all__ = [
    "Changefeed",
    "ChangefeedReader",
    "change_record",
    "delta_from_change",
]

SEGMENT_PREFIX = "feed-"
SEGMENT_SUFFIX = ".jsonl"
CONSUMERS_FILE = "CONSUMERS.json"
#: Rotate the active feed segment once it crosses this size.
DEFAULT_ROTATE_BYTES = 4 * 1024 * 1024

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "published": registry.counter(
                "repro_stream_published_changes_total",
                "Deltas published to the relationship changefeed.",
            ),
            "head": registry.gauge(
                "repro_stream_feed_head_offset",
                "Highest offset durably published to the changefeed.",
            ),
            "rotations": registry.counter(
                "repro_stream_feed_rotations_total",
                "Changefeed segment rotations.",
            ),
            "read": registry.counter(
                "repro_stream_changes_read_total",
                "Change records returned to feed readers.",
            ),
            "waits": registry.counter(
                "repro_stream_longpoll_waits_total",
                "Feed reads that blocked waiting for new offsets.",
            ),
            "consumer_offset": registry.gauge(
                "repro_stream_consumer_offset",
                "Last offset durably committed per named consumer.",
                labelnames=("consumer",),
            ),
            "lag": registry.gauge(
                "repro_stream_feed_lag",
                "Feed head minus committed offset per named consumer.",
                labelnames=("consumer",),
            ),
        }
    return _METRICS


def change_record(
    offset: int,
    delta: RelationshipDelta,
    op: str = "insert",
    trace_id: str | None = None,
) -> dict:
    """Build the JSON body of one changefeed record."""
    return {
        "type": "change",
        "offset": int(offset),
        "op": op,
        "ts": time.time(),
        "trace": trace_id,
        "delta": delta_to_payload(delta),
    }


def delta_from_change(record: dict) -> RelationshipDelta:
    """Decode the delta payload of a ``change`` record."""
    return delta_from_payload(record.get("delta", {}))


def _segment_name(first_offset: int) -> str:
    return f"{SEGMENT_PREFIX}{first_offset:020d}{SEGMENT_SUFFIX}"


def _segment_first_offset(name: str) -> int | None:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    try:
        first = int(digits)
    except ValueError:
        return None
    return first if first >= 1 else None


def _list_segments(path: Path) -> list[tuple[int, Path]]:
    """``(first_offset, path)`` for every feed segment, offset order."""
    try:
        names = os.listdir(path)
    except (FileNotFoundError, NotADirectoryError):
        return []
    segments = []
    for name in names:
        first = _segment_first_offset(name)
        if first is not None:
            segments.append((first, path / name))
    segments.sort()
    return segments


def _check_change(record: dict, path: Path) -> dict:
    offset = record.get("offset")
    if record.get("type") != "change" or not isinstance(offset, int) or offset < 1:
        raise StorageError(f"malformed changefeed record in {path}: {record!r}")
    return record


def _read_segments(
    segments: list[tuple[int, Path]],
    since: int,
    limit: int | None,
    repair: bool,
) -> list[dict]:
    """Replay ``offset > since`` records across ``segments`` in order.

    Whole segments strictly below the cursor are skipped by file name:
    segment *i* (other than the last) holds offsets
    ``[first_i, first_{i+1} - 1]``, so it cannot contribute when
    ``first_{i+1} - 1 <= since``.  The last segment is always parsed —
    it is the only one that can have a torn tail, and :class:`WriteAheadLog`
    handles that per the ``repair`` flag.
    """
    out: list[dict] = []
    for index, (first, path) in enumerate(segments):
        if index + 1 < len(segments) and segments[index + 1][0] - 1 <= since:
            continue
        records, _ = WriteAheadLog(path).records(repair=repair)
        for record in records:
            record = _check_change(record, path)
            if record["offset"] > since:
                out.append(record)
                if limit is not None and len(out) >= limit:
                    return out
    return out


class _ConsumerOffsets:
    """Durable named consumer offsets, committed atomically."""

    def __init__(self, path: Path):
        self.path = path
        self._lock = threading.Lock()

    def load(self) -> dict[str, int]:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return {}
        if not isinstance(raw, dict):
            return {}
        return {
            str(name): int(offset)
            for name, offset in raw.items()
            if isinstance(offset, int) and offset >= 0
        }

    def committed(self, consumer: str) -> int:
        return self.load().get(consumer, 0)

    @contextmanager
    def _file_lock(self):
        """Cross-process exclusive lock around the read-modify-write.

        The serve writer and any out-of-process
        :class:`ChangefeedReader` all commit into the same
        ``CONSUMERS.json``; the in-process :class:`threading.Lock`
        alone would let two processes interleave load/write and
        silently drop each other's freshly committed cursor.  A
        separate ``.lock`` file carries the ``flock`` because
        ``atomic_write_text`` replaces the target's inode.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path.with_name(self.path.name + ".lock"), "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def commit(self, consumer: str, offset: int) -> int:
        """Durably record ``offset`` for ``consumer``; returns it.

        Commits are monotonic per consumer — re-delivering an old
        batch after a restart must not move the cursor backwards.
        """
        from repro.store import atomic_write_text

        if not consumer:
            raise ValueError("consumer name must be non-empty")
        offset = int(offset)
        if offset < 0:
            raise ValueError(f"consumer offset must be >= 0, got {offset}")
        with self._lock, self._file_lock():
            offsets = self.load()
            offset = max(offset, offsets.get(consumer, 0))
            offsets[consumer] = offset
            atomic_write_text(
                self.path, json.dumps(offsets, indent=2, sort_keys=True) + "\n"
            )
        _metrics()["consumer_offset"].set(offset, consumer=consumer)
        return offset


class Changefeed:
    """The single-writer changefeed handle.

    One process — the one holding the store's writer lock — publishes;
    any number of threads in that process read and long-poll through
    the shared condition variable.
    """

    def __init__(self, path: str | os.PathLike, rotate_bytes: int = DEFAULT_ROTATE_BYTES):
        self.path = Path(path)
        self.rotate_bytes = int(rotate_bytes)
        self._cond = threading.Condition()
        self._wal: WriteAheadLog | None = None
        self._segments: list[tuple[int, Path]] = []
        self._head = 0
        self.consumers = _ConsumerOffsets(self.path / CONSUMERS_FILE)
        self._open()

    # -- lifecycle -----------------------------------------------------
    def _open(self) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        self._segments = _list_segments(self.path)
        head = 0
        if self._segments:
            first, active = self._segments[-1]
            # Repair a torn tail *now* so the head offset and the next
            # append both start from the last durable record.
            records, repaired = WriteAheadLog(active).records(repair=True)
            head = _check_change(records[-1], active)["offset"] if records else first - 1
            if repaired:
                # The torn record was flushed before the crash, so a
                # cross-process reader may already have delivered (and
                # committed) its offset with the *old* payload.  Never
                # reuse that offset for a different delta — skip it.
                # Offsets are monotonic, not dense (docs/streaming.md).
                head += 1
        self._head = head
        _metrics()["head"].set(float(head))

    def close(self) -> None:
        with self._cond:
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    # -- writing -------------------------------------------------------
    def _active_wal(self) -> WriteAheadLog:
        if self._wal is None:
            if not self._segments:
                self._segments = [(1, self.path / _segment_name(1))]
            self._wal = WriteAheadLog(self._segments[-1][1])
        return self._wal

    def publish(
        self,
        delta: RelationshipDelta,
        op: str = "insert",
        trace_id: str | None = None,
    ) -> int:
        """Durably append one delta; returns its offset.

        Raises :class:`StorageError`/``OSError`` on append failure, in
        which case the offset is not consumed.
        """
        with self._cond:
            offset = self._head + 1
            wal = self._active_wal()
            wal.append(change_record(offset, delta, op=op, trace_id=trace_id))
            self._head = offset
            if wal.size_bytes() >= self.rotate_bytes:
                wal.close()
                self._wal = None
                self._segments.append((offset + 1, self.path / _segment_name(offset + 1)))
                _metrics()["rotations"].inc()
            self._cond.notify_all()
        metrics = _metrics()
        metrics["published"].inc()
        metrics["head"].set(float(offset))
        return offset

    # -- reading -------------------------------------------------------
    @property
    def head_offset(self) -> int:
        with self._cond:
            return self._head

    def read(self, since: int = 0, limit: int | None = None) -> list[dict]:
        """Records with ``offset > since``, in offset order."""
        with self._cond:
            segments = list(self._segments)
            head = self._head
        if since >= head:
            return []
        records = _read_segments(segments, since, limit, repair=False)
        _metrics()["read"].inc(len(records))
        return records

    def wait_for(
        self, since: int = 0, timeout: float = 0.0, limit: int | None = None
    ) -> list[dict]:
        """``read``, long-polling up to ``timeout`` seconds when empty."""
        if timeout > 0:
            deadline = time.monotonic() + timeout
            with self._cond:
                if self._head <= since:
                    _metrics()["waits"].inc()
                while self._head <= since:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
        return self.read(since, limit)

    # -- consumers -----------------------------------------------------
    def committed(self, consumer: str) -> int:
        return self.consumers.committed(consumer)

    def commit(self, consumer: str, offset: int) -> int:
        offset = self.consumers.commit(consumer, offset)
        _metrics()["lag"].set(float(max(self.head_offset - offset, 0)), consumer=consumer)
        return offset

    def describe(self) -> dict:
        with self._cond:
            segments = list(self._segments)
            head = self._head
        return {
            "path": str(self.path),
            "head_offset": head,
            "segments": len(segments),
            "consumers": self.consumers.load(),
        }


class ChangefeedReader:
    """Read-only, cross-process changefeed view.

    Re-lists segments on every read so rotations by the writer process
    are picked up; never repairs (the writer owns the files), so a
    torn tail is simply not yet visible.  ``wait_for`` falls back to
    polling because there is no shared condition variable across
    processes.
    """

    POLL_INTERVAL = 0.2

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.consumers = _ConsumerOffsets(self.path / CONSUMERS_FILE)

    @property
    def head_offset(self) -> int:
        segments = _list_segments(self.path)
        if not segments:
            return 0
        first, active = segments[-1]
        records, _ = WriteAheadLog(active).records(repair=False)
        return _check_change(records[-1], active)["offset"] if records else first - 1

    def read(self, since: int = 0, limit: int | None = None) -> list[dict]:
        records = _read_segments(_list_segments(self.path), since, limit, repair=False)
        _metrics()["read"].inc(len(records))
        return records

    def wait_for(
        self, since: int = 0, timeout: float = 0.0, limit: int | None = None
    ) -> list[dict]:
        records = self.read(since, limit)
        if records or timeout <= 0:
            return records
        _metrics()["waits"].inc()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            time.sleep(min(self.POLL_INTERVAL, max(deadline - time.monotonic(), 0.01)))
            records = self.read(since, limit)
            if records:
                break
        return records

    def committed(self, consumer: str) -> int:
        return self.consumers.committed(consumer)

    def commit(self, consumer: str, offset: int) -> int:
        offset = self.consumers.commit(consumer, offset)
        _metrics()["lag"].set(float(max(self.head_offset - offset, 0)), consumer=consumer)
        return offset

    def describe(self) -> dict:
        return {
            "path": str(self.path),
            "head_offset": self.head_offset,
            "segments": len(_list_segments(self.path)),
            "consumers": self.consumers.load(),
        }
