"""Streaming observation ingest: tail a source, batch, insert.

The pump reads observation lines from a source (stdin, or a watched
directory of batch files), parses them into new-observation entries,
and drives the incremental lattice-signature-pruned delta path —
either in-process through :meth:`QueryEngine.insert` or over HTTP via
``POST /observations`` against a live server.

Two line grammars (``docs/streaming.md``):

``csv``
    One observation per line, ``uri,dataset,dimensions,measures``
    where ``dimensions`` is ``dim=code`` pairs joined by ``|`` and
    ``measures`` is measure URIs joined by ``|``.  Blank lines, ``#``
    comments and a literal header row are skipped.

``ntriples``
    Standard N-Triples, parsed with :mod:`repro.rdf.ntriples`.  An
    observation's triples must be contiguous (subject-grouped, the
    usual dump order); the observation is emitted when its subject
    ends.  With a ``--schema`` cube graph, predicates are classified
    against the declared DSD exactly as :func:`repro.qb.loader
    .load_cubespace` does; without one, URI-valued predicates are
    dimensions and literal-valued predicates are measures.

Backpressure is structural: at most ``max_inflight`` batches are in
flight at once and the pump blocks on a semaphore before dispatching
the next, so a slow engine slows the source read loop instead of
growing an unbounded queue.  A batch is flushed when it reaches
``batch_size`` or when ``flush_interval`` elapses with data pending
(queue-depth-aware flush).
"""

from __future__ import annotations

import csv
import io
import json
import os
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.rdf.namespaces import QB, RDF
from repro.rdf.ntriples import iter_ntriples
from repro.rdf.terms import Literal, URIRef

__all__ = [
    "IngestError",
    "IngestStats",
    "CsvObservationParser",
    "NTriplesObservationParser",
    "make_parser",
    "sniff_format",
    "EngineSink",
    "HttpSink",
    "StreamIngester",
    "FileBoundary",
    "IDLE",
    "watch_directory",
]

#: Control item a line source may yield while idle: the pump checks
#: ``flush_interval`` against any pending partial batch instead of
#: letting it sit buffered until the next real line arrives.
IDLE = object()

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "ingested": registry.counter(
                "repro_stream_ingested_observations_total",
                "Observations successfully applied by streaming ingest.",
            ),
            "batches": registry.counter(
                "repro_stream_ingest_batches_total",
                "Observation batches flushed by streaming ingest.",
            ),
            "latency": registry.histogram(
                "repro_stream_ingest_batch_latency_seconds",
                "Wall time to apply one ingest batch (parse to ack).",
            ),
            "parse_errors": registry.counter(
                "repro_stream_ingest_parse_errors_total",
                "Input lines dropped because they failed to parse.",
            ),
            "retries": registry.counter(
                "repro_stream_ingest_retries_total",
                "Batch submissions retried after overload or I/O errors.",
            ),
            "failures": registry.counter(
                "repro_stream_ingest_failed_batches_total",
                "Batches dropped after exhausting retries.",
            ),
            "inflight": registry.gauge(
                "repro_stream_ingest_inflight_batches",
                "Ingest batches currently being applied.",
            ),
        }
    return _METRICS


class IngestError(ReproError):
    """A fatal ingest failure (bad source, unreachable sink)."""


@dataclass
class IngestStats:
    """What one pump run accomplished."""

    observations: int = 0
    batches: int = 0
    parse_errors: int = 0
    failed_batches: int = 0
    retries: int = 0
    seconds: float = 0.0
    last_offset: int | None = None

    @property
    def obs_per_sec(self) -> float:
        return self.observations / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "observations": self.observations,
            "batches": self.batches,
            "parse_errors": self.parse_errors,
            "failed_batches": self.failed_batches,
            "retries": self.retries,
            "seconds": round(self.seconds, 3),
            "obs_per_sec": round(self.obs_per_sec, 1),
            "last_offset": self.last_offset,
        }


# ----------------------------------------------------------------------
# Line parsers
# ----------------------------------------------------------------------
CSV_HEADER = ("uri", "dataset", "dimensions", "measures")


class CsvObservationParser:
    """``uri,dataset,dim=code|dim=code,measure|measure`` lines."""

    format = "csv"

    def __init__(self):
        self.errors = 0

    def feed(self, line: str) -> list[dict]:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return []
        try:
            row = next(csv.reader(io.StringIO(stripped)))
        except (csv.Error, StopIteration):
            self._bad(line)
            return []
        if tuple(cell.strip().lower() for cell in row) == CSV_HEADER:
            return []  # header row
        if len(row) < 2:
            self._bad(line)
            return []
        uri, dataset = row[0].strip(), row[1].strip()
        if not uri or not dataset:
            self._bad(line)
            return []
        dimensions: dict[str, str] = {}
        for pair in (row[2] if len(row) > 2 else "").split("|"):
            pair = pair.strip()
            if not pair:
                continue
            dim, eq, code = pair.partition("=")
            if not eq or not dim.strip() or not code.strip():
                self._bad(line)
                return []
            dimensions[dim.strip()] = code.strip()
        measures = [
            m.strip() for m in (row[3] if len(row) > 3 else "").split("|") if m.strip()
        ]
        return [
            {
                "uri": uri,
                "dataset": dataset,
                "dimensions": dimensions,
                "measures": measures,
            }
        ]

    def finish(self) -> list[dict]:
        return []

    def _bad(self, line: str) -> None:
        self.errors += 1
        _metrics()["parse_errors"].inc()


class NTriplesObservationParser:
    """Subject-grouped N-Triples lines → observation entries.

    ``schema`` maps dataset URI → (dimension URIs, measure URIs); when
    present, predicates are classified against it (the
    :func:`repro.qb.loader.load_cubespace` contract) and unknown
    predicates are ignored.  Without a schema, URI objects are
    dimension values and literal objects are measure values.
    """

    format = "ntriples"

    def __init__(self, schema: dict[URIRef, tuple[frozenset, frozenset]] | None = None):
        self.schema = schema
        self.errors = 0
        self._subject: URIRef | None = None
        self._triples: list[tuple] = []

    def feed(self, line: str) -> list[dict]:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return []
        try:
            triple = next(iter_ntriples([line]))
        except (ReproError, ValueError, StopIteration) as exc:
            self.errors += 1
            _metrics()["parse_errors"].inc()
            return []
        subject = triple[0]
        out: list[dict] = []
        if self._subject is not None and subject != self._subject:
            out.extend(self._finalize())
        self._subject = subject
        self._triples.append(triple)
        return out

    def finish(self) -> list[dict]:
        return self._finalize()

    def _finalize(self) -> list[dict]:
        triples, subject = self._triples, self._subject
        self._triples, self._subject = [], None
        if not triples or subject is None:
            return []
        dataset = None
        dims: dict[str, str] = {}
        measures: list[str] = []
        for _, predicate, obj in triples:
            if predicate == QB.dataSet and isinstance(obj, URIRef):
                dataset = obj
            elif predicate == RDF.type:
                continue
            elif self.schema is not None:
                continue  # classified below, once the dataset is known
            elif isinstance(obj, URIRef):
                dims[str(predicate)] = str(obj)
            elif isinstance(obj, Literal):
                if str(predicate) not in measures:
                    measures.append(str(predicate))
        if dataset is None:
            self.errors += 1
            _metrics()["parse_errors"].inc()
            return []
        if self.schema is not None:
            declared = self.schema.get(dataset)
            if declared is None:
                self.errors += 1
                _metrics()["parse_errors"].inc()
                return []
            dim_props, measure_props = declared
            for _, predicate, obj in triples:
                if predicate in dim_props and isinstance(obj, URIRef):
                    dims[str(predicate)] = str(obj)
                elif predicate in measure_props and str(predicate) not in measures:
                    measures.append(str(predicate))
        return [
            {
                "uri": str(subject),
                "dataset": str(dataset),
                "dimensions": dims,
                "measures": sorted(measures),
            }
        ]


def schema_from_graph(graph) -> dict[URIRef, tuple[frozenset, frozenset]]:
    """Dataset → (dimensions, measures) from a cube definition graph."""
    from repro.qb.loader import _component_properties

    schema: dict[URIRef, tuple[frozenset, frozenset]] = {}
    for ds_term in graph.subjects(RDF.type, QB.DataSet):
        dsd = graph.value(ds_term, QB.structure, None)
        if dsd is None or not isinstance(ds_term, URIRef):
            continue
        dimensions, measures, _ = _component_properties(graph, dsd)
        schema[ds_term] = (
            frozenset(d for d, _ in dimensions),
            frozenset(measures),
        )
    return schema


def sniff_format(line: str) -> str:
    """Guess ``csv`` vs ``ntriples`` from the first non-blank line."""
    stripped = line.strip()
    if stripped.startswith("<") and stripped.endswith("."):
        return "ntriples"
    return "csv"


def make_parser(fmt: str, schema=None):
    if fmt == "csv":
        return CsvObservationParser()
    if fmt == "ntriples":
        return NTriplesObservationParser(schema=schema)
    raise IngestError(f"unknown ingest format {fmt!r} (expected csv or ntriples)")


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def _to_engine_tuples(batch: list[dict]):
    return [
        (
            URIRef(entry["uri"]),
            URIRef(entry["dataset"]),
            {URIRef(k): URIRef(v) for k, v in entry["dimensions"].items()},
            [URIRef(m) for m in entry["measures"]],
        )
        for entry in batch
    ]


class EngineSink:
    """Apply batches in-process through a :class:`QueryEngine`."""

    def __init__(self, engine):
        self.engine = engine

    def send(self, batch: list[dict], trace_id: str | None = None) -> dict:
        from repro.obs import bind_trace

        with bind_trace(trace_id):
            delta = self.engine.insert(_to_engine_tuples(batch))
        return {
            "inserted": len(batch),
            "generation": self.engine.generation,
            "pairs_added": delta.total_added(),
            "feed_offset": getattr(self.engine, "feed_offset", None),
        }

    def close(self) -> None:
        pass


class HttpSink:
    """Apply batches with ``POST /observations`` against a live server.

    Honors the server's backpressure: a 503 (overloaded / breaker
    open) is retried after its ``Retry-After`` hint, connection errors
    back off exponentially, and a 4xx is fatal for the batch (the
    payload will not get better by retrying).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_retries: int = 8,
        retry_backoff: float = 0.25,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff

    def send(self, batch: list[dict], trace_id: str | None = None) -> dict:
        body = json.dumps({"observations": batch}).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if trace_id:
            headers["X-Trace-Id"] = trace_id
        delay = self.retry_backoff
        attempts = 0
        while True:
            request = urllib.request.Request(
                f"{self.base_url}/observations", data=body, headers=headers, method="POST"
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read() or b"{}")
            except urllib.error.HTTPError as exc:
                retry_after = exc.headers.get("Retry-After") if exc.headers else None
                exc.close()
                if exc.code in (503, 504) and attempts < self.max_retries:
                    attempts += 1
                    _metrics()["retries"].inc()
                    try:
                        wait = float(retry_after) if retry_after else delay
                    except ValueError:
                        wait = delay
                    time.sleep(min(max(wait, 0.05), 5.0))
                    delay = min(delay * 2, 5.0)
                    continue
                raise IngestError(
                    f"POST /observations failed with HTTP {exc.code}"
                ) from exc
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                if attempts < self.max_retries:
                    attempts += 1
                    _metrics()["retries"].inc()
                    time.sleep(delay)
                    delay = min(delay * 2, 5.0)
                    continue
                raise IngestError(f"server unreachable: {exc}") from exc

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# The pump
# ----------------------------------------------------------------------
@dataclass
class _Batch:
    entries: list[dict] = field(default_factory=list)
    first_at: float = 0.0


class StreamIngester:
    """Batching, backpressured pump from a line source into a sink."""

    def __init__(
        self,
        sink,
        parser,
        batch_size: int = 200,
        flush_interval: float = 1.0,
        max_inflight: int = 2,
        on_batch=None,
    ):
        if batch_size < 1:
            raise IngestError("batch_size must be >= 1")
        if max_inflight < 1:
            raise IngestError("max_inflight must be >= 1")
        self.sink = sink
        self.parser = parser
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.max_inflight = max_inflight
        self.on_batch = on_batch
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._errors: list[IngestError] = []
        self._threads: list[threading.Thread] = []

    def run(self, lines, stop=None) -> IngestStats:
        """Pump ``lines`` until exhausted (or ``stop`` is set).

        Besides text lines, ``lines`` may interleave control items:
        :data:`IDLE` ticks (flush a pending partial batch once
        ``flush_interval`` elapses on a quiet source) and
        :class:`FileBoundary` markers, which force a flush **and an
        acknowledgement barrier** before the spool file is renamed
        ``.done`` — a crash before every batch is acked re-ingests the
        file on restart (at-least-once, never at-most-once).
        """
        stats = IngestStats()
        started = time.perf_counter()
        pending = _Batch()
        try:
            for line in lines:
                if stop is not None and stop.is_set():
                    break
                if line is IDLE:
                    if (
                        pending.entries
                        and time.monotonic() - pending.first_at >= self.flush_interval
                    ):
                        self._dispatch(pending.entries, stats)
                        pending = _Batch()
                    if self._errors:
                        break
                    continue
                if isinstance(line, FileBoundary):
                    self._extend(pending, self.parser.finish())
                    if pending.entries and not self._errors:
                        self._dispatch(pending.entries, stats)
                        pending = _Batch()
                    self._drain_inflight()
                    if self._errors:
                        break
                    line.done()
                    continue
                self._extend(pending, self.parser.feed(line))
                if len(pending.entries) >= self.batch_size or (
                    pending.entries
                    and time.monotonic() - pending.first_at >= self.flush_interval
                ):
                    self._dispatch(pending.entries, stats)
                    pending = _Batch()
                if self._errors:
                    break
            self._extend(pending, self.parser.finish())
            if pending.entries and not self._errors:
                self._dispatch(pending.entries, stats)
        finally:
            for thread in self._threads:
                thread.join()
            stats.seconds = time.perf_counter() - started
            stats.parse_errors = getattr(self.parser, "errors", 0)
        if self._errors:
            raise self._errors[0]
        return stats

    @staticmethod
    def _extend(pending: _Batch, entries: list[dict]) -> None:
        for entry in entries:
            if not pending.entries:
                pending.first_at = time.monotonic()
            pending.entries.append(entry)

    def _drain_inflight(self) -> None:
        """Block until every dispatched batch has been acknowledged."""
        for thread in self._threads:
            thread.join()
        self._threads = [t for t in self._threads if t.is_alive()]

    def _dispatch(self, entries: list[dict], stats: IngestStats) -> None:
        from repro.obs import current_trace_id, new_trace_id

        # Blocks when max_inflight batches are already being applied —
        # this is the backpressure that slows the source read loop.
        self._slots.acquire()
        trace_id = current_trace_id() or new_trace_id()
        self._threads = [t for t in self._threads if t.is_alive()]
        thread = threading.Thread(
            target=self._apply, args=(entries, trace_id, stats), daemon=True
        )
        self._threads.append(thread)
        thread.start()

    def _apply(self, entries: list[dict], trace_id: str, stats: IngestStats) -> None:
        metrics = _metrics()
        metrics["inflight"].inc()
        started = time.perf_counter()
        try:
            ack = self.sink.send(entries, trace_id=trace_id)
        except IngestError as exc:
            metrics["failures"].inc()
            with self._lock:
                stats.failed_batches += 1
                self._errors.append(exc)
            return
        finally:
            metrics["inflight"].inc(-1.0)
            self._slots.release()
        elapsed = time.perf_counter() - started
        metrics["latency"].observe(elapsed)
        metrics["batches"].inc()
        metrics["ingested"].inc(len(entries))
        with self._lock:
            stats.observations += len(entries)
            stats.batches += 1
            offset = ack.get("feed_offset") if isinstance(ack, dict) else None
            if isinstance(offset, int):
                stats.last_offset = max(stats.last_offset or 0, offset)
        if self.on_batch is not None:
            self.on_batch(len(entries), ack)


@dataclass
class FileBoundary:
    """End-of-file marker yielded by :func:`watch_directory`.

    The consumer calls :meth:`done` only once every observation from
    the file has been acknowledged by the sink; the file is then
    renamed ``<name>.done`` so a restart never re-ingests it.  A crash
    or sink failure before ``done`` leaves the file in place to be
    re-ingested — the at-least-once half of the spool handoff.
    """

    path: Path
    mark_done: bool = True

    def done(self) -> None:
        if not self.mark_done:
            return
        try:
            os.replace(self.path, self.path.with_name(self.path.name + ".done"))
        except OSError:
            pass


def watch_directory(
    path: str | os.PathLike,
    poll_interval: float = 0.5,
    stop=None,
    mark_done: bool = True,
):
    """Yield lines (and control items) from batch files in ``path``.

    Files are processed in sorted-name order.  After a file's last
    line a :class:`FileBoundary` is yielded; renaming to ``.done`` is
    the *consumer's* job (``FileBoundary.done``), deferred until every
    observation from the file is acknowledged — so a crash mid-apply
    re-ingests the file instead of silently losing it.  While the
    directory is idle an :data:`IDLE` tick is yielded each poll so the
    consumer can flush a pending partial batch.  Files still being
    written should be moved in atomically (write elsewhere, ``mv`` in)
    — the usual maildir-style handoff.
    """
    root = Path(path)
    if not root.is_dir():
        raise IngestError(f"watch directory {root} does not exist")
    yielded: set[str] = set()  # handed to the consumer, not yet renamed
    while stop is None or not stop.is_set():
        listing = sorted(
            p
            for p in root.iterdir()
            if p.is_file() and not p.name.endswith(".done") and not p.name.startswith(".")
        )
        yielded &= {p.name for p in listing}
        batch_files = [p for p in listing if p.name not in yielded]
        if not batch_files:
            if stop is None:
                break  # one-shot drain when no stop event is supplied
            stop.wait(poll_interval)
            yield IDLE
            continue
        for batch_file in batch_files:
            try:
                with open(batch_file, "r", encoding="utf-8") as handle:
                    yield from handle
            except OSError:
                continue
            yielded.add(batch_file.name)
            yield FileBoundary(batch_file, mark_done)
