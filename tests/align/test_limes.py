"""Unit tests for the LIMES-style link discovery."""

import pytest

from repro.align import LinkSpec, MetricExpression, discover_links
from repro.errors import AlignmentError
from repro.rdf import Graph, Literal, RDF, SKOS, URIRef

SRC = "http://source.example/code/"
TGT = "http://target.example/code/"


def concept_graph(base: str, names: list[str]) -> Graph:
    g = Graph()
    for name in names:
        uri = URIRef(base + name)
        g.add((uri, RDF.type, SKOS.Concept))
        g.add((uri, SKOS.prefLabel, Literal(name.replace("-", " "))))
    return g


@pytest.fixture
def source() -> Graph:
    return concept_graph(SRC, ["GR", "IT", "GR-ATH", "DE"])


@pytest.fixture
def target() -> Graph:
    return concept_graph(TGT, ["GR", "IT", "GR-ATH", "FR"])


class TestDiscovery:
    def test_exact_suffix_matches_accepted(self, source, target):
        spec = LinkSpec(
            expression=MetricExpression.metric("cosine"),
            acceptance=0.99,
            review=0.5,
            source_type=SKOS.Concept,
            target_type=SKOS.Concept,
        )
        accepted, _ = discover_links(source, target, spec)
        pairs = {(link.source.local_name(), link.target.local_name()) for link in accepted}
        assert ("GR", "GR") in pairs
        assert ("IT", "IT") in pairs
        assert ("GR-ATH", "GR-ATH") in pairs
        assert all(s != "DE" for s, _ in pairs)

    def test_review_band(self, source, target):
        spec = LinkSpec(
            expression=MetricExpression.metric("levenshtein"),
            acceptance=1.0,
            review=0.3,
            source_type=SKOS.Concept,
            target_type=SKOS.Concept,
            blocking_key_length=0,
        )
        accepted, review = discover_links(source, target, spec)
        assert all(link.score >= 1.0 for link in accepted)
        assert all(0.3 <= link.score < 1.0 for link in review)

    def test_max_combinator(self, source, target):
        spec = LinkSpec(
            expression=MetricExpression.max(
                MetricExpression.metric("cosine"),
                MetricExpression.metric("levenshtein"),
            ),
            acceptance=0.99,
            review=0.0,
            source_type=SKOS.Concept,
            target_type=SKOS.Concept,
        )
        accepted, _ = discover_links(source, target, spec)
        assert len(accepted) == 3

    def test_property_based_matching(self, source, target):
        spec = LinkSpec(
            expression=MetricExpression.metric("jaccard", property_uri=SKOS.prefLabel),
            acceptance=0.99,
            review=0.0,
            source_type=SKOS.Concept,
            target_type=SKOS.Concept,
        )
        accepted, _ = discover_links(source, target, spec)
        assert {(l.source.local_name(), l.target.local_name()) for l in accepted} == {
            ("GR", "GR"),
            ("IT", "IT"),
            ("GR-ATH", "GR-ATH"),
        }

    def test_blocking_prunes_cross_initial_pairs(self, source, target):
        spec = LinkSpec(
            expression=MetricExpression.metric("exact"),
            acceptance=0.99,
            review=0.0,
            source_type=SKOS.Concept,
            target_type=SKOS.Concept,
            blocking_key_length=1,
        )
        accepted, _ = discover_links(source, target, spec)
        # DE has no same-initial target, so only the three true matches.
        assert len(accepted) == 3

    def test_avg_and_min_combinators(self):
        expr = MetricExpression.avg(
            MetricExpression.metric("exact"),
            MetricExpression.metric("exact"),
        )
        g = concept_graph(SRC, ["GR"])
        assert expr.evaluate(URIRef(SRC + "GR"), URIRef(SRC + "GR"), g, g) == 1.0
        expr_min = MetricExpression.min(
            MetricExpression.metric("exact"),
            MetricExpression.metric("cosine"),
        )
        assert expr_min.evaluate(URIRef(SRC + "GR"), URIRef(SRC + "GR"), g, g) == 1.0


class TestConfigErrors:
    def test_unknown_metric(self):
        with pytest.raises(AlignmentError):
            MetricExpression.metric("soundex")

    def test_bad_thresholds(self):
        with pytest.raises(AlignmentError):
            LinkSpec(expression=MetricExpression.metric("exact"), acceptance=0.4, review=0.6)

    def test_empty_combinator_rejected_at_eval(self):
        expr = MetricExpression.max()
        g = Graph()
        with pytest.raises(AlignmentError):
            expr.evaluate(URIRef(SRC + "GR"), URIRef(SRC + "GR"), g, g)
