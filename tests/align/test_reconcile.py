"""Unit tests for cube-space reconciliation (alignment workflow)."""

import pytest

from repro.align import LinkSpec, MetricExpression, align_cubespaces
from repro.core import Method, compute_relationships
from repro.errors import AlignmentError
from repro.qb import CubeSpace, Dataset, DatasetSchema, Hierarchy, Observation
from repro.rdf import Namespace

SRC = Namespace("http://src.example/code/")
TGT = Namespace("http://tgt.example/code/")
NS = Namespace("http://app.example/")


def source_cube() -> CubeSpace:
    geo = Hierarchy(SRC.WORLD)
    geo.add(SRC.GR, SRC.WORLD)
    geo.add(SRC["GR-ATH"], SRC.GR)
    space = CubeSpace()
    space.add_hierarchy(NS.refArea, geo)
    schema = DatasetSchema(dimensions=(NS.refArea,), measures=(NS.unemployment,))
    ds = Dataset(NS.srcData, schema)
    ds.add(Observation(NS.s1, NS.srcData, {NS.refArea: SRC.GR}, {NS.unemployment: 24.9}))
    space.add_dataset(ds)
    return space


def target_cube(code: str = "GR") -> CubeSpace:
    geo = Hierarchy(TGT.WORLD)
    geo.add(TGT.GR, TGT.WORLD)
    geo.add(TGT["GR-ATH"], TGT.GR)
    space = CubeSpace()
    space.add_hierarchy(NS.area, geo)
    schema = DatasetSchema(dimensions=(NS.area,), measures=(NS.population,))
    ds = Dataset(NS.tgtData, schema)
    ds.add(Observation(NS.t1, NS.tgtData, {NS.area: TGT[code]}, {NS.population: 10858018}))
    space.add_dataset(ds)
    return space


class TestAlignCubespaces:
    def test_rewrites_target_onto_source_vocabulary(self):
        reconciled, accepted, review = align_cubespaces(
            source_cube(), target_cube(), {NS.area: NS.refArea}
        )
        assert len(reconciled.datasets) == 2
        rewritten = reconciled.datasets[NS.tgtData]
        assert rewritten.schema.dimensions == (NS.refArea,)
        obs = rewritten.observations[0]
        assert obs.value(NS.refArea) == SRC.GR
        assert accepted  # links were found

    def test_relationships_work_after_alignment(self):
        reconciled, _, _ = align_cubespaces(
            source_cube(), target_cube(), {NS.area: NS.refArea}
        )
        result = compute_relationships(reconciled, Method.BASELINE)
        # Same coordinates, different measures -> complementary.
        assert result.is_complementary(NS.s1, NS.t1)

    def test_unlinkable_code_raises(self):
        # A target code whose local name matches nothing in the source.
        target = target_cube()
        geo = target.hierarchies[NS.area]
        geo.add(TGT.ZZZZQQQ, TGT.WORLD)
        ds = target.datasets[NS.tgtData]
        ds.add(Observation(NS.t2, NS.tgtData, {NS.area: TGT.ZZZZQQQ}, {NS.population: 1}))
        with pytest.raises(AlignmentError):
            align_cubespaces(source_cube(), target, {NS.area: NS.refArea})

    def test_unknown_source_dimension_rejected(self):
        with pytest.raises(AlignmentError):
            align_cubespaces(source_cube(), target_cube(), {NS.area: NS.nothere})

    def test_unmapped_target_dimension_rejected(self):
        with pytest.raises(AlignmentError):
            align_cubespaces(source_cube(), target_cube(), {})

    def test_custom_spec_thresholds(self):
        spec = LinkSpec(
            expression=MetricExpression.metric("exact"),
            acceptance=1.0,
            review=0.0,
            blocking_key_length=0,
        )
        reconciled, accepted, _ = align_cubespaces(
            source_cube(), target_cube(), {NS.area: NS.refArea}, spec=spec
        )
        assert all(link.score == 1.0 for link in accepted)
        assert len(reconciled.datasets) == 2
