"""Unit tests for string similarity metrics."""

import pytest

from repro.align.similarity import (
    character_ngrams,
    cosine_similarity,
    jaccard_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    trigram_similarity,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("a", "b", 1),
        ],
    )
    def test_distances(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    def test_symmetric(self):
        assert levenshtein_distance("abcde", "xbcdz") == levenshtein_distance("xbcdz", "abcde")

    def test_similarity_bounds(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert 0.0 < levenshtein_similarity("abc", "abd") < 1.0


class TestCosine:
    def test_identical(self):
        assert cosine_similarity("refArea", "refArea") == pytest.approx(1.0)

    def test_camel_case_tokenised(self):
        # 'refArea' vs 'ref_area' share tokens after splitting.
        assert cosine_similarity("refArea", "ref_area") == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_similarity("alpha", "beta") == 0.0

    def test_character_mode(self):
        assert cosine_similarity("abc", "cab", use_tokens=False) == pytest.approx(1.0)

    def test_empty_strings(self):
        assert cosine_similarity("", "") == 1.0
        assert cosine_similarity("a", "") == 0.0


class TestJaccardAndTrigram:
    def test_jaccard(self):
        assert jaccard_similarity("ref area", "area ref") == 1.0
        assert jaccard_similarity("a b", "b c") == pytest.approx(1 / 3)
        assert jaccard_similarity("", "") == 1.0

    def test_trigram_similar_strings(self):
        assert trigram_similarity("Athens", "Athens") == 1.0
        assert trigram_similarity("Athens", "Athina") > trigram_similarity("Athens", "Rome")

    def test_character_ngrams_padding(self):
        grams = character_ngrams("ab", n=3)
        assert "##a" in grams and "ab#" in grams
