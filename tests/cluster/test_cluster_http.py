"""Live scatter/gather round-trips against an in-process cluster.

Two shards x two replicas run as real ``RelationshipServer``s on
ephemeral ports, fronted by a real :class:`RouterServer` — everything
in one process (threads, not subprocesses) so the tests stay fast, but
every byte travels over actual sockets.  The reference for every
assertion is a single-process :class:`QueryEngine` over the same
result: routing must be invisible to clients.
"""

import json
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.cluster import ClusterManifest, Router, build_shard_engine, start_router
from repro.core import compute_baseline
from repro.service import QueryEngine, start_server
from repro.storage import SegmentStore, save_segments

from tests.conftest import make_random_space

SHARDS = 2
REPLICAS = 2


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    space = make_random_space(40, seed=21)
    result = compute_baseline(space, collect_partial_dimensions=True)
    reference = QueryEngine(result, space)

    store_path = tmp_path_factory.mktemp("cluster") / "links.rseg"
    save_segments(result, store_path, space=space)
    probe = SegmentStore.open(store_path)
    partitions = [
        {"dataset": dataset, "signature": list(signature) if signature is not None else None}
        for dataset, signature in probe.partition_keys()
    ]
    manifest = ClusterManifest(
        store=str(store_path), shards=SHARDS, replicas=REPLICAS, partitions=partitions
    )
    assert len(partitions) > SHARDS  # the ring has real work to split

    servers = {}
    for shard in range(SHARDS):
        for replica in range(REPLICAS):
            store = SegmentStore.open(store_path)
            engine, assigned = build_shard_engine(store, manifest, shard, space=space)
            server = start_server(
                engine, threads=2, read_only=True, role=f"shard-{shard}"
            )
            host, port = server.server_address
            manifest.upsert_worker(
                {"shard": shard, "replica": replica, "host": host, "port": port, "pid": 0}
            )
            servers[(shard, replica)] = server

    router = Router(manifest, space=space, shard_timeout=5.0)
    router_server = start_router(router, threads=4)
    host, port = router_server.server_address

    yield f"http://{host}:{port}", reference, space, servers

    router_server.shutdown()
    router_server.server_close()
    for server in servers.values():
        try:
            server.shutdown()
            server.server_close()
        except OSError:
            pass


def get_json(base: str, path: str, headers: dict | None = None):
    request = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.getheaders()), json.load(response)


def encode(uri) -> str:
    return quote(str(uri), safe="")


class TestRoutedReads:
    def test_healthz(self, cluster):
        base, _, space, _ = cluster
        status, _, body = get_json(base, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["role"] == "router"
        assert body["shards"] == SHARDS
        assert all(count == REPLICAS for count in body["replicas_up"].values())

    def test_every_point_lookup_matches_reference(self, cluster):
        base, reference, space, _ = cluster
        for record in space.observations:
            for relation, method in (
                ("containers", reference.containers),
                ("contained", reference.contained),
                ("complements", reference.complements),
            ):
                _, _, body = get_json(
                    base, f"/observations/{encode(record.uri)}/{relation}"
                )
                assert body[relation] == [str(u) for u in method(record.uri)], (
                    f"{relation} mismatch for {record.uri}"
                )

    def test_summary_counts_are_exact(self, cluster):
        base, reference, space, _ = cluster
        for record in space.observations[:10]:
            _, _, body = get_json(base, f"/observations/{encode(record.uri)}")
            expected = reference.summary(record.uri)
            for field in (
                "containers",
                "contained",
                "complements",
                "partial_containers",
                "partial_contained",
            ):
                assert body[field] == expected[field], f"{field} for {record.uri}"

    def test_related_merge_matches_reference(self, cluster):
        base, reference, space, _ = cluster
        for record in space.observations[:10]:
            _, _, body = get_json(base, f"/observations/{encode(record.uri)}/related?k=5")
            expected = [
                (str(e["uri"]), pytest.approx(float(e["score"])))
                for e in reference.related(record.uri, 5)
            ]
            assert [(e["uri"], float(e["score"])) for e in body["related"]] == expected

    def test_transitive_matches_reference(self, cluster):
        base, reference, space, _ = cluster
        uri = space.observations[0].uri
        _, _, body = get_json(
            base, f"/observations/{encode(uri)}/transitive?direction=up"
        )
        assert {e["uri"] for e in body["reachable"]} == {
            str(u) for u, _ in reference.transitive_containers(uri)
        }

    def test_list_unions_all_shards(self, cluster):
        base, _, space, _ = cluster
        _, _, body = get_json(base, "/observations")
        assert body["count"] == len(space)

    def test_unknown_observation_404s_cluster_wide(self, cluster):
        base, _, _, _ = cluster
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(base, f"/observations/{encode('http://nope/x')}/containers")
        assert excinfo.value.code == 404

    def test_trace_id_round_trips(self, cluster):
        base, _, space, _ = cluster
        uri = space.observations[0].uri
        _, headers, _ = get_json(
            base,
            f"/observations/{encode(uri)}/containers",
            headers={"X-Trace-Id": "trace-cluster-test"},
        )
        assert headers.get("X-Trace-Id") == "trace-cluster-test"

    def test_writes_are_refused(self, cluster):
        base, _, space, _ = cluster
        request = urllib.request.Request(
            base + "/observations",
            data=b"{}",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 501  # routers do not write; shards are read-only

    def test_cluster_metrics_exported(self, cluster):
        base, _, _, _ = cluster
        with urllib.request.urlopen(base + "/metrics") as response:
            text = response.read().decode()
        for family in (
            "repro_cluster_shards",
            "repro_cluster_replicas_up",
            "repro_cluster_fanout_requests_total",
        ):
            assert family in text


class TestFailover:
    """Runs last in the file: it permanently stops one replica per shard."""

    def test_replica_loss_is_invisible(self, cluster):
        base, reference, space, servers = cluster
        for shard in range(SHARDS):
            servers[(shard, 0)].shutdown()
            servers[(shard, 0)].server_close()
        for record in space.observations[:20]:
            _, _, body = get_json(
                base, f"/observations/{encode(record.uri)}/containers"
            )
            assert body["containers"] == [
                str(u) for u in reference.containers(record.uri)
            ]

    def test_healthz_reports_degraded_not_down(self, cluster):
        base, _, _, _ = cluster
        status, _, body = get_json(base, "/healthz")
        assert status == 200
        assert any(count < REPLICAS for count in body["replicas_up"].values())
