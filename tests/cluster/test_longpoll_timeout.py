"""Long-poll subrequests must not trip replica breakers.

``/changes?timeout=T`` holds the shard socket open *on purpose* for up
to T seconds; with the default socket timeout capped at
``shard_timeout`` every idle poll would time out, record a breaker
failure, and two idle beats would open the breaker (window=16,
min_samples=2) — one SSE subscriber tripping 503s for all router
reads.  The router therefore passes a raised per-request socket
timeout (poll wait + shard budget) for feed subrequests.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

import pytest

from repro.cluster import ClusterManifest
from repro.cluster.router import Router, ShardUnavailableError
from repro.resilience.breaker import CLOSED


class _SlowFeedHandler(BaseHTTPRequestHandler):
    """Answers /changes only after the requested long-poll wait."""

    def do_GET(self):
        query = parse_qs(urlsplit(self.path).query)
        wait = float(query.get("timeout", ["0"])[0])
        time.sleep(wait)
        body = json.dumps(
            {"since": 0, "head": 0, "count": 0, "next": 0, "changes": []}
        ).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@pytest.fixture()
def slow_cluster(tmp_path):
    server = ThreadingHTTPServer(("127.0.0.1", 0), _SlowFeedHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    manifest = ClusterManifest(store=str(tmp_path / "links.rseg"), shards=1, replicas=1)
    manifest.upsert_worker(
        {"shard": 0, "replica": 0, "host": host, "port": port, "pid": 0}
    )
    router = Router(manifest, shard_timeout=0.4)
    yield router
    server.shutdown()
    server.server_close()


class TestLongPollSocketTimeout:
    def test_raised_timeout_outlives_the_poll_and_keeps_breaker_closed(
        self, slow_cluster
    ):
        router = slow_cluster
        # the idle long-poll (1s) exceeds shard_timeout (0.4s); with the
        # raised override the call succeeds and the replica stays healthy
        status, _, body = router.call_shard(
            0, "/changes?since=0&timeout=1.0", {}, timeout=router.shard_timeout + 1.0
        )
        assert status == 200
        assert json.loads(body)["changes"] == []
        (replica,) = router._replicas[0]
        assert replica.breaker.state == CLOSED

    def test_default_timeout_would_have_tripped_the_breaker(self, slow_cluster):
        router = slow_cluster
        # the pre-fix behaviour: two idle polls at the default socket
        # timeout each fail and open the replica's breaker
        for _ in range(2):
            with pytest.raises(ShardUnavailableError):
                router.call_shard(0, "/changes?since=0&timeout=1.0", {})
        (replica,) = router._replicas[0]
        assert replica.breaker.state != CLOSED
