"""Cluster manifest commit/load discipline and topology derivation."""

import json

import pytest

from repro.cluster import CLUSTER_MANIFEST_NAME, ClusterManifest, shard_node
from repro.errors import ReproError


def make_manifest(shards=2, replicas=2) -> ClusterManifest:
    partitions = [
        {"dataset": "http://test.example/ds", "signature": [i, 0]} for i in range(7)
    ] + [{"dataset": None, "signature": None}]
    return ClusterManifest(
        store="/tmp/links.rseg",
        shards=shards,
        replicas=replicas,
        partitions=partitions,
        input_path="/tmp/cube.ttl",
    )


class TestTopology:
    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ClusterManifest(store="s", shards=0)
        with pytest.raises(ValueError, match="replicas"):
            ClusterManifest(store="s", shards=1, replicas=0)

    def test_partitions_for_covers_everything_once(self):
        manifest = make_manifest(shards=3)
        seen = []
        for shard in range(manifest.shards):
            seen.extend(
                json.dumps(entry, sort_keys=True)
                for entry in manifest.partitions_for(shard)
            )
        assert sorted(seen) == sorted(
            json.dumps(entry, sort_keys=True) for entry in manifest.partitions
        )

    def test_assignment_matches_partitions_for(self):
        manifest = make_manifest(shards=3)
        assignment = manifest.assignment()
        for shard in range(manifest.shards):
            assert len(assignment[shard_node(shard)]) == len(
                manifest.partitions_for(shard)
            )

    def test_upsert_worker_replaces_same_slot(self):
        manifest = make_manifest()
        manifest.upsert_worker({"shard": 0, "replica": 0, "host": "h", "port": 1, "pid": 10})
        manifest.upsert_worker({"shard": 0, "replica": 1, "host": "h", "port": 2, "pid": 11})
        manifest.upsert_worker({"shard": 0, "replica": 0, "host": "h", "port": 3, "pid": 12})
        assert len(manifest.workers) == 2
        assert manifest.replicas_of(0)[0]["port"] == 3  # replaced, sorted by replica

    def test_replicas_of_filters_by_shard(self):
        manifest = make_manifest()
        manifest.upsert_worker({"shard": 1, "replica": 0, "host": "h", "port": 4})
        assert manifest.replicas_of(0) == []
        assert [w["port"] for w in manifest.replicas_of(1)] == [4]


class TestPersistence:
    def test_write_load_roundtrip(self, tmp_path):
        manifest = make_manifest()
        manifest.upsert_worker({"shard": 0, "replica": 0, "host": "h", "port": 1, "pid": 9})
        path = tmp_path / CLUSTER_MANIFEST_NAME
        manifest.write(path)
        loaded = ClusterManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        # and the re-derived ring agrees on every partition
        assert loaded.assignment() == manifest.assignment()

    def test_generation_bumps_per_write(self, tmp_path):
        manifest = make_manifest()
        path = tmp_path / CLUSTER_MANIFEST_NAME
        manifest.write(path)
        manifest.write(path)
        assert ClusterManifest.load(path).generation == 2

    def test_load_missing(self, tmp_path):
        with pytest.raises(ReproError, match="no cluster manifest"):
            ClusterManifest.load(tmp_path / "nope.json")

    def test_load_foreign_format(self, tmp_path):
        target = tmp_path / CLUSTER_MANIFEST_NAME
        target.write_text('{"format": "something-else"}')
        with pytest.raises(ReproError, match="not a cluster manifest"):
            ClusterManifest.load(target)

    def test_load_future_version(self, tmp_path):
        target = tmp_path / CLUSTER_MANIFEST_NAME
        target.write_text('{"format": "repro-cluster", "version": 99}')
        with pytest.raises(ReproError, match="version"):
            ClusterManifest.load(target)
