"""Unit tests for the consistent-hash ring."""

import pytest

from repro.cluster import DEFAULT_VNODES, HashRing, partition_key_str, ring_hash


def keys(n: int) -> list[str]:
    return [f"http://test.example/ds|{i},0,{i % 5}" for i in range(n)]


class TestRingHash:
    def test_stable(self):
        assert ring_hash("default") == ring_hash("default")

    def test_64_bit(self):
        for sample in ("", "default", "shard-0#17", "a|1,2,3"):
            assert 0 <= ring_hash(sample) < 2**64

    def test_distinct_inputs_differ(self):
        assert ring_hash("shard-0#0") != ring_hash("shard-0#1")


class TestPartitionKeyStr:
    def test_default_partition(self):
        assert partition_key_str(None, None) == "default"

    def test_dataset_and_signature(self):
        assert partition_key_str("http://ds", (1, 0, 2)) == "http://ds|1,0,2"

    def test_signature_only(self):
        assert partition_key_str(None, (2,)) == "|2"

    def test_dataset_only(self):
        assert partition_key_str("http://ds", None) == "http://ds|"


class TestHashRing:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError, match="no nodes"):
            HashRing().node_for("k")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)

    def test_membership(self):
        ring = HashRing(["shard-0", "shard-1"])
        assert len(ring) == 2
        assert "shard-0" in ring and "shard-2" not in ring
        assert ring.nodes == frozenset({"shard-0", "shard-1"})

    def test_add_is_idempotent(self):
        ring = HashRing(["shard-0"])
        ring.add_node("shard-0")
        assert len(ring._ring) == ring.vnodes

    def test_deterministic_across_instances(self):
        a = HashRing(["shard-0", "shard-1", "shard-2"])
        b = HashRing(["shard-2", "shard-0", "shard-1"])  # insertion order irrelevant
        for key in keys(200):
            assert a.node_for(key) == b.node_for(key)

    def test_node_for_returns_member(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        for key in keys(100):
            assert ring.node_for(key) in ring.nodes

    def test_nodes_for_distinct_owner_first(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        for key in keys(50):
            picked = ring.nodes_for(key, 3)
            assert len(picked) == 3
            assert len(set(picked)) == 3
            assert picked[0] == ring.node_for(key)

    def test_nodes_for_caps_at_ring_size(self):
        ring = HashRing(["shard-0", "shard-1"])
        assert len(ring.nodes_for("k", 5)) == 2

    def test_assignment_covers_every_key_once(self):
        ring = HashRing([f"shard-{i}" for i in range(3)])
        sample = keys(120)
        assignment = ring.assignment(sample)
        assert set(assignment) == ring.nodes
        flat = [key for assigned in assignment.values() for key in assigned]
        assert sorted(flat) == sorted(sample)

    def test_balance_with_default_vnodes(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        stats = ring.stats(keys(2000))
        assert stats["vnodes"] == DEFAULT_VNODES
        assert stats["min_load"] > 0
        assert stats["ratio"] < 2.5

    def test_add_node_only_moves_keys_to_the_new_node(self):
        ring = HashRing([f"shard-{i}" for i in range(3)])
        sample = keys(500)
        before = {key: ring.node_for(key) for key in sample}
        ring.add_node("shard-3")
        moved = 0
        for key in sample:
            after = ring.node_for(key)
            if after != before[key]:
                assert after == "shard-3"  # never between pre-existing shards
                moved += 1
        assert 0 < moved < len(sample) / 2  # ~1/4 expected, far below a reshuffle

    def test_remove_node_only_moves_its_own_keys(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        sample = keys(500)
        before = {key: ring.node_for(key) for key in sample}
        ring.remove_node("shard-2")
        for key in sample:
            after = ring.node_for(key)
            if before[key] != "shard-2":
                assert after == before[key]
            else:
                assert after != "shard-2"

    def test_remove_unknown_node_is_a_noop(self):
        ring = HashRing(["shard-0"])
        ring.remove_node("shard-9")
        assert len(ring) == 1
