"""Scatter/gather merge helpers and the WAL foreign-pair prune."""

from repro.cluster import prune_foreign_pairs
from repro.cluster.ring import HashRing, partition_key_str
from repro.cluster.router import (
    _dominates,
    merge_observation_lists,
    merge_partial,
    merge_related,
    merge_relation_lists,
    merge_summary,
)
from repro.core import compute_baseline

from tests.conftest import make_random_space


class TestMerges:
    def test_relation_lists_union_sorted(self):
        bodies = [{"containers": ["b", "a"]}, {"containers": ["c", "a"]}, {}]
        assert merge_relation_lists("containers", bodies) == ["a", "b", "c"]

    def test_related_keeps_best_score_and_ranks(self):
        bodies = [
            {"related": [{"uri": "x", "score": 0.4, "relation": "partial"}]},
            {
                "related": [
                    {"uri": "x", "score": 0.9, "relation": "contains"},
                    {"uri": "y", "score": 0.9, "relation": "contains"},
                    {"uri": "z", "score": 0.1, "relation": "partial"},
                ]
            },
        ]
        merged = merge_related(bodies, 2)
        assert [entry["uri"] for entry in merged] == ["x", "y"]  # score, then uri
        assert merged[0]["score"] == 0.9

    def test_partial_dedupes_by_uri_and_direction(self):
        bodies = [
            {"partial": [{"uri": "x", "degree": 2, "direction": "contains"}]},
            {
                "partial": [
                    {"uri": "x", "degree": 3, "direction": "contains"},
                    {"uri": "x", "degree": 1, "direction": "within"},
                ]
            },
        ]
        merged = merge_partial(bodies, 10)
        assert len(merged) == 2
        assert merged[0] == {"uri": "x", "degree": 3, "direction": "contains"}

    def test_summary_sums_counts_keeps_metadata(self):
        bodies = [
            {"uri": "o", "dataset": None, "cube": None, "containers": 1, "contained": 0,
             "complements": 2, "partial_containers": 0, "partial_contained": 1},
            {"uri": "o", "dataset": "ds", "cube": "c", "containers": 2, "contained": 1,
             "complements": 0, "partial_containers": 3, "partial_contained": 0},
        ]
        merged = merge_summary(bodies)
        assert merged["containers"] == 3
        assert merged["partial_containers"] == 3
        assert merged["dataset"] == "ds" and merged["cube"] == "c"

    def test_observation_lists_union_with_limit(self):
        bodies = [{"observations": ["b", "a"]}, {"observations": ["c"]}]
        merged = merge_observation_lists(bodies, 2)
        assert merged == {"observations": ["a", "b"], "count": 2}

    def test_empty_bodies(self):
        assert merge_relation_lists("containers", []) == []
        assert merge_related([], 5) == []
        assert merge_summary([]) == {}


class TestDominates:
    def test_componentwise(self):
        assert _dominates((1, 1), (2, 1))  # coarser-or-equal on every dimension
        assert _dominates((1, 1), (1, 1))
        assert not _dominates((2, 1), (1, 1))
        assert not _dominates((0, 2), (1, 1))

    def test_length_mismatch_never_dominates(self):
        assert not _dominates((1,), (1, 1))


class TestPruneForeignPairs:
    def test_partition_of_pairs_across_shards(self):
        """Each pair survives on exactly one shard; the union is lossless."""
        space = make_random_space(40, seed=21)
        result = compute_baseline(space, collect_partial_dimensions=True)
        keys = {
            partition_key_str(str(r.dataset), space.level_signature(r.index))
            for r in space.observations
        }
        ring = HashRing(["shard-0", "shard-1"])
        assignment = ring.assignment(sorted(keys))

        shards = []
        for node in ("shard-0", "shard-1"):
            clone = compute_baseline(space, collect_partial_dimensions=True)
            dropped = prune_foreign_pairs(clone, set(assignment[node]), space)
            assert dropped >= 0
            shards.append(clone)

        for field in ("full", "partial", "complementary"):
            parts = [getattr(shard, field) for shard in shards]
            assert parts[0] & parts[1] == set()
            assert parts[0] | parts[1] == getattr(result, field)
        merged_degrees = {**shards[0].degrees, **shards[1].degrees}
        assert merged_degrees == result.degrees

    def test_no_space_is_a_noop(self):
        space = make_random_space(10, seed=3)
        result = compute_baseline(space)
        before = set(result.full)
        assert prune_foreign_pairs(result, set(), None) == 0
        assert result.full == before
