"""End-to-end supervision: real worker processes under ``ClusterSupervisor``.

One small store, two shards, real ``repro shard`` subprocesses and an
in-process router — the same tree ``repro cluster`` runs.  Covers the
respawn path (kill -9 a worker, supervisor replaces it and re-publishes
its endpoint) and the shutdown guarantee (no orphan processes, even
though a respawn happened earlier).
"""

import json
import os
import signal
import time
import urllib.request
from urllib.parse import quote

import pytest

from repro.cluster import ClusterManifest, ClusterSupervisor
from repro.core import compute_baseline
from repro.service import QueryEngine
from repro.storage import save_segments

from tests.conftest import make_random_space


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def get_json(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.load(response)


@pytest.fixture(scope="module")
def supervised(tmp_path_factory):
    root = tmp_path_factory.mktemp("supervised")
    space = make_random_space(12, seed=42)
    result = compute_baseline(space, collect_partial_dimensions=True)
    reference = QueryEngine(result, space)
    store_path = root / "links.rseg"
    save_segments(result, store_path, space=space)

    supervisor = ClusterSupervisor(
        store=str(store_path),
        shards=2,
        replicas=1,
        rundir=root / "rundir",
        port=0,
        router_threads=4,
        shard_threads=2,
        spawn_timeout=60.0,
    )
    router_server = supervisor.start()
    host, port = router_server.server_address
    yield supervisor, f"http://{host}:{port}", reference, space
    supervisor.shutdown(drain_timeout=5.0)


class TestSupervisedCluster:
    def test_workers_up_and_manifest_published(self, supervised):
        supervisor, base, _, _ = supervised
        assert all(
            worker.process is not None and worker.process.poll() is None
            for worker in supervisor._workers
        )
        manifest = ClusterManifest.load(supervisor.manifest_path)
        assert len(manifest.workers) == 2
        assert manifest.router is not None and manifest.router["port"] > 0

    def test_routed_queries_match_reference(self, supervised):
        _, base, reference, space = supervised
        status, body = get_json(base, "/healthz")
        assert status == 200 and body["status"] == "ok"
        for record in space.observations[:6]:
            _, body = get_json(
                base, f"/observations/{quote(str(record.uri), safe='')}/containers"
            )
            assert body["containers"] == [str(u) for u in reference.containers(record.uri)]

    def test_killed_worker_is_respawned(self, supervised):
        supervisor, base, reference, space = supervised
        victim = supervisor._workers[0]
        old_pid = victim.process.pid
        os.kill(old_pid, signal.SIGKILL)
        victim.process.wait()
        died = supervisor.check_children()
        assert died == 1
        assert victim.process.pid != old_pid
        assert victim.process.poll() is None
        # the replacement's endpoint was re-published (generation bumped)
        manifest = ClusterManifest.load(supervisor.manifest_path)
        entry = manifest.replicas_of(victim.shard)[0]
        assert entry["pid"] == victim.process.pid
        # the router picks the new topology up by mtime within ~poll_interval
        deadline = time.monotonic() + 10.0
        uri = quote(str(space.observations[0].uri), safe="")
        while True:
            try:
                status, _ = get_json(base, f"/observations/{uri}/containers")
                if status == 200:
                    break
            except urllib.error.HTTPError as exc:
                if exc.code != 503 or time.monotonic() > deadline:
                    raise
                time.sleep(0.2)

    def test_shutdown_leaves_no_orphans(self, supervised):
        supervisor, base, _, _ = supervised
        pids = [worker.process.pid for worker in supervisor._workers]
        supervisor.shutdown(drain_timeout=5.0)
        for pid in pids:
            assert not pid_alive(pid)
        # no respawn slipped in behind shutdown's back
        assert supervisor.check_children() == 0
        for worker in supervisor._workers:
            assert worker.process is None or worker.process.poll() is not None
