"""Cluster-wide telemetry, end to end over real sockets: federated
``/metrics``, distributed trace assembly on ``/debug/trace/<id>`` and
the ``X-Span-Id`` parentage that stitches router and shard spans into
one tree."""

import json
import urllib.parse
import urllib.request

import pytest

from repro.cluster import ClusterManifest, Router, build_shard_engine, start_router
from repro.core import compute_baseline
from repro.obs.spanstore import assemble_trace, render_trace
from repro.service import QueryEngine, start_server
from repro.storage import SegmentStore, save_segments

from tests.conftest import make_random_space
from tests.exposition import parse_exposition, validate

SHARDS = 2
REPLICAS = 2


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    space = make_random_space(40, seed=33)
    result = compute_baseline(space, collect_partial_dimensions=True)

    store_path = tmp_path_factory.mktemp("telemetry") / "links.rseg"
    save_segments(result, store_path, space=space)
    probe = SegmentStore.open(store_path)
    partitions = [
        {"dataset": dataset, "signature": list(signature) if signature is not None else None}
        for dataset, signature in probe.partition_keys()
    ]
    manifest = ClusterManifest(
        store=str(store_path), shards=SHARDS, replicas=REPLICAS, partitions=partitions
    )

    servers = []
    for shard in range(SHARDS):
        for replica in range(REPLICAS):
            store = SegmentStore.open(store_path)
            engine, _ = build_shard_engine(store, manifest, shard, space=space)
            server = start_server(
                engine, threads=2, read_only=True, role=f"shard-{shard}"
            )
            host, port = server.server_address
            manifest.upsert_worker(
                {"shard": shard, "replica": replica, "host": host, "port": port, "pid": 0}
            )
            servers.append(server)

    router = Router(manifest, space=space, shard_timeout=5.0)
    router_server = start_router(router, threads=4)
    host, port = router_server.server_address

    yield f"http://{host}:{port}", space

    router_server.shutdown()
    router_server.server_close()
    for server in servers:
        server.shutdown()
        server.server_close()


def fetch(base: str, path: str, headers: dict | None = None):
    request = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


class TestFederatedMetrics:
    def test_scrape_is_valid_and_labelled_by_shard(self, cluster):
        base, _ = cluster
        # A federated scrape makes every replica serve /metrics?local=1,
        # so the *second* scrape sees a repro_requests_total series from
        # all of them.
        fetch(base, "/metrics")
        _, headers, body = fetch(base, "/metrics")
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert validate(text) == []
        families = parse_exposition(text)
        shard_labels = {
            (s.labels.get("shard"), s.labels.get("replica"))
            for s in families["repro_requests_total"].samples
            if "shard" in s.labels
        }
        assert {pair[0] for pair in shard_labels} == {"0", "1"}
        assert len(shard_labels) == SHARDS * REPLICAS

    def test_router_series_stay_unlabelled(self, cluster):
        base, _ = cluster
        _, _, body = fetch(base, "/metrics")
        families = parse_exposition(body.decode("utf-8"))
        samples = families["repro_cluster_shards"].samples
        assert any("shard" not in s.labels for s in samples)

    def test_local_opt_out(self, cluster):
        base, _ = cluster
        _, _, body = fetch(base, "/metrics?local=1")
        families = parse_exposition(body.decode("utf-8"))
        assert all(
            "replica" not in s.labels
            for family in families.values()
            for s in family.samples
        )

    def test_federation_counter_advances(self, cluster):
        base, _ = cluster
        fetch(base, "/metrics")
        _, _, body = fetch(base, "/metrics")
        families = parse_exposition(body.decode("utf-8"))
        (sample,) = [
            s
            for s in families["repro_cluster_federated_scrapes_total"].samples
            if "shard" not in s.labels
        ]
        assert sample.value >= 1


class TestTraceAssembly:
    TRACE = "feedc0defeedc0defeedc0defeedc0de"

    @staticmethod
    def scatter_path(base: str) -> str:
        """A path the router must scatter to every shard: ``related``
        is unprunable, so the plan consults every partition."""
        _, _, body = fetch(base, "/observations?limit=1")
        uri = json.loads(body)["observations"][0]
        return f"/observations/{urllib.parse.quote(uri, safe='')}/related"

    def test_query_produces_multi_shard_tree(self, cluster):
        base, _ = cluster
        path = self.scatter_path(base)
        _, headers, _ = fetch(base, path, {"X-Trace-Id": self.TRACE})
        assert headers["X-Trace-Id"] == self.TRACE

        _, _, body = fetch(base, f"/debug/trace/{self.TRACE}")
        payload = json.loads(body)
        assert payload["trace_id"] == self.TRACE
        spans = payload["spans"]
        assert all(record["trace_id"] == self.TRACE for record in spans)

        routers = [r for r in spans if r["span"] == "router.request"]
        shards = [r for r in spans if r["span"] == "http.request"]
        assert len(routers) == 1
        assert len(shards) >= 2  # at least one span per shard
        roles = {r["fields"].get("role") for r in shards}
        assert len({role for role in roles if role and role.startswith("shard-")}) == SHARDS

        # X-Span-Id parentage: every shard span is a child of the
        # router span, so assembly yields one tree, not a forest.
        root_id = routers[0]["span_id"]
        assert all(r["parent_id"] == root_id for r in shards)
        roots = assemble_trace(spans)
        assert len(roots) == 1
        assert len(roots[0]["children"]) == len(shards)

        rendered = render_trace(spans)
        assert f"trace {self.TRACE}" in rendered
        assert "[router]" in rendered and "[shard-" in rendered

    def test_deadline_budget_attributed(self, cluster):
        base, _ = cluster
        trace_id = "beefbeefbeefbeefbeefbeefbeefbeef"
        fetch(
            base,
            self.scatter_path(base),
            {"X-Trace-Id": trace_id, "X-Deadline-Ms": "5000"},
        )
        _, _, body = fetch(base, f"/debug/trace/{trace_id}")
        spans = json.loads(body)["spans"]
        router_span = next(r for r in spans if r["span"] == "router.request")
        assert router_span["fields"].get("deadline_ms") == "5000"
        assert "budget=" in render_trace(spans)

    def test_unknown_trace_is_empty_not_error(self, cluster):
        base, _ = cluster
        status, _, body = fetch(base, "/debug/trace/" + "0" * 32)
        assert status == 200
        assert json.loads(body)["spans"] == []


class TestDebugSurface:
    def test_router_debug_vars(self, cluster):
        base, _ = cluster
        _, _, body = fetch(base, "/debug/vars")
        payload = json.loads(body)
        assert payload["spanstore"]["spans"] >= 1
        assert "repro_cluster_shards" in payload["metrics"]

    def test_router_profile_endpoint(self, cluster):
        base, _ = cluster
        status, _, body = fetch(base, "/debug/profile?format=json")
        assert status == 200
        payload = json.loads(body)
        assert payload["running"] is True
