"""Shared fixtures: the paper's example, small random spaces, hierarchies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.space import ObservationSpace
from repro.data.example import build_example_cubespace, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.rdf.terms import URIRef


@pytest.fixture
def example_space() -> ObservationSpace:
    """The running example of Figures 1-2 (10 observations)."""
    return build_example_space()


@pytest.fixture
def example_cubespace():
    return build_example_cubespace()


def make_uniform_hierarchy(prefix: str, fanout: int = 3, depth: int = 2) -> Hierarchy:
    """A complete ``fanout``-ary tree of the given depth."""
    root = URIRef(f"http://test.example/{prefix}/ALL")
    hierarchy = Hierarchy(root)
    frontier = [root]
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for child_index in range(fanout):
                child = URIRef(f"{parent}_{child_index}")
                hierarchy.add(child, parent)
                next_frontier.append(child)
        frontier = next_frontier
    return hierarchy


def make_random_space(
    n: int,
    dimension_count: int = 3,
    measure_count: int = 3,
    seed: int = 0,
    fanout: int = 3,
    depth: int = 2,
) -> ObservationSpace:
    """A random observation space for equivalence/property tests."""
    rng = np.random.default_rng(seed)
    dimensions = tuple(URIRef(f"http://test.example/dim{i}") for i in range(dimension_count))
    hierarchies = {
        dimension: make_uniform_hierarchy(f"d{i}", fanout=fanout, depth=depth)
        for i, dimension in enumerate(dimensions)
    }
    space = ObservationSpace(dimensions, hierarchies)
    measures = [URIRef(f"http://test.example/m{i}") for i in range(measure_count)]
    dataset = URIRef("http://test.example/ds")
    for index in range(n):
        dims = {}
        for dimension in dimensions:
            codes = sorted(hierarchies[dimension], key=str)
            dims[dimension] = codes[int(rng.integers(len(codes)))]
        chosen = {measures[int(rng.integers(measure_count))]}
        if rng.random() < 0.2 and measure_count > 1:
            chosen.add(measures[int(rng.integers(measure_count))])
        space.add(URIRef(f"http://test.example/obs/{index}"), dataset, dims, chosen)
    return space


@pytest.fixture
def random_space() -> ObservationSpace:
    return make_random_space(60, seed=11)
