"""Unit tests for the facade and incremental updates."""

import pytest

from repro.errors import AlgorithmError
from repro.core import Method, compute_baseline, compute_relationships, update_relationships
from repro.core.space import ObservationSpace
from repro.data.example import build_example_cubespace, build_example_space
from repro.rdf import EX

from tests.conftest import make_random_space


class TestFacade:
    def test_accepts_cubespace(self):
        cube = build_example_cubespace()
        result = compute_relationships(cube, Method.BASELINE)
        assert result.total() > 0

    def test_accepts_observation_space(self):
        space = build_example_space()
        assert compute_relationships(space, Method.CUBE_MASKING).total() > 0

    def test_method_by_string(self):
        space = build_example_space()
        assert compute_relationships(space, "baseline") == compute_relationships(
            space, Method.BASELINE
        )

    def test_default_method_is_cube_masking(self):
        space = build_example_space()
        assert compute_relationships(space) == compute_relationships(space, Method.CUBE_MASKING)

    def test_options_forwarded(self):
        space = build_example_space()
        result = compute_relationships(space, Method.BASELINE, collect_partial=False)
        assert result.partial == set()

    def test_unknown_method(self):
        space = build_example_space()
        with pytest.raises(AlgorithmError):
            compute_relationships(space, "quantum")

    def test_bad_input_type(self):
        with pytest.raises(AlgorithmError):
            compute_relationships([1, 2, 3])  # type: ignore[arg-type]

    @pytest.mark.parametrize(
        "method", [Method.BASELINE, Method.CUBE_MASKING, Method.SPARQL, Method.RULES]
    )
    def test_lossless_methods_agree(self, method):
        space = build_example_space()
        assert compute_relationships(space, method) == compute_relationships(
            space, Method.BASELINE
        )


class TestIncrementalUpdate:
    def test_matches_full_recompute(self):
        space = make_random_space(40, seed=20)
        result = compute_baseline(space)
        # Move the last 10 observations into an "arriving later" batch.
        base_space = space.select(range(30))
        base_result = compute_baseline(base_space)
        newcomers = [
            (record.uri, record.dataset, dict(zip(space.dimensions, record.codes)), record.measures)
            for record in space.observations[30:]
        ]
        updated = update_relationships(base_space, base_result, newcomers)
        assert updated == result

    def test_space_extended_in_place(self):
        space = make_random_space(10, seed=21)
        result = compute_baseline(space)
        record = space.observations[0]
        update_relationships(
            space,
            result,
            [(EX.newObs, record.dataset, dict(zip(space.dimensions, record.codes)), record.measures)],
        )
        assert len(space) == 11
        # The clone of observation 0 is complementary with it.
        assert result.is_complementary(EX.newObs, record.uri)

    def test_empty_batch_is_noop(self):
        space = make_random_space(15, seed=22)
        result = compute_baseline(space)
        before = (set(result.full), set(result.partial), set(result.complementary))
        update_relationships(space, result, [])
        assert before == (set(result.full), set(result.partial), set(result.complementary))

    def test_incremental_collects_partial_metadata(self):
        space = make_random_space(10, seed=23)
        result = compute_baseline(space)
        record = space.observations[0]
        update_relationships(
            space,
            result,
            [(EX.addition, record.dataset, {}, record.measures)],
        )
        partial_with_new = [p for p in result.partial if EX.addition in p]
        for pair in partial_with_new:
            assert result.degree(*pair) is not None


class TestIncrementalDelta:
    """The ``return_delta=True`` contract used by the service layer."""

    @staticmethod
    def _newcomers(space, records):
        return [
            (r.uri, r.dataset, dict(zip(space.dimensions, r.codes)), r.measures)
            for r in records
        ]

    def test_update_reports_exact_delta(self):
        space = make_random_space(40, seed=30)
        base_space = space.select(range(30))
        base = compute_baseline(base_space)
        before = (set(base.full), set(base.partial), set(base.complementary))
        _, delta = update_relationships(
            base_space,
            base,
            self._newcomers(space, space.observations[30:]),
            return_delta=True,
        )
        assert delta.added_full == base.full - before[0]
        assert delta.added_partial == base.partial - before[1]
        assert delta.added_complementary == base.complementary - before[2]
        assert not delta.removed_full and not delta.removed_partial
        # Added-partial metadata mirrors the result's entries.
        for pair in delta.added_partial:
            assert delta.partial_map[pair] == base.partial_map[pair]
            assert delta.degrees[pair] == base.degrees[pair]

    def test_update_without_flag_keeps_old_return_type(self):
        space = make_random_space(12, seed=31)
        result = compute_baseline(space)
        returned = update_relationships(space, result, [])
        assert returned is result

    def test_pruned_update_matches_full_recompute(self):
        """Signature pruning must be lossless: equivalence against a
        batch recomputation over the extended space (several seeds,
        several batch sizes)."""
        from repro.core import compute_cubemask

        for seed, split in ((40, 25), (41, 10), (42, 49)):
            space = make_random_space(50, dimension_count=4, seed=seed)
            expected = compute_baseline(space, collect_partial_dimensions=True)
            base_space = space.select(range(split))
            base = compute_baseline(base_space, collect_partial_dimensions=True)
            updated = update_relationships(
                base_space, base, self._newcomers(space, space.observations[split:])
            )
            assert updated == expected
            assert updated == compute_cubemask(space, collect_partial_dimensions=True)
            # metadata agrees on every partial pair involving a newcomer
            new_uris = {r.uri for r in space.observations[split:]}
            for pair in updated.partial:
                if set(pair) & new_uris:
                    assert updated.partial_map[pair] == expected.partial_map[pair]
                    assert updated.degrees[pair] == pytest.approx(expected.degrees[pair])

    def test_remove_reports_purged_pairs(self):
        space = make_random_space(30, seed=32)
        result = compute_baseline(space)
        victims = [space.observations[i].uri for i in (0, 7, 13)]
        full_before = set(result.full)
        partial_before = set(result.partial)
        compl_before = set(result.complementary)
        from repro.core import remove_observations

        new_space, result, delta = remove_observations(
            space, result, victims, return_delta=True
        )
        gone = set(victims)
        assert delta.removed_full == {p for p in full_before if set(p) & gone}
        assert delta.removed_partial == {p for p in partial_before if set(p) & gone}
        assert delta.removed_complementary == {p for p in compl_before if set(p) & gone}
        assert not delta.added_full
        assert len(new_space) == 27
        # purged metadata is gone from the mutated result
        for pair in delta.removed_partial:
            assert pair not in result.partial_map
            assert pair not in result.degrees

    def test_delta_touched_and_counts(self):
        space = make_random_space(10, seed=33)
        result = compute_baseline(space)
        record = space.observations[0]
        _, delta = update_relationships(
            space,
            result,
            [(EX.twin, record.dataset, dict(zip(space.dimensions, record.codes)), record.measures)],
            return_delta=True,
        )
        assert delta  # truthy: something was added
        assert EX.twin in delta.touched()
        assert delta.total_added() >= 1 and delta.total_removed() == 0
