"""Unit tests for the facade and incremental updates."""

import pytest

from repro.errors import AlgorithmError
from repro.core import Method, compute_baseline, compute_relationships, update_relationships
from repro.core.space import ObservationSpace
from repro.data.example import build_example_cubespace, build_example_space
from repro.rdf import EX

from tests.conftest import make_random_space


class TestFacade:
    def test_accepts_cubespace(self):
        cube = build_example_cubespace()
        result = compute_relationships(cube, Method.BASELINE)
        assert result.total() > 0

    def test_accepts_observation_space(self):
        space = build_example_space()
        assert compute_relationships(space, Method.CUBE_MASKING).total() > 0

    def test_method_by_string(self):
        space = build_example_space()
        assert compute_relationships(space, "baseline") == compute_relationships(
            space, Method.BASELINE
        )

    def test_default_method_is_cube_masking(self):
        space = build_example_space()
        assert compute_relationships(space) == compute_relationships(space, Method.CUBE_MASKING)

    def test_options_forwarded(self):
        space = build_example_space()
        result = compute_relationships(space, Method.BASELINE, collect_partial=False)
        assert result.partial == set()

    def test_unknown_method(self):
        space = build_example_space()
        with pytest.raises(AlgorithmError):
            compute_relationships(space, "quantum")

    def test_bad_input_type(self):
        with pytest.raises(AlgorithmError):
            compute_relationships([1, 2, 3])  # type: ignore[arg-type]

    @pytest.mark.parametrize(
        "method", [Method.BASELINE, Method.CUBE_MASKING, Method.SPARQL, Method.RULES]
    )
    def test_lossless_methods_agree(self, method):
        space = build_example_space()
        assert compute_relationships(space, method) == compute_relationships(
            space, Method.BASELINE
        )


class TestIncrementalUpdate:
    def test_matches_full_recompute(self):
        space = make_random_space(40, seed=20)
        result = compute_baseline(space)
        # Move the last 10 observations into an "arriving later" batch.
        base_space = space.select(range(30))
        base_result = compute_baseline(base_space)
        newcomers = [
            (record.uri, record.dataset, dict(zip(space.dimensions, record.codes)), record.measures)
            for record in space.observations[30:]
        ]
        updated = update_relationships(base_space, base_result, newcomers)
        assert updated == result

    def test_space_extended_in_place(self):
        space = make_random_space(10, seed=21)
        result = compute_baseline(space)
        record = space.observations[0]
        update_relationships(
            space,
            result,
            [(EX.newObs, record.dataset, dict(zip(space.dimensions, record.codes)), record.measures)],
        )
        assert len(space) == 11
        # The clone of observation 0 is complementary with it.
        assert result.is_complementary(EX.newObs, record.uri)

    def test_empty_batch_is_noop(self):
        space = make_random_space(15, seed=22)
        result = compute_baseline(space)
        before = (set(result.full), set(result.partial), set(result.complementary))
        update_relationships(space, result, [])
        assert before == (set(result.full), set(result.partial), set(result.complementary))

    def test_incremental_collects_partial_metadata(self):
        space = make_random_space(10, seed=23)
        result = compute_baseline(space)
        record = space.observations[0]
        update_relationships(
            space,
            result,
            [(EX.addition, record.dataset, {}, record.measures)],
        )
        partial_with_new = [p for p in result.partial if EX.addition in p]
        for pair in partial_with_new:
            assert result.degree(*pair) is not None
