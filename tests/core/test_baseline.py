"""Unit tests for the baseline algorithm (Algorithms 1-2)."""

import numpy as np
import pytest

from repro.core.baseline import compute_baseline, derive_relationships, measure_overlap_matrix
from repro.core.matrix import OccurrenceMatrix
from repro.core.space import ObservationSpace
from repro.data.example import EXNS, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX

from tests.conftest import make_random_space


@pytest.fixture
def example() -> ObservationSpace:
    return build_example_space()


class TestMeasureOverlap:
    def test_matrix_matches_reference(self, example):
        overlap = measure_overlap_matrix(example)
        for a in range(len(example)):
            for b in range(len(example)):
                assert overlap[a, b] == example.measure_overlap(a, b)

    def test_symmetric(self, example):
        overlap = measure_overlap_matrix(example)
        assert np.array_equal(overlap, overlap.T)


class TestBaselineSemantics:
    def test_matches_reference_predicates(self):
        space = make_random_space(50, seed=3)
        result = compute_baseline(space)
        uris = [r.uri for r in space.observations]
        for a in range(len(space)):
            for b in range(len(space)):
                if a == b:
                    continue
                assert ((uris[a], uris[b]) in result.full) == space.is_full_containment(a, b)
                assert ((uris[a], uris[b]) in result.partial) == space.is_partial_containment(a, b)
                assert result.is_complementary(uris[a], uris[b]) == space.is_complementary(a, b)

    def test_full_and_partial_disjoint(self):
        space = make_random_space(60, seed=4)
        result = compute_baseline(space)
        assert not (result.full & result.partial)

    def test_no_self_pairs(self, example):
        result = compute_baseline(example)
        assert all(a != b for a, b in result.full | result.partial)

    def test_partial_dimensions_collected(self, example):
        result = compute_baseline(example, collect_partial_dimensions=True)
        pair = (EXNS.o21, EXNS.o31)
        assert pair in result.partial
        assert result.partial_dimensions(*pair) == frozenset({EXNS.refArea, EXNS.sex})
        assert result.degree(*pair) == pytest.approx(2 / 3)

    def test_collect_partial_false(self, example):
        result = compute_baseline(example, collect_partial=False)
        assert result.partial == set()
        assert len(result.full) > 0

    def test_collect_partial_without_dimensions(self, example):
        result = compute_baseline(example, collect_partial_dimensions=False)
        pair = (EXNS.o21, EXNS.o31)
        assert pair in result.partial
        assert result.partial_dimensions(*pair) == frozenset()
        assert result.degree(*pair) == pytest.approx(2 / 3)

    def test_backends_agree(self):
        space = make_random_space(40, seed=5)
        assert compute_baseline(space, backend="numpy") == compute_baseline(space, backend="python")

    def test_empty_space(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        result = compute_baseline(space)
        assert result.total() == 0

    def test_single_observation(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.o1, EX.d, {}, {EX.m})
        assert compute_baseline(space).total() == 0

    def test_derive_from_precomputed_ocm(self, example):
        matrix = OccurrenceMatrix(example)
        ocm = matrix.compute_ocm()
        result = derive_relationships(example, ocm)
        assert result == compute_baseline(example)


class TestComplementaritySemantics:
    def test_mutual_containment_without_measure_overlap(self):
        """Complementarity has no measure condition (Definition 3)."""
        geo = Hierarchy(EX.World)
        geo.add(EX.Athens, EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.o1, EX.d, {EX.refArea: EX.Athens}, {EX.population})
        space.add(EX.o2, EX.d, {EX.refArea: EX.Athens}, {EX.unemployment})
        result = compute_baseline(space)
        assert result.is_complementary(EX.o1, EX.o2)
        assert result.full == set()  # no shared measure -> no containment

    def test_identical_observations_with_shared_measure(self):
        """Equal vectors + shared measure: mutual full containment AND
        complementarity, per the OCM semantics of Algorithm 2."""
        geo = Hierarchy(EX.World)
        geo.add(EX.Athens, EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.o1, EX.d, {EX.refArea: EX.Athens}, {EX.population})
        space.add(EX.o2, EX.d, {EX.refArea: EX.Athens}, {EX.population})
        result = compute_baseline(space)
        assert (EX.o1, EX.o2) in result.full
        assert (EX.o2, EX.o1) in result.full
        assert result.is_complementary(EX.o1, EX.o2)
