"""Unit tests for the clustering method (Algorithm 3)."""

import pytest

from repro.errors import AlgorithmError
from repro.core.baseline import compute_baseline
from repro.core.cluster_method import compute_clustering, default_cluster_count, feature_matrix
from repro.core.space import ObservationSpace
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX

from tests.conftest import make_random_space


class TestClusterMethod:
    @pytest.mark.parametrize("algorithm", ["kmeans", "xmeans", "canopy", "hierarchical"])
    def test_output_is_subset_of_baseline(self, algorithm):
        space = make_random_space(80, seed=1)
        truth = compute_baseline(space)
        found = compute_clustering(space, algorithm=algorithm, seed=1)
        assert found.full <= truth.full
        assert found.partial <= truth.partial
        assert found.complementary <= truth.complementary

    def test_recall_bounded(self):
        space = make_random_space(80, seed=2)
        truth = compute_baseline(space)
        found = compute_clustering(space, seed=2)
        recall = found.recall_against(truth)
        assert 0.0 <= recall.full <= 1.0
        assert 0.0 <= recall.partial <= 1.0

    def test_one_cluster_equals_baseline(self):
        """The paper: baseline == clustering with exactly one cluster."""
        space = make_random_space(50, seed=3)
        found = compute_clustering(
            space, algorithm="kmeans", n_clusters=1, sample_rate=1.0, seed=0
        )
        assert found == compute_baseline(space)

    def test_deterministic_given_seed(self):
        space = make_random_space(60, seed=4)
        r1 = compute_clustering(space, seed=7)
        r2 = compute_clustering(space, seed=7)
        assert r1 == r2

    def test_sample_rate_validation(self):
        space = make_random_space(20, seed=0)
        with pytest.raises(AlgorithmError):
            compute_clustering(space, sample_rate=0.0)
        with pytest.raises(AlgorithmError):
            compute_clustering(space, sample_rate=1.5)

    def test_unknown_algorithm(self):
        space = make_random_space(20, seed=0)
        with pytest.raises(AlgorithmError):
            compute_clustering(space, algorithm="dbscan")

    def test_empty_space(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        assert compute_clustering(space).total() == 0

    def test_more_clusters_lower_or_equal_recall(self):
        """More clusters -> fewer comparisons -> recall can only drop."""
        space = make_random_space(100, seed=5)
        truth = compute_baseline(space)
        few = compute_clustering(space, algorithm="kmeans", n_clusters=2, seed=1, sample_rate=1.0)
        many = compute_clustering(space, algorithm="kmeans", n_clusters=25, seed=1, sample_rate=1.0)
        assert many.recall_against(truth).partial <= few.recall_against(truth).partial + 1e-9


class TestHelpers:
    def test_default_cluster_count_rule_of_thumb(self):
        assert default_cluster_count(2) == 1
        assert default_cluster_count(200) == 10  # sqrt(100)
        assert default_cluster_count(0) == 1

    def test_feature_matrix_shape(self):
        space = make_random_space(10, seed=0)
        features = feature_matrix(space)
        total_codes = sum(len(space.hierarchies[d]) for d in space.dimensions)
        assert features.shape == (10, total_codes)
        assert set(features.ravel()) <= {0.0, 1.0}
