"""Unit tests for the clustering algorithms."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.core.clustering import (
    CanopyClustering,
    HierarchicalClustering,
    KMeans,
    XMeans,
    assign_to_centroids,
)
from repro.core.clustering.canopy import jaccard_distances
from repro.core.clustering.kmeans import pairwise_sq_distances


def two_blobs(n_per_blob: int = 20, seed: int = 0) -> np.ndarray:
    """Two well-separated binary-ish blobs in 8 dimensions."""
    rng = np.random.default_rng(seed)
    a = (rng.random((n_per_blob, 8)) < 0.1).astype(float)
    a[:, :4] = 1.0
    b = (rng.random((n_per_blob, 8)) < 0.1).astype(float)
    b[:, 4:] = 1.0
    return np.vstack([a, b])


def cluster_agreement(labels: np.ndarray, n_per_blob: int) -> bool:
    first = set(labels[:n_per_blob])
    second = set(labels[n_per_blob:])
    return len(first) == 1 and len(second) == 1 and first != second


class TestDistances:
    def test_pairwise_sq_distances(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        centers = np.array([[0.0, 0.0]])
        distances = pairwise_sq_distances(points, centers)
        assert distances[0, 0] == pytest.approx(0.0)
        assert distances[1, 0] == pytest.approx(25.0)

    def test_jaccard_distances(self):
        points = np.array([[1, 1, 0], [0, 0, 1], [1, 1, 0]])
        center = np.array([1, 1, 0])
        distances = jaccard_distances(points, center)
        assert distances[0] == pytest.approx(0.0)
        assert distances[1] == pytest.approx(1.0)

    def test_assign_to_centroids(self):
        points = np.array([[0.0], [10.0], [11.0]])
        centers = np.array([[0.0], [10.0]])
        assert list(assign_to_centroids(points, centers)) == [0, 1, 1]


class TestKMeans:
    def test_separates_blobs(self):
        X = two_blobs()
        labels = KMeans(2, seed=1).fit_assign(X, X)
        assert cluster_agreement(labels, 20)

    def test_deterministic_given_seed(self):
        X = two_blobs()
        l1 = KMeans(2, seed=5).fit_assign(X, X)
        l2 = KMeans(2, seed=5).fit_assign(X, X)
        assert np.array_equal(l1, l2)

    def test_k_larger_than_points(self):
        X = np.array([[0.0], [1.0]])
        model = KMeans(5, seed=0).fit(X)
        assert len(model.centers_) <= 2

    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            KMeans(0)

    def test_empty_input_rejected(self):
        with pytest.raises(AlgorithmError):
            KMeans(2).fit(np.empty((0, 3)))

    def test_inertia_decreases_with_more_clusters(self):
        X = two_blobs()
        k1 = KMeans(1, seed=0).fit(X)
        k2 = KMeans(2, seed=0).fit(X)
        assert k2.inertia_ <= k1.inertia_


class TestXMeans:
    def test_finds_two_blobs(self):
        X = two_blobs(30)
        model = XMeans(min_k=1, max_k=8, seed=2).fit(X)
        assert 2 <= len(model.centers_) <= 8
        labels = assign_to_centroids(X, model.centers_)
        # Points from different blobs must never share a cluster.
        assert set(labels[:30]).isdisjoint(set(labels[30:]))

    def test_respects_max_k(self):
        X = two_blobs()
        model = XMeans(min_k=1, max_k=2, seed=0).fit(X)
        assert len(model.centers_) <= 2

    def test_fit_assign_covers_all_points(self):
        X = two_blobs()
        labels = XMeans(seed=3).fit_assign(X[::2], X)
        assert len(labels) == len(X)


class TestCanopy:
    def test_tight_duplicates_collapse(self):
        X = np.array([[1, 1, 0, 0]] * 5 + [[0, 0, 1, 1]] * 5, dtype=float)
        model = CanopyClustering(t1=0.8, t2=0.5, seed=0).fit(X)
        assert len(model.centers_) == 2

    def test_assignment(self):
        X = np.array([[1, 1, 0, 0]] * 3 + [[0, 0, 1, 1]] * 3, dtype=float)
        labels = CanopyClustering(t1=0.8, t2=0.5, seed=0).fit_assign(X, X)
        assert cluster_agreement(labels, 3)

    def test_threshold_validation(self):
        with pytest.raises(AlgorithmError):
            CanopyClustering(t1=0.3, t2=0.6)

    def test_assign_before_fit_rejected(self):
        with pytest.raises(AlgorithmError):
            CanopyClustering().assign(np.ones((2, 2)))

    def test_zero_t2_keeps_all_as_centers(self):
        X = np.eye(4)
        model = CanopyClustering(t1=1.0, t2=0.0, seed=0).fit(X)
        assert len(model.centers_) == 4


class TestHierarchical:
    def test_separates_blobs(self):
        X = two_blobs(10)
        labels = HierarchicalClustering(2).fit_assign(X, X)
        assert cluster_agreement(labels, 10)

    def test_target_cluster_count(self):
        X = two_blobs(10)
        model = HierarchicalClustering(3).fit(X)
        assert len(model.centers_) == 3

    def test_more_clusters_than_points(self):
        X = np.eye(3)
        model = HierarchicalClustering(10).fit(X)
        assert len(model.centers_) == 3

    def test_labels_cover_sample(self):
        X = two_blobs(8)
        model = HierarchicalClustering(2).fit(X)
        assert len(model.labels_) == len(X)
        assert set(model.labels_) == {0, 1}

    def test_invalid_cluster_count(self):
        with pytest.raises(AlgorithmError):
            HierarchicalClustering(0)
