"""Unit tests for the SPARQL- and rule-based comparators."""

import pytest

from repro.errors import AlgorithmError
from repro.core.baseline import compute_baseline
from repro.core.export import space_to_graph
from repro.core.rules_method import build_rule_program, compute_rules
from repro.core.sparql_method import FAITHFUL_QUERIES, PAPER_QUERIES, compute_sparql
from repro.data.example import build_example_space
from repro.rdf.namespaces import QB, RDF, SKOS
from repro.rules import parse_rules
from repro.sparql import parse_query

from tests.conftest import make_random_space


class TestExport:
    def test_export_shapes(self):
        space = build_example_space()
        graph = space_to_graph(space)
        observations = list(graph.subjects(RDF.type, QB.Observation))
        assert len(observations) == len(space)
        dimensions = list(graph.subjects(RDF.type, QB.DimensionProperty))
        assert len(dimensions) == len(space.dimensions)
        assert len(list(graph.triples(None, SKOS.broader, None))) > 0

    def test_export_pads_dimensions(self):
        space = build_example_space()
        graph = space_to_graph(space)
        # Every observation has a triple for every bus dimension.
        for record in space.observations:
            for dimension in space.dimensions:
                assert graph.value(record.uri, dimension, None) is not None


class TestSparqlComparator:
    def test_faithful_equals_baseline_example(self):
        space = build_example_space()
        assert compute_sparql(space) == compute_baseline(space)

    def test_faithful_equals_baseline_random(self):
        space = make_random_space(25, seed=8, dimension_count=2, fanout=2)
        assert compute_sparql(space) == compute_baseline(space)

    def test_reuses_supplied_graph(self):
        space = build_example_space()
        graph = space_to_graph(space)
        assert compute_sparql(space, graph=graph) == compute_baseline(space)

    def test_collect_partial_false(self):
        space = build_example_space()
        result = compute_sparql(space, collect_partial=False)
        assert result.partial == set()
        assert result.full == compute_baseline(space).full

    def test_paper_mode_runs_and_detects_more(self):
        """The paper's queries are relaxed (no measure condition), so
        they can only over-approximate the faithful sets."""
        space = build_example_space()
        faithful = compute_sparql(space, mode="faithful")
        paper = compute_sparql(space, mode="paper")
        assert faithful.complementary <= paper.complementary
        assert len(paper.partial) >= 0  # detection-only semantics differ

    def test_unknown_mode(self):
        space = build_example_space()
        with pytest.raises(AlgorithmError):
            compute_sparql(space, mode="turbo")

    def test_all_query_texts_parse(self):
        for queries in (FAITHFUL_QUERIES, PAPER_QUERIES):
            for text in queries.values():
                parse_query(text)


class TestRulesComparator:
    def test_faithful_equals_baseline_example(self):
        space = build_example_space()
        assert compute_rules(space) == compute_baseline(space)

    def test_faithful_equals_baseline_random(self):
        space = make_random_space(15, seed=9, dimension_count=2, fanout=2)
        assert compute_rules(space) == compute_baseline(space)

    def test_paper_mode_runs(self):
        space = make_random_space(10, seed=10, dimension_count=2, fanout=2)
        result = compute_rules(space, mode="paper")
        # The paper's partial rule (shared value) is weaker than real
        # partial containment; just check it produces a result set.
        assert result.total() >= 0

    def test_collect_partial_false(self):
        space = make_random_space(12, seed=11, dimension_count=2, fanout=2)
        result = compute_rules(space, collect_partial=False)
        assert result.partial == set()

    def test_unknown_mode(self):
        space = build_example_space()
        with pytest.raises(AlgorithmError):
            compute_rules(space, mode="warp")

    def test_generated_program_parses(self):
        space = build_example_space()
        program = build_rule_program(space.dimensions)
        rules = parse_rules(program)
        names = {r.name for r in rules}
        assert "fullContainment" in names
        assert "complementarity" in names
        assert any(n.startswith("anyContainment") for n in names)

    def test_paper_program_parses(self):
        space = build_example_space()
        rules = parse_rules(build_rule_program(space.dimensions, mode="paper"))
        assert {r.name for r in rules} >= {"paperFull", "paperPartial", "paperComplement"}
