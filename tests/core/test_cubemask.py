"""Unit tests for the cubeMasking algorithm (Algorithm 4)."""

import pytest

from repro.core.baseline import compute_baseline
from repro.core.cubemask import compute_cubemask
from repro.core.space import ObservationSpace
from repro.data.example import EXNS, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX

from tests.conftest import make_random_space


class TestEquivalenceWithBaseline:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_spaces(self, seed):
        space = make_random_space(80, seed=seed)
        assert compute_cubemask(space) == compute_baseline(space)

    def test_example(self):
        space = build_example_space()
        assert compute_cubemask(space) == compute_baseline(space)

    def test_prefetch_modes_identical(self):
        space = make_random_space(70, seed=9)
        with_prefetch = compute_cubemask(space, prefetch_children=True)
        without = compute_cubemask(space, prefetch_children=False)
        assert with_prefetch == without

    def test_deeper_hierarchies(self):
        space = make_random_space(50, seed=2, fanout=2, depth=4)
        assert compute_cubemask(space) == compute_baseline(space)

    def test_single_dimension(self):
        space = make_random_space(40, seed=6, dimension_count=1)
        assert compute_cubemask(space) == compute_baseline(space)

    def test_many_dimensions(self):
        space = make_random_space(30, seed=7, dimension_count=6, fanout=2, depth=2)
        assert compute_cubemask(space) == compute_baseline(space)


class TestOptions:
    def test_collect_partial_false(self):
        space = build_example_space()
        result = compute_cubemask(space, collect_partial=False)
        assert result.partial == set()
        assert result.full == compute_baseline(space).full

    def test_partial_dimensions_collection(self):
        space = build_example_space()
        result = compute_cubemask(space, collect_partial_dimensions=True)
        pair = (EXNS.o21, EXNS.o31)
        assert result.partial_dimensions(*pair) == frozenset({EXNS.refArea, EXNS.sex})
        assert result.degree(*pair) == pytest.approx(2 / 3)

    def test_empty_space(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        assert compute_cubemask(space).total() == 0

    def test_all_in_one_cube(self):
        """Degenerate case: every observation at the same levels."""
        geo = Hierarchy(EX.World)
        geo.add(EX.Greece, EX.World)
        geo.add(EX.Italy, EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.o1, EX.d, {EX.refArea: EX.Greece}, {EX.m})
        space.add(EX.o2, EX.d, {EX.refArea: EX.Italy}, {EX.m})
        space.add(EX.o3, EX.d, {EX.refArea: EX.Greece}, {EX.m})
        result = compute_cubemask(space)
        assert (EX.o1, EX.o3) in result.full
        assert result.is_complementary(EX.o1, EX.o3)
        assert not result.is_complementary(EX.o1, EX.o2)
