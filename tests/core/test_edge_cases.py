"""Degenerate-input edge cases across the algorithms.

Zero dimensions, one observation, all-identical observations, very deep
hierarchies — inputs a library consumer will eventually feed in.
"""

import pytest

from repro.core import (
    Method,
    compute_baseline,
    compute_baseline_streaming,
    compute_cubemask,
    compute_relationships,
)
from repro.core.space import ObservationSpace
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX, URIRef


class TestZeroDimensions:
    """An empty dimension bus: every observation sits at the same
    (empty) coordinate, so all pairs are complementary and pairs with a
    shared measure fully contain each other."""

    @pytest.fixture
    def space(self) -> ObservationSpace:
        space = ObservationSpace((), {})
        space.add(EX.o1, EX.d, {}, {EX.m1})
        space.add(EX.o2, EX.d, {}, {EX.m1})
        space.add(EX.o3, EX.d, {}, {EX.m2})
        return space

    def test_baseline(self, space):
        result = compute_baseline(space)
        assert result.is_complementary(EX.o1, EX.o2)
        assert result.is_complementary(EX.o1, EX.o3)
        assert (EX.o1, EX.o2) in result.full and (EX.o2, EX.o1) in result.full
        assert (EX.o1, EX.o3) not in result.full  # no shared measure
        assert result.partial == set()

    def test_methods_agree(self, space):
        truth = compute_baseline(space)
        assert compute_cubemask(space) == truth
        assert compute_baseline_streaming(space, block_size=2) == truth
        assert compute_relationships(space, Method.SPARQL) == truth


class TestDeepHierarchy:
    def test_long_chain(self):
        hierarchy = Hierarchy(URIRef("http://e/L0"))
        previous = hierarchy.root
        for level in range(1, 40):
            node = URIRef(f"http://e/L{level}")
            hierarchy.add(node, previous)
            previous = node
        space = ObservationSpace((EX.dim,), {EX.dim: hierarchy})
        for level in (0, 10, 25, 39):
            space.add(
                EX[f"o{level}"], EX.d, {EX.dim: URIRef(f"http://e/L{level}")}, {EX.m}
            )
        result = compute_baseline(space)
        # Chain containment: every shallower observation contains deeper.
        assert (EX.o0, EX.o39) in result.full
        assert (EX.o10, EX.o25) in result.full
        assert (EX.o25, EX.o10) not in result.full
        assert compute_cubemask(space) == result

    def test_single_observation_every_method(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.only, EX.d, {}, {EX.m})
        for method in (Method.BASELINE, Method.CUBE_MASKING, Method.STREAMING,
                       Method.SPARQL, Method.RULES):
            assert compute_relationships(space, method).total() == 0


class TestAllIdentical:
    def test_clique_of_identical_observations(self):
        geo = Hierarchy(EX.World)
        geo.add(EX.Athens, EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        n = 6
        for i in range(n):
            space.add(EX[f"o{i}"], EX.d, {EX.refArea: EX.Athens}, {EX.m})
        result = compute_baseline(space)
        assert len(result.complementary) == n * (n - 1) // 2
        assert len(result.full) == n * (n - 1)
        assert result.partial == set()
        assert compute_cubemask(space) == result

    def test_wide_flat_hierarchy(self):
        hierarchy = Hierarchy(EX.ALL)
        for i in range(200):
            hierarchy.add(EX[f"c{i}"], EX.ALL)
        space = ObservationSpace((EX.dim,), {EX.dim: hierarchy})
        for i in range(0, 200, 20):
            space.add(EX[f"o{i}"], EX.d, {EX.dim: EX[f"c{i}"]}, {EX.m})
        space.add(EX.top, EX.d, {}, {EX.m})  # the root row
        result = compute_baseline(space)
        # Only the root row contains anything; leaves are incomparable.
        assert all(a == EX.top for a, _ in result.full)
        assert len(result.full) == 10
        assert compute_cubemask(space) == result
