"""Unit tests for the observation-space RDF export."""

import pytest

from repro.core.export import space_to_graph
from repro.core.space import ObservationSpace
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX, QB, RDF, SKOS


@pytest.fixture
def space() -> ObservationSpace:
    geo = Hierarchy(EX.World)
    geo.add(EX.Greece, EX.World)
    geo.add(EX.Athens, EX.Greece)
    geo.add(EX.Italy, EX.World)       # never used by an observation
    geo.add(EX.Rome, EX.Italy)        # never used
    space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
    space.add(EX.o1, EX.d, {EX.refArea: EX.Athens}, {EX.pop})
    return space


class TestExport:
    def test_used_codes_only_prunes(self, space):
        graph = space_to_graph(space, used_codes_only=True)
        concepts = set(graph.subjects(RDF.type, SKOS.Concept))
        assert concepts == {EX.World, EX.Greece, EX.Athens}

    def test_full_codelists_on_request(self, space):
        graph = space_to_graph(space, used_codes_only=False)
        concepts = set(graph.subjects(RDF.type, SKOS.Concept))
        assert EX.Rome in concepts and EX.Italy in concepts

    def test_ancestor_chain_always_included(self, space):
        """Pruning must keep ancestors, or broader* paths would break."""
        graph = space_to_graph(space)
        assert (EX.Athens, SKOS.broader, EX.Greece) in graph
        assert (EX.Greece, SKOS.broader, EX.World) in graph

    def test_schema_typing(self, space):
        graph = space_to_graph(space)
        assert (EX.refArea, RDF.type, QB.DimensionProperty) in graph
        assert (EX.pop, RDF.type, QB.MeasureProperty) in graph

    def test_padded_dimension_emitted(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.o1, EX.d, {}, {EX.pop})  # unbound -> padded to root
        graph = space_to_graph(space)
        assert (EX.o1, EX.refArea, EX.World) in graph

    def test_observation_typing_and_measures(self, space):
        graph = space_to_graph(space)
        assert (EX.o1, RDF.type, QB.Observation) in graph
        assert graph.value(EX.o1, EX.pop, None) is not None
