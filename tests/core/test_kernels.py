"""Equivalence and unit tests for the vectorised cube-pair kernels.

The contract under test: the numpy kernel, the pure-Python path and
the shared-memory parallel path produce byte-identical
``RelationshipSet``s for all three relationship types, on randomized
synthetic spaces spanning dimension counts, hierarchy depths,
missing-dimension schemas, disjoint measure schemas, and the k=0 and
empty edge cases.
"""

import pickle

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.core.api import update_relationships
from repro.core.baseline import compute_baseline, measure_overlap_matrix
from repro.core.cubemask import compute_cubemask
from repro.core.kernels import (
    attach_arrays,
    build_kernel_plan,
    decode_dim_mask,
    evaluate_pair_block,
    kernel_counters,
    measure_overlap_groups,
    publish_arrays,
    reset_kernel_counters,
)
from repro.core.parallel import (
    build_cubemask_state,
    compute_cubemask_parallel,
    prepare_shared_fanout,
)
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

from tests.conftest import make_random_space, make_uniform_hierarchy


def make_varied_space(
    n: int,
    dimension_count: int = 3,
    seed: int = 0,
    missing_rate: float = 0.0,
    disjoint_measures: bool = False,
    fanout: int = 3,
    depth: int = 2,
) -> ObservationSpace:
    """Random space with optionally-missing dimensions and optionally
    disjoint measure schemas (so the measure prefilter actually
    prunes)."""
    rng = np.random.default_rng(seed)
    dimensions = tuple(
        URIRef(f"http://test.example/dim{i}") for i in range(dimension_count)
    )
    hierarchies = {
        dimension: make_uniform_hierarchy(f"d{i}", fanout=fanout, depth=depth)
        for i, dimension in enumerate(dimensions)
    }
    space = ObservationSpace(dimensions, hierarchies)
    dataset = URIRef("http://test.example/ds")
    for index in range(n):
        dims = {}
        for dimension in dimensions:
            if missing_rate and rng.random() < missing_rate:
                continue  # pads to the hierarchy root
            codes = sorted(hierarchies[dimension], key=str)
            dims[dimension] = codes[int(rng.integers(len(codes)))]
        if disjoint_measures:
            measures = {URIRef(f"http://test.example/m{int(rng.integers(3))}")}
        else:
            measures = {
                URIRef("http://test.example/m0"),
                URIRef(f"http://test.example/m{int(rng.integers(3))}"),
            }
        space.add(URIRef(f"http://test.example/obs/{index}"), dataset, dims, measures)
    return space


def make_zero_dimension_space(n: int = 6) -> ObservationSpace:
    space = ObservationSpace((), {})
    for index in range(n):
        space.add(
            URIRef(f"http://test.example/k0/{index}"),
            URIRef("http://test.example/ds"),
            {},
            {URIRef(f"http://test.example/m{index % 2}")},
        )
    return space


class TestMeasureOverlapGroups:
    def test_matches_pairwise_isdisjoint(self):
        space = make_varied_space(40, seed=3, disjoint_measures=True)
        assignment, overlap = measure_overlap_groups(space)
        for a in range(len(space)):
            for b in range(len(space)):
                expected = not space.observations[a].measures.isdisjoint(
                    space.observations[b].measures
                )
                assert bool(overlap[assignment[a], assignment[b]]) is expected

    def test_groups_are_deduplicated(self):
        space = make_random_space(60, seed=4)
        assignment, overlap = measure_overlap_groups(space)
        distinct = {record.measures for record in space.observations}
        assert overlap.shape == (len(distinct), len(distinct))
        assert assignment.shape == (60,)

    def test_baseline_matrix_is_expansion_of_groups(self):
        space = make_varied_space(30, seed=5, disjoint_measures=True)
        matrix = measure_overlap_matrix(space)
        assignment, overlap = measure_overlap_groups(space)
        assert np.array_equal(matrix, overlap[assignment[:, None], assignment[None, :]])

    def test_empty_space(self):
        assignment, overlap = measure_overlap_groups(ObservationSpace((), {}))
        assert assignment.shape == (0,)
        assert overlap.shape == (0, 0)


class TestEvaluatePairBlock:
    """The whole space as one cube pair, checked against the reference
    predicates of ObservationSpace."""

    @pytest.mark.parametrize("seed,chunk", [(7, 512), (8, 7), (9, 1)])
    def test_matches_reference_predicates(self, seed, chunk):
        space = make_varied_space(50, seed=seed, missing_rate=0.2)
        plan = build_kernel_plan(space)
        rows = np.arange(len(space))
        block = evaluate_pair_block(
            plan,
            rows,
            rows,
            same_cube=True,
            collect_partial_dimensions=True,
            chunk=chunk,
        )
        expected_full, expected_compl, expected_partial = set(), set(), {}
        expected_dims = {}
        for a in range(len(space)):
            for b in range(len(space)):
                if a == b:
                    continue
                if space.is_full_containment(a, b):
                    expected_full.add((a, b))
                if a < b and space.is_complementary(a, b):
                    expected_compl.add((a, b))
                if space.is_partial_containment(a, b):
                    expected_partial[(a, b)] = space.containment_degree(a, b)
                    expected_dims[(a, b)] = space.partial_dimensions(a, b)
        assert set(block.full) == expected_full
        assert set(block.complementary) == expected_compl
        assert {(a, b): count / plan.k for a, b, count in block.partial} == expected_partial
        assert {
            (a, b): decode_dim_mask(plan.dimensions, mask)
            for (a, b, _), mask in zip(block.partial, block.partial_dim_masks)
        } == expected_dims

    def test_not_containing_skips_full_and_complementary(self):
        space = make_random_space(30, seed=10)
        plan = build_kernel_plan(space)
        rows = np.arange(len(space))
        block = evaluate_pair_block(plan, rows, rows, containing=False, same_cube=True)
        assert block.full == [] and block.complementary == []

    def test_empty_rows(self):
        space = make_random_space(10, seed=11)
        plan = build_kernel_plan(space)
        block = evaluate_pair_block(plan, [], np.arange(10))
        assert block.full == [] and block.partial == [] and block.complementary == []

    def test_dim_mask_limit(self):
        dimensions = tuple(URIRef(f"http://test.example/wide{i}") for i in range(65))
        hierarchies = {
            dimension: make_uniform_hierarchy(f"w{i}", fanout=1, depth=1)
            for i, dimension in enumerate(dimensions)
        }
        space = ObservationSpace(dimensions, hierarchies)
        space.add(URIRef("http://test.example/w/0"), URIRef("http://test.example/ds"), {}, {URIRef("http://test.example/m")})
        plan = build_kernel_plan(space)
        with pytest.raises(AlgorithmError):
            evaluate_pair_block(plan, [0], [0], collect_partial_dimensions=True)

    def test_counters_accumulate(self):
        reset_kernel_counters()
        space = make_random_space(20, seed=12)
        plan = build_kernel_plan(space)
        rows = np.arange(len(space))
        evaluate_pair_block(plan, rows, rows, same_cube=True)
        counters = kernel_counters()
        assert counters["kernel_calls"] == 1
        assert counters["kernel_pairs"] == 400
        assert counters["kernel_ns"] > 0


class TestSharedMemoryArrays:
    def test_round_trip_and_read_only(self):
        arrays = {
            "packed": np.arange(24, dtype=np.uint8).reshape(4, 6),
            "offsets": np.array([0, 2, 4], dtype=np.int64),
            "empty": np.zeros((0, 3), dtype=np.int32),
        }
        segment, layout = publish_arrays(arrays)
        try:
            attached, views = attach_arrays(segment.name, layout)
            try:
                for name, array in arrays.items():
                    assert np.array_equal(views[name], array)
                    assert not views[name].flags.writeable
            finally:
                del views
                attached.close()
        finally:
            segment.close()
            segment.unlink()

    def test_publisher_owns_unlink(self):
        segment, layout = publish_arrays({"x": np.ones(8)})
        name = segment.name
        attached, views = attach_arrays(name, layout)
        del views
        attached.close()
        segment.close()
        segment.unlink()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


SPACES = [
    ("plain", dict(n=120, seed=21)),
    ("four-dims", dict(n=90, dimension_count=4, seed=22)),
    ("one-dim-deep", dict(n=80, dimension_count=1, seed=23, fanout=2, depth=4)),
    ("missing-dims", dict(n=100, seed=24, missing_rate=0.3)),
    ("disjoint-measures", dict(n=100, seed=25, disjoint_measures=True)),
]


class TestCubemaskKernelEquivalence:
    @pytest.mark.parametrize("label,params", SPACES, ids=[s[0] for s in SPACES])
    @pytest.mark.parametrize("prefetch", [True, False])
    @pytest.mark.parametrize("collect_dims", [True, False])
    def test_kernel_paths_match_python_and_baseline(self, label, params, prefetch, collect_dims):
        space = make_varied_space(**params)
        baseline = compute_baseline(space, collect_partial_dimensions=collect_dims)
        results = {}
        for mode in ("python", "numpy", "auto"):
            results[mode] = compute_cubemask(
                space,
                prefetch_children=prefetch,
                collect_partial_dimensions=collect_dims,
                kernel=mode,
            )
        for mode, result in results.items():
            assert result == baseline, (label, mode)
            assert result.degrees == baseline.degrees, (label, mode)
            if collect_dims:
                assert result.partial_map == baseline.partial_map, (label, mode)

    @pytest.mark.parametrize(
        "targets", [("full",), ("partial",), ("complementary",), ("full", "complementary")]
    )
    def test_targets_respected_on_kernel_path(self, targets):
        space = make_varied_space(80, seed=26)
        python = compute_cubemask(space, targets=targets, kernel="python")
        numpy_result = compute_cubemask(space, targets=targets, kernel="numpy")
        assert numpy_result == python

    def test_zero_dimension_space(self):
        space = make_zero_dimension_space()
        baseline = compute_baseline(space, collect_partial_dimensions=True)
        for mode in ("python", "numpy", "auto"):
            assert compute_cubemask(space, kernel=mode) == baseline

    def test_empty_space(self):
        space = ObservationSpace((), {})
        for mode in ("python", "numpy", "auto"):
            assert compute_cubemask(space, kernel=mode) == RelationshipSet()

    def test_threshold_zero_forces_kernel_on_auto(self):
        space = make_random_space(50, seed=27)
        stats = {}
        compute_cubemask(space, kernel="auto", kernel_threshold=0, stats=stats)
        assert stats["kernel_pairs"] > 0
        assert stats["kernel_ns"] > 0

    def test_unknown_kernel_rejected(self):
        space = make_random_space(10, seed=28)
        with pytest.raises(AlgorithmError):
            compute_cubemask(space, kernel="fortran")


class TestCubemaskStats:
    def test_diagonal_pairs_counted_as_pruned(self):
        """A single-cube space: n*n member products, n of them on the
        a == b diagonal, which is never actually compared."""
        space = ObservationSpace((), {})
        for index in range(8):
            space.add(
                URIRef(f"http://test.example/s/{index}"),
                URIRef("http://test.example/ds"),
                {},
                {URIRef("http://test.example/m")},
            )
        stats = {}
        compute_cubemask(space, stats=stats, kernel="python")
        assert stats["cubes"] == 1
        assert stats["instance_comparisons"] == 8 * 8 - 8
        assert stats["pruned_comparisons"] == 8

    def test_measure_prefilter_pruning_reported(self):
        space = make_varied_space(100, seed=30, disjoint_measures=True)
        stats = {}
        compute_cubemask(space, stats=stats, kernel="python")
        if stats["pruned_cube_pairs"]:
            assert stats["pruned_comparisons"] > 0

    def test_stats_identical_across_kernel_paths(self):
        space = make_varied_space(90, seed=31, disjoint_measures=True)
        by_mode = {}
        for mode in ("python", "numpy", "auto"):
            stats = {}
            compute_cubemask(space, stats=stats, kernel=mode)
            by_mode[mode] = stats
        for key in (
            "cubes",
            "cube_pairs",
            "instance_comparisons",
            "pruned_comparisons",
            "pruned_cube_pairs",
        ):
            assert by_mode["python"][key] == by_mode["numpy"][key] == by_mode["auto"][key]

    def test_kernel_timing_counters(self):
        space = make_random_space(80, seed=32)
        python_stats, numpy_stats = {}, {}
        compute_cubemask(space, stats=python_stats, kernel="python")
        compute_cubemask(space, stats=numpy_stats, kernel="numpy")
        assert python_stats["kernel_pairs"] == 0
        assert python_stats["kernel_ns"] == 0
        assert numpy_stats["kernel_pairs"] > 0
        assert numpy_stats["kernel_ns"] > 0


class TestParallelKernelEquivalence:
    @pytest.mark.parametrize("mode", ["auto", "numpy", "python"])
    def test_parallel_matches_sequential(self, mode):
        space = make_varied_space(130, seed=40, missing_rate=0.2)
        sequential = compute_cubemask(space)
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=0, kernel=mode
        )
        assert parallel == sequential
        assert parallel.degrees == sequential.degrees

    def test_initializer_payload_is_o_metadata(self):
        """The per-worker payload must not scale with the observation
        count — the space is shared, not pickled."""
        sizes = {}
        for n in (200, 800):
            space = make_random_space(n, seed=41)
            state = build_cubemask_state(space, ("complementary", "full", "partial"))
            segment, meta = prepare_shared_fanout(state)
            try:
                sizes[n] = len(pickle.dumps((segment.name, meta)))
            finally:
                segment.close()
                segment.unlink()
            assert sizes[n] * 20 < len(pickle.dumps(space))
        # 4x the observations must not even double the payload.
        assert sizes[800] < 2 * sizes[200]

    def test_state_arrays_cover_cube_members_exactly(self):
        space = make_random_space(70, seed=42)
        state = build_cubemask_state(space, ("full",))
        members = state["members"]
        offsets = state["cube_offsets"]
        assert offsets[-1] == len(space)
        assert sorted(members.tolist()) == list(range(len(space)))
        from repro.core.lattice import CubeLattice

        lattice = CubeLattice(space)
        for index, cube in enumerate(sorted(lattice.nodes)):
            rows = members[offsets[index] : offsets[index + 1]].tolist()
            assert rows == lattice.nodes[cube]


class TestUpdateRelationshipsKernel:
    @pytest.mark.parametrize("mode", ["python", "numpy", "auto"])
    def test_incremental_insert_matches_batch(self, mode):
        space = make_varied_space(60, seed=50, missing_rate=0.2)
        result = compute_cubemask(space, collect_partial_dimensions=True)
        extra_space = make_varied_space(75, seed=50, missing_rate=0.2)
        new = [
            (
                URIRef(str(record.uri) + "-new"),
                record.dataset,
                dict(zip(extra_space.dimensions, record.codes)),
                record.measures,
            )
            for record in extra_space.observations[60:]
        ]
        update_relationships(space, result, new, kernel=mode)
        batch = compute_cubemask(space, collect_partial_dimensions=True)
        assert result == batch
        assert result.degrees == batch.degrees
        assert result.partial_map == batch.partial_map

    def test_kernel_and_python_deltas_identical(self):
        deltas = {}
        for mode in ("python", "numpy"):
            space = make_random_space(50, seed=51)
            result = compute_cubemask(space, collect_partial_dimensions=True)
            new = [
                (
                    URIRef(f"http://test.example/new/{i}"),
                    URIRef("http://test.example/ds"),
                    dict(zip(space.dimensions, space.observations[i].codes)),
                    space.observations[i].measures,
                )
                for i in range(10)
            ]
            _, delta = update_relationships(
                space, result, new, return_delta=True, kernel=mode
            )
            deltas[mode] = delta
        assert deltas["python"].added_full == deltas["numpy"].added_full
        assert deltas["python"].added_partial == deltas["numpy"].added_partial
        assert deltas["python"].added_complementary == deltas["numpy"].added_complementary
        assert deltas["python"].partial_map == deltas["numpy"].partial_map


class TestDimMaskCapacity:
    """The 64-dimension partial-dimension-mask cap fails at plan-build
    time with a typed error naming the offending width — never
    mid-block."""

    def test_ensure_capacity_boundary(self):
        from repro.core.kernels import DIM_MASK_LIMIT, ensure_dim_mask_capacity

        ensure_dim_mask_capacity(DIM_MASK_LIMIT)  # at the limit: fine
        with pytest.raises(AlgorithmError) as exc:
            ensure_dim_mask_capacity(DIM_MASK_LIMIT + 1)
        assert str(DIM_MASK_LIMIT + 1) in str(exc.value)
        assert str(DIM_MASK_LIMIT) in str(exc.value)

    def test_plan_build_rejects_wide_bus(self):
        space = make_varied_space(4, dimension_count=65, seed=52)
        with pytest.raises(AlgorithmError, match="65"):
            build_kernel_plan(space, collect_partial_dimensions=True)
        # Without dimension collection the same bus plans fine.
        plan = build_kernel_plan(space)
        assert len(plan.block_slices) == 65

    def test_evaluate_pair_block_rejects_before_any_tile(self):
        space = make_varied_space(4, dimension_count=65, seed=52)
        plan = build_kernel_plan(space)
        rows = np.arange(len(space), dtype=np.int64)
        with pytest.raises(AlgorithmError, match="65"):
            evaluate_pair_block(
                plan, rows, rows, collect_partial_dimensions=True
            )

    def test_wide_bus_falls_back_to_python_extraction(self):
        space = make_varied_space(12, dimension_count=65, seed=53, missing_rate=0.3)
        python = compute_cubemask(
            space, kernel="python", collect_partial_dimensions=True
        )
        numpy_path = compute_cubemask(
            space, kernel="numpy", collect_partial_dimensions=True
        )
        assert numpy_path == python
        assert numpy_path.partial_map == python.partial_map

    def test_parallel_wide_bus_degrades_to_sequential(self):
        space = make_varied_space(12, dimension_count=65, seed=53, missing_rate=0.3)
        parallel = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=0,
            collect_partial_dimensions=True,
        )
        sequential = compute_cubemask(
            space, kernel="python", collect_partial_dimensions=True
        )
        assert parallel == sequential
        assert parallel.partial_map == sequential.partial_map
