"""Unit tests for the cube lattice (Section 3.3, Figure 4)."""

import pytest

from repro.core.lattice import CubeLattice, dominates, partially_dominates
from repro.core.space import ObservationSpace
from repro.data.example import EXNS, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX


@pytest.fixture
def example() -> ObservationSpace:
    return build_example_space()


class TestSignatures:
    def test_example_signatures(self, example):
        lattice = CubeLattice(example)
        o11 = example.record_for(EXNS.o11).index
        # o11: Athens (level 3), 2001 (level 1), Total (level 0) -> (3,1,0)
        assert lattice.signatures[o11] == (3, 1, 0)
        o32 = example.record_for(EXNS.o32).index
        # o32: Athens (3), Jan2011 (2), padded sex root (0).
        assert lattice.signatures[o32] == (3, 2, 0)

    def test_observations_grouped_by_cube(self, example):
        lattice = CubeLattice(example)
        assert sum(len(members) for members in lattice.nodes.values()) == len(example)
        o11 = example.record_for(EXNS.o11).index
        o31 = example.record_for(EXNS.o31).index
        assert lattice.signatures[o11] == lattice.signatures[o31]
        assert o31 in lattice.members(lattice.signatures[o11])

    def test_cube_count_bounded(self, example):
        lattice = CubeLattice(example)
        assert 1 <= len(lattice) <= len(example)

    def test_cube_ratio(self, example):
        lattice = CubeLattice(example)
        assert lattice.cube_ratio == len(lattice) / len(example)

    def test_empty_space(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        lattice = CubeLattice(space)
        assert len(lattice) == 0
        assert lattice.cube_ratio == 0.0


class TestDominance:
    def test_dominates_pointwise(self):
        assert dominates((1, 0), (2, 1))
        assert dominates((1, 1), (1, 1))
        assert not dominates((2, 0), (1, 1))

    def test_partial_dominance(self):
        assert partially_dominates((2, 0), (1, 1))  # second dim admits
        assert not partially_dominates((2, 2), (1, 1))

    def test_containment_pairs_include_self(self, example):
        lattice = CubeLattice(example)
        pairs = set(lattice.containment_pairs())
        for cube in lattice:
            assert (cube, cube) in pairs

    def test_containment_pairs_sound(self, example):
        lattice = CubeLattice(example)
        for a, b in lattice.containment_pairs():
            assert dominates(a, b)

    def test_children_index_matches_pairs(self, example):
        lattice = CubeLattice(example)
        from_pairs = {}
        for a, b in lattice.containment_pairs():
            from_pairs.setdefault(a, set()).add(b)
        index = lattice.children_index()
        assert {k: set(v) for k, v in index.items()} == from_pairs

    def test_partial_pairs_superset_of_containment_pairs(self, example):
        lattice = CubeLattice(example)
        containment = set(lattice.containment_pairs())
        partial = set(lattice.partial_pairs())
        assert containment <= partial

    def test_dominance_necessary_for_instance_containment(self, example):
        """Signature dominance must never prune a real containment pair
        (this is what makes cubeMasking lossless)."""
        lattice = CubeLattice(example)
        for a in range(len(example)):
            for b in range(len(example)):
                if a != b and example.dim_full(a, b):
                    assert dominates(lattice.signatures[a], lattice.signatures[b])
