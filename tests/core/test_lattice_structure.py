"""Tests for the full-lattice utilities (Figure 4 structure)."""

import pytest

from repro.core.lattice import CubeLattice
from repro.data.example import build_example_space


@pytest.fixture(scope="module")
def lattice() -> CubeLattice:
    return CubeLattice(build_example_space())


class TestFullLattice:
    def test_possible_signature_count(self, lattice):
        # Example hierarchies: geo depth 4, time depth 2, sex depth 1
        # -> (4+1) * (2+1) * (1+1) = 30 possible level combinations.
        possible = list(lattice.possible_signatures())
        assert len(possible) == 30
        assert len(set(possible)) == 30

    def test_populated_nodes_are_possible(self, lattice):
        possible = set(lattice.possible_signatures())
        assert set(lattice.nodes) <= possible

    def test_coverage_in_unit_interval(self, lattice):
        assert 0.0 < lattice.coverage() <= 1.0
        assert lattice.coverage() == len(lattice.nodes) / 30

    def test_figure4_example_nodes(self, lattice):
        """The example's observations land on Figure 4's node labels."""
        labels = {"".join(str(l) for l in sig) for sig in lattice.nodes}
        # o11/o31: Athens (3), 2001 (1), Total (0) -> "310"
        assert "310" in labels
        # o32/o34: city (3), month (2), Total (0) -> "320"
        assert "320" in labels
        # o21/o22: country (2), year (1), Total (0) -> "210"
        assert "210" in labels


class TestRenderAscii:
    def test_render_contains_counts(self, lattice):
        text = lattice.render_ascii()
        assert "populated nodes" in text
        assert "310: 2 observation(s)" in text

    def test_parent_links_rendered(self, lattice):
        # "310" has direct parent "210" (one level up on refArea).
        text = lattice.render_ascii()
        for line in text.splitlines():
            if line.strip().startswith("310:"):
                assert "210" in line
                break
        else:
            pytest.fail("node 310 not rendered")

    def test_max_nodes_truncation(self, lattice):
        text = lattice.render_ascii(max_nodes=2)
        assert "more" in text
