"""Unit tests for the occurrence matrix and computeOCM (Algorithm 1)."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.core.matrix import OccurrenceMatrix
from repro.core.space import ObservationSpace
from repro.data.example import EXNS, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX


@pytest.fixture
def example() -> ObservationSpace:
    return build_example_space()


def index_of(space, local):
    return space.record_for(EXNS[local]).index


class TestConstruction:
    def test_row_encodes_ancestor_closure(self, example):
        matrix = OccurrenceMatrix(example)
        dense, columns = matrix.dense()
        o11 = index_of(example, "o11")
        on_columns = {columns[c] for c in np.flatnonzero(dense[o11])}
        # refArea=Athens -> Athens, Greece, Europe, World set.
        assert (EXNS.refArea, EXNS.Athens) in on_columns
        assert (EXNS.refArea, EXNS.Greece) in on_columns
        assert (EXNS.refArea, EXNS.Europe) in on_columns
        assert (EXNS.refArea, EXNS.World) in on_columns
        assert (EXNS.refArea, EXNS.Italy) not in on_columns

    def test_missing_dimension_has_only_root_bit(self, example):
        matrix = OccurrenceMatrix(example)
        dense, columns = matrix.dense()
        o21 = index_of(example, "o21")  # no sex dimension
        sex_columns = [i for i, (d, _) in enumerate(columns) if d == EXNS.sex]
        on = [columns[i][1] for i in sex_columns if dense[o21, i]]
        assert on == [EXNS.Total]

    def test_dense_shape(self, example):
        matrix = OccurrenceMatrix(example)
        dense, columns = matrix.dense()
        total_codes = sum(len(example.hierarchies[d]) for d in example.dimensions)
        assert dense.shape == (10, total_codes)
        assert len(columns) == total_codes

    def test_backends_produce_identical_dense(self, example):
        dense_np, cols_np = OccurrenceMatrix(example, backend="numpy").dense()
        dense_py, cols_py = OccurrenceMatrix(example, backend="python").dense()
        assert cols_np == cols_py
        assert np.array_equal(dense_np, dense_py)

    def test_unknown_backend(self, example):
        with pytest.raises(AlgorithmError):
            OccurrenceMatrix(example, backend="rust")


class TestContainmentMatrix:
    def test_cm_matches_reference_predicate(self, example):
        matrix = OccurrenceMatrix(example)
        for position, dimension in enumerate(example.dimensions):
            cm = matrix.containment_matrix(dimension)
            for a in range(len(example)):
                for b in range(len(example)):
                    assert cm[a, b] == example.dimension_contains(a, b, position)

    def test_cm_diagonal_true(self, example):
        matrix = OccurrenceMatrix(example)
        cm = matrix.containment_matrix(example.dimensions[0])
        assert np.all(np.diag(cm))

    def test_paper_cm_refarea_entries(self, example):
        """Spot-check Table 3(a): CM_refArea of the running example."""
        matrix = OccurrenceMatrix(example)
        cm = matrix.containment_matrix(EXNS.refArea)
        o11, o21, o22, o31, o33 = (
            index_of(example, n) for n in ("o11", "o21", "o22", "o31", "o33")
        )
        assert cm[o21, o11]  # Greece contains Athens
        assert cm[o11, o31]  # Athens contains Athens
        assert not cm[o11, o21]  # Athens does not contain Greece
        assert cm[o22, o33]  # Italy contains Rome
        assert not cm[o21, o33]  # Greece does not contain Rome

    def test_chunking_invariant(self, example):
        matrix = OccurrenceMatrix(example)
        full = matrix.containment_matrix(EXNS.refArea, chunk=512)
        tiny_chunks = matrix.containment_matrix(EXNS.refArea, chunk=3)
        assert np.array_equal(full, tiny_chunks)


class TestOCM:
    def test_counts_match_degrees(self, example):
        ocm = OccurrenceMatrix(example).compute_ocm()
        for a in range(len(example)):
            for b in range(len(example)):
                expected = example.containment_degree(a, b)
                assert ocm.ocm()[a, b] == pytest.approx(expected)

    def test_paper_ocm_values(self, example):
        """OCM of o21 vs o31: containment on refArea and sex only -> 2/3."""
        ocm = OccurrenceMatrix(example).compute_ocm()
        o21, o31 = index_of(example, "o21"), index_of(example, "o31")
        assert ocm.ocm()[o21, o31] == pytest.approx(2 / 3)
        o11 = index_of(example, "o11")
        assert ocm.ocm()[o11, o31] == pytest.approx(1.0)
        assert ocm.ocm()[o31, o11] == pytest.approx(1.0)

    def test_keep_cms_flag(self, example):
        with_cms = OccurrenceMatrix(example).compute_ocm(keep_cms=True)
        assert with_cms.has_cms
        assert with_cms.cm(EXNS.refArea).shape == (10, 10)
        without = OccurrenceMatrix(example).compute_ocm(keep_cms=False)
        assert not without.has_cms
        with pytest.raises(AlgorithmError):
            without.cm(EXNS.refArea)

    def test_python_backend_ocm_identical(self, example):
        counts_np = OccurrenceMatrix(example, backend="numpy").compute_ocm().counts
        counts_py = OccurrenceMatrix(example, backend="python").compute_ocm().counts
        assert np.array_equal(counts_np, counts_py)

    def test_pair_probe_matches_matrix(self, example):
        matrix = OccurrenceMatrix(example)
        counts = matrix.compute_ocm().counts
        for a in (0, 3, 7):
            for b in (1, 5, 9):
                assert matrix.pair_containment_count(a, b) == counts[a, b]

    def test_empty_space(self):
        geo = Hierarchy(EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        ocm = OccurrenceMatrix(space).compute_ocm()
        assert ocm.counts.shape == (0, 0)
