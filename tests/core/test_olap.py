"""Unit tests for OLAP navigation over materialised relationships."""

import pytest

from repro.errors import AlgorithmError
from repro.core import Method, compute_relationships
from repro.core.olap import CubeNavigator
from repro.data.example import EXNS, build_example_cubespace, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.core.space import ObservationSpace
from repro.core.results import RelationshipSet
from repro.rdf import EX


@pytest.fixture(scope="module")
def navigator() -> CubeNavigator:
    cube = build_example_cubespace()
    relationships = compute_relationships(cube, Method.BASELINE, collect_partial_dimensions=True)
    return CubeNavigator.from_cubespace(cube, relationships)


class TestNavigation:
    def test_drill_down(self, navigator):
        assert set(navigator.drill_down(EXNS.o21)) == {EXNS.o32, EXNS.o34}
        assert navigator.drill_down(EXNS.o22) == [EXNS.o33]

    def test_roll_up(self, navigator):
        assert navigator.roll_up(EXNS.o32) == [EXNS.o21]
        assert navigator.roll_up(EXNS.o21) == []

    def test_complements(self, navigator):
        assert navigator.complements(EXNS.o11) == [EXNS.o31]
        assert navigator.complements(EXNS.o31) == [EXNS.o11]
        assert navigator.complements(EXNS.o21) == []

    def test_comparable_after_rollup(self, navigator):
        dims = navigator.comparable_after_rollup(EXNS.o21, EXNS.o31)
        assert dims == frozenset({EXNS.refPeriod})

    def test_comparable_after_rollup_requires_partial(self, navigator):
        # o11 (population) and o32 (unemployment) share no measure, so
        # no partial containment exists between them.
        with pytest.raises(AlgorithmError):
            navigator.comparable_after_rollup(EXNS.o11, EXNS.o32)


class TestDirectDrillDown:
    def test_skips_transitive_members(self):
        geo = Hierarchy(EX.World)
        geo.add(EX.Greece, EX.World)
        geo.add(EX.Athens, EX.Greece)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.top, EX.d, {}, {EX.m})
        space.add(EX.mid, EX.d, {EX.refArea: EX.Greece}, {EX.m})
        space.add(EX.leaf, EX.d, {EX.refArea: EX.Athens}, {EX.m})
        from repro.core import compute_baseline

        relationships = compute_baseline(space)
        navigator = CubeNavigator(space, relationships)
        assert navigator.drill_down(EX.top) == [EX.leaf, EX.mid]
        assert navigator.direct_drill_down(EX.top) == [EX.mid]
        assert navigator.direct_drill_down(EX.mid) == [EX.leaf]


class TestAggregation:
    def test_sum_over_direct_children(self):
        geo = Hierarchy(EX.World)
        geo.add(EX.A, EX.World)
        geo.add(EX.B, EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.top, EX.d, {}, {EX.pop})
        space.add(EX.oa, EX.d, {EX.refArea: EX.A}, {EX.pop})
        space.add(EX.ob, EX.d, {EX.refArea: EX.B}, {EX.pop})
        from repro.core import compute_baseline

        relationships = compute_baseline(space)
        values = {(EX.oa, EX.pop): 10.0, (EX.ob, EX.pop): 32.0}
        navigator = CubeNavigator(space, relationships, values)
        assert navigator.aggregate(EX.top, EX.pop, "sum") == 42.0
        assert navigator.aggregate(EX.top, EX.pop, "avg") == 21.0
        assert navigator.aggregate(EX.top, EX.pop, "min") == 10.0
        assert navigator.aggregate(EX.top, EX.pop, "max") == 32.0
        assert navigator.aggregate(EX.top, EX.pop, "count") == 2.0

    def test_from_cubespace_extracts_values(self, navigator):
        # o21 fully contains o32 and o34 (unemployment values 30, 15).
        assert navigator.aggregate(EXNS.o21, EXNS.unemployment, "avg") == pytest.approx(22.5)

    def test_unknown_aggregation(self, navigator):
        with pytest.raises(AlgorithmError):
            navigator.aggregate(EXNS.o21, EXNS.unemployment, "median")

    def test_no_values_raises(self, navigator):
        with pytest.raises(AlgorithmError):
            navigator.aggregate(EXNS.o21, EXNS.population)

    def test_empty_relationships(self):
        space = build_example_space()
        navigator = CubeNavigator(space, RelationshipSet())
        assert navigator.drill_down(EXNS.o21) == []
        assert navigator.roll_up(EXNS.o32) == []
