"""End-to-end reproduction of the paper's running example.

Checks Figure 3's derived relationships and the structure of Tables
2-3 on the data of Figures 1-2, across all five computation methods.
"""

import numpy as np
import pytest

from repro.core import Method, compute_relationships
from repro.core.matrix import OccurrenceMatrix
from repro.data.example import EXNS, EXPECTED_EXAMPLE, build_example_space


@pytest.fixture(scope="module")
def example():
    return build_example_space()


@pytest.fixture(scope="module")
def baseline_result(example):
    return compute_relationships(example, Method.BASELINE)


def locals_of(pairs):
    return {(a.local_name(), b.local_name()) for a, b in pairs}


class TestFigure3:
    def test_full_containment_pairs(self, baseline_result):
        assert EXPECTED_EXAMPLE["full"] <= locals_of(baseline_result.full)

    def test_complementary_pairs(self, baseline_result):
        assert EXPECTED_EXAMPLE["complementary"] <= locals_of(baseline_result.complementary)

    def test_o21_does_not_fully_contain_o31(self, baseline_result):
        # 2011 does not contain 2001: only partial containment.
        assert ("o21", "o31") not in locals_of(baseline_result.full)
        assert ("o21", "o31") in locals_of(baseline_result.partial)

    def test_o12_contained_by_o13(self, baseline_result):
        # Total sex contains Male at the same area/period.
        assert ("o13", "o12") in locals_of(baseline_result.full)

    @pytest.mark.parametrize(
        "method",
        [Method.CUBE_MASKING, Method.SPARQL, Method.RULES, Method.CLUSTERING],
    )
    def test_methods_find_figure3(self, example, baseline_result, method):
        options = {"seed": 0, "sample_rate": 1.0, "n_clusters": 2} if method == Method.CLUSTERING else {}
        result = compute_relationships(example, method, **options)
        if method == Method.CLUSTERING:
            # Lossy method: subset of the truth.
            assert result.full <= baseline_result.full
        else:
            assert result == baseline_result


class TestTable2Structure:
    """The occurrence matrix of the example (Table 2's shape)."""

    def test_row_count(self, example):
        dense, _ = OccurrenceMatrix(example).dense()
        assert dense.shape[0] == 10

    def test_refarea_block_for_o11(self, example):
        matrix = OccurrenceMatrix(example)
        dense, columns = matrix.dense()
        o11 = example.record_for(EXNS.o11).index
        bits = {
            columns[i][1].local_name()
            for i in np.flatnonzero(dense[o11])
            if columns[i][0] == EXNS.refArea
        }
        # Table 2, row obs11: WLD, EUR, GR, Ath set; others clear.
        assert bits == {"World", "Europe", "Greece", "Athens"}

    def test_sex_padding_for_d3_rows(self, example):
        matrix = OccurrenceMatrix(example)
        dense, columns = matrix.dense()
        o31 = example.record_for(EXNS.o31).index
        bits = {
            columns[i][1].local_name()
            for i in np.flatnonzero(dense[o31])
            if columns[i][0] == EXNS.sex
        }
        # D3 has no sex dimension: only the root (Total/ALL) column set.
        assert bits == {"Total"}


class TestTable3Structure:
    """CM_refArea and OCM of the example (Tables 3a/3b semantics)."""

    def test_cm_rows_for_obs21(self, example):
        matrix = OccurrenceMatrix(example)
        cm = matrix.containment_matrix(EXNS.refArea)
        idx = {n: example.record_for(EXNS[n]).index for n in
               ("o11", "o21", "o22", "o31", "o32", "o33", "o34")}
        # Greece contains Athens/Ioannina rows, not Rome.
        assert cm[idx["o21"], idx["o11"]]
        assert cm[idx["o21"], idx["o31"]]
        assert cm[idx["o21"], idx["o32"]]
        assert cm[idx["o21"], idx["o34"]]
        assert not cm[idx["o21"], idx["o33"]]
        assert not cm[idx["o21"], idx["o22"]]

    def test_ocm_normalisation(self, example):
        ocm = OccurrenceMatrix(example).compute_ocm()
        values = ocm.ocm()
        assert values.min() >= 0.0 and values.max() <= 1.0
        # Diagonal: every observation fully contains itself.
        assert np.allclose(np.diag(values), 1.0)

    def test_ocm_thirds(self, example):
        """With 3 dimensions every OCM value is a multiple of 1/3."""
        ocm = OccurrenceMatrix(example).compute_ocm()
        scaled = ocm.ocm() * 3
        assert np.allclose(scaled, np.round(scaled))
