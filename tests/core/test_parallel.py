"""Unit tests for the parallel cubeMasking variant.

This host may have a single core, so the tests verify *correctness*
(bit-identical output) rather than speed — below and above the
``min_parallel_observations`` threshold, with a single worker, and
under heavily skewed cube sizes.
"""

import pytest

from repro.core import compute_cubemask
from repro.core.parallel import compute_cubemask_parallel, enumerate_unit_ranges
from repro.rdf.terms import URIRef

from tests.conftest import make_random_space


def make_skewed_space(n_dense: int = 150, n_sparse: int = 25, seed: int = 7):
    """A space where one cube holds the overwhelming majority of
    observations — the worst case for naive range balancing."""
    space = make_random_space(n_sparse, seed=seed)
    base = space.observations[0]
    dims = dict(zip(space.dimensions, base.codes))
    for index in range(n_dense):
        space.add(
            URIRef(f"http://test.example/dense/{index}"),
            base.dataset,
            dims,
            base.measures,
        )
    return space


class TestParallelCubemask:
    def test_small_input_falls_back(self):
        space = make_random_space(60, seed=60)
        result = compute_cubemask_parallel(space, min_parallel_observations=512)
        assert result == compute_cubemask(space)

    def test_parallel_matches_sequential(self):
        space = make_random_space(150, seed=61)
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10
        )
        assert parallel == compute_cubemask(space)

    def test_threshold_boundary_engages_pool(self):
        """Exactly at the threshold the parallel path runs (not the fallback)."""
        space = make_random_space(120, seed=64)
        seen = []
        parallel = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=120,
            on_unit_complete=lambda unit_id, delta: seen.append(unit_id),
        )
        assert parallel == compute_cubemask(space)
        assert seen  # callbacks prove the unit-wise executor ran

    def test_below_threshold_skips_pool(self):
        space = make_random_space(119, seed=64)
        seen = []
        result = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=120,
            on_unit_complete=lambda unit_id, delta: seen.append(unit_id),
        )
        assert result == compute_cubemask(space)
        assert seen == []  # sequential fallback: no units, no pool

    def test_single_worker_matches_sequential(self):
        space = make_random_space(130, seed=65)
        parallel = compute_cubemask_parallel(
            space, workers=1, min_parallel_observations=10
        )
        assert parallel == compute_cubemask(space)

    def test_skewed_cube_sizes_match_sequential(self):
        space = make_skewed_space()
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10
        )
        sequential = compute_cubemask(space)
        assert parallel == sequential
        assert len(parallel.complementary) > 1000  # the dense cube really is dense

    def test_targets_respected(self):
        space = make_random_space(120, seed=62)
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10, targets=("full",)
        )
        sequential = compute_cubemask(space, targets=("full",))
        assert parallel == sequential
        assert parallel.partial == set() and parallel.complementary == set()

    def test_degrees_preserved(self):
        space = make_random_space(120, seed=63)
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10
        )
        sequential = compute_cubemask(space)
        for pair in sequential.partial:
            assert parallel.degree(*pair) == pytest.approx(sequential.degree(*pair))


class TestUnitHooks:
    def test_completed_units_are_skipped(self):
        space = make_random_space(120, seed=66)
        first_pass: dict = {}
        full = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=0,
            unit_size=32,
            on_unit_complete=lambda unit_id, delta: first_pass.setdefault(unit_id, delta),
        )
        skip = set(list(first_pass)[: len(first_pass) // 2])
        second_pass: list = []
        partial = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=0,
            unit_size=32,
            completed_units=skip,
            on_unit_complete=lambda unit_id, delta: second_pass.append(unit_id),
        )
        assert set(second_pass) == set(first_pass) - skip
        # merging the skipped units' deltas back reconstructs the result
        for unit_id in skip:
            partial.merge(first_pass[unit_id])
        assert partial == full

    def test_enumerate_unit_ranges_covers_everything(self):
        ranges = enumerate_unit_ranges(100, 32)
        assert ranges[0] == (0, 0, 32)
        assert ranges[-1] == (3, 96, 100)
        assert sum(stop - start for _, start, stop in ranges) == 100
        assert enumerate_unit_ranges(0, 32) == []


class TestWorkerKernelComposition:
    """Workers must run the *numpy* kernel, not the tuple fallback."""

    def test_stats_match_sequential_and_count_worker_kernel_pairs(self):
        space = make_random_space(150, seed=67)
        seq_stats: dict = {}
        sequential = compute_cubemask(
            space, kernel="numpy", stats=seq_stats, collect_partial_dimensions=True
        )
        par_stats: dict = {}
        parallel = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=10,
            kernel="numpy",
            stats=par_stats,
            collect_partial_dimensions=True,
        )
        assert parallel == sequential
        assert parallel.degrees == sequential.degrees
        assert parallel.partial_map == sequential.partial_map
        # Worker fan-out demonstrably ran the vectorised kernel, and the
        # merged counters are path-independent with the sequential run.
        assert par_stats["kernel_pairs"] > 0
        for key in ("cubes", "cube_pairs", "instance_comparisons",
                    "pruned_comparisons", "pruned_cube_pairs", "kernel_pairs"):
            assert par_stats[key] == seq_stats[key], key

    def test_worker_counter_deltas_merge_into_parent(self):
        from repro.core import kernels as _kernels

        space = make_random_space(140, seed=68)
        before = _kernels.kernel_counters()
        stats: dict = {}
        compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10, kernel="numpy", stats=stats
        )
        after = _kernels.kernel_counters()
        # The pairs scored inside worker processes land in the parent's
        # process-wide repro_kernel_* counters via merge_counters.
        assert after["kernel_pairs"] - before["kernel_pairs"] >= stats["kernel_pairs"] > 0

    def test_python_kernel_mode_reports_no_kernel_pairs(self):
        space = make_random_space(130, seed=69)
        stats: dict = {}
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10, kernel="python", stats=stats
        )
        assert parallel == compute_cubemask(space, kernel="python")
        assert stats["kernel_pairs"] == 0

    def test_single_pair_units_roundtrip_partial_dimensions(self):
        """unit_size=1 exercises single-cube-pair worker payloads."""
        space = make_random_space(130, seed=70)
        parallel = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=0,
            unit_size=1,
            kernel="numpy",
            collect_partial_dimensions=True,
        )
        sequential = compute_cubemask(
            space, kernel="python", collect_partial_dimensions=True
        )
        assert parallel == sequential
        assert parallel.partial_map == sequential.partial_map
        assert parallel.degrees == sequential.degrees
