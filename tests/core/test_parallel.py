"""Unit tests for the parallel cubeMasking variant.

This host may have a single core, so the tests verify *correctness*
(bit-identical output) rather than speed.
"""

import pytest

from repro.core import compute_cubemask
from repro.core.parallel import compute_cubemask_parallel

from tests.conftest import make_random_space


class TestParallelCubemask:
    def test_small_input_falls_back(self):
        space = make_random_space(60, seed=60)
        result = compute_cubemask_parallel(space, min_parallel_observations=512)
        assert result == compute_cubemask(space)

    def test_parallel_matches_sequential(self):
        space = make_random_space(150, seed=61)
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10
        )
        assert parallel == compute_cubemask(space)

    def test_targets_respected(self):
        space = make_random_space(120, seed=62)
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10, targets=("full",)
        )
        sequential = compute_cubemask(space, targets=("full",))
        assert parallel == sequential
        assert parallel.partial == set() and parallel.complementary == set()

    def test_degrees_preserved(self):
        space = make_random_space(120, seed=63)
        parallel = compute_cubemask_parallel(
            space, workers=2, min_parallel_observations=10
        )
        sequential = compute_cubemask(space)
        for pair in sequential.partial:
            assert parallel.degree(*pair) == pytest.approx(sequential.degree(*pair))
