"""Unit tests for source relatedness and recommendations."""

import pytest

from repro.core import Method, compute_relationships
from repro.core.recommend import dataset_relatedness, recommend_observations
from repro.data.example import EXNS, build_example_space


@pytest.fixture(scope="module")
def example():
    return build_example_space()


@pytest.fixture(scope="module")
def relationships(example):
    return compute_relationships(example, Method.BASELINE)


class TestDatasetRelatedness:
    def test_cross_dataset_scores(self, example, relationships):
        scores = dataset_relatedness(example, relationships)
        d1, d2, d3 = EXNS["dataset/D1"], EXNS["dataset/D2"], EXNS["dataset/D3"]
        # D2 contains D3's city observations; D1 complements D3.
        assert scores.get((d2, d3), 0) > 0
        assert scores.get((d1, d3), 0) > 0

    def test_scores_in_unit_interval(self, example, relationships):
        for score in dataset_relatedness(example, relationships).values():
            assert 0.0 < score <= 1.0

    def test_keys_canonical(self, example, relationships):
        for a, b in dataset_relatedness(example, relationships):
            assert str(a) <= str(b)

    def test_empty_relationships(self, example):
        from repro.core.results import RelationshipSet

        assert dataset_relatedness(example, RelationshipSet()) == {}


class TestRecommendations:
    def test_complementary_ranks_first(self, relationships):
        ranked = recommend_observations(EXNS.o11, relationships)
        assert ranked[0].observation == EXNS.o31
        assert ranked[0].kind == "complementary"
        assert ranked[0].score == 1.0

    def test_containment_recommended(self, relationships):
        ranked = recommend_observations(EXNS.o21, relationships)
        kinds = {r.observation: r.kind for r in ranked}
        assert kinds[EXNS.o32] == "contains"
        assert kinds[EXNS.o34] == "contains"

    def test_contained_by_direction(self, relationships):
        ranked = recommend_observations(EXNS.o32, relationships)
        kinds = {r.observation: r.kind for r in ranked}
        assert kinds[EXNS.o21] == "contained-by"

    def test_partial_scores_below_containment(self, relationships):
        ranked = recommend_observations(EXNS.o21, relationships)
        scores = {r.observation: r.score for r in ranked}
        assert scores[EXNS.o32] > scores[EXNS.o31]  # full beats partial

    def test_limit(self, relationships):
        assert len(recommend_observations(EXNS.o21, relationships, limit=2)) == 2

    def test_deterministic_order(self, relationships):
        first = recommend_observations(EXNS.o21, relationships)
        second = recommend_observations(EXNS.o21, relationships)
        assert first == second

    def test_unknown_observation_empty(self, relationships):
        assert recommend_observations(EXNS.nothing, relationships) == []
