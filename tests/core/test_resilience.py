"""Fault-injection suite for the materialisation runner.

Proves the resilience layer's central contract: a run killed mid-flight
(simulated SIGINT, injected unit failure, or a hard worker crash) and
resumed from its checkpoint yields a RelationshipSet identical — sets,
degrees and dimension maps — to an uninterrupted run, for every
checkpointable method; and a worker crash with retries enabled
completes without user intervention.
"""

import json

import pytest

from repro.core import (
    Method,
    compute_baseline,
    compute_baseline_streaming,
    compute_clustering,
    compute_cubemask,
    compute_relationships,
    run_materialization,
)
from repro.resilience.faults import Fault, FaultPlan, InjectedFault, truncate_file
from repro.core.parallel import compute_cubemask_parallel
from repro.core.runner import Checkpoint, MaterializationRunner, space_fingerprint
from repro.errors import (
    AlgorithmError,
    CheckpointError,
    UnitTimeoutError,
    WorkerCrashError,
)

from tests.conftest import make_random_space


def assert_identical(a, b):
    """Full-strength equality: sets, OCM degrees and dimension maps."""
    assert a == b
    assert a.degrees == b.degrees
    assert a.partial_map == b.partial_map


@pytest.fixture(scope="module")
def space():
    return make_random_space(120, seed=42)


def clean_result(space, method, **options):
    reference = {
        Method.BASELINE: compute_baseline,
        Method.STREAMING: compute_baseline_streaming,
        Method.CLUSTERING: compute_clustering,
        Method.CUBE_MASKING: compute_cubemask,
    }
    return reference[method](space, **options)


CHECKPOINTABLE = [
    (Method.BASELINE, {}),
    (Method.STREAMING, {}),
    (Method.CLUSTERING, {"seed": 3}),
    (Method.CUBE_MASKING, {}),
]


class TestCleanRuns:
    """Without faults the runner is a drop-in for the direct methods."""

    @pytest.mark.parametrize("method,options", CHECKPOINTABLE)
    def test_runner_matches_direct(self, space, tmp_path, method, options):
        ckpt = tmp_path / "run.jsonl"
        result = compute_relationships(
            space, method, checkpoint=str(ckpt), unit_size=16, **options
        )
        assert_identical(result, clean_result(space, method, **options))
        lines = ckpt.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "header"
        assert len(lines) > 2  # genuinely unit-wise, not one blob

    def test_runner_without_checkpoint(self, space):
        result = run_materialization(space, Method.BASELINE, max_retries=1)
        assert_identical(result, compute_baseline(space))

    def test_parallel_runner_matches_direct(self, space, tmp_path):
        result = compute_relationships(
            space,
            Method.CUBE_MASKING,
            checkpoint=str(tmp_path / "par.jsonl"),
            unit_size=32,
            workers=2,
        )
        assert_identical(result, compute_cubemask(space))

    def test_single_unit_method(self, space, tmp_path):
        small = make_random_space(40, seed=9)
        ckpt = tmp_path / "hybrid.jsonl"
        result = compute_relationships(small, Method.HYBRID, checkpoint=str(ckpt))
        from repro.core import compute_hybrid

        assert result == compute_hybrid(small)
        resumed = compute_relationships(
            small, Method.HYBRID, checkpoint=str(ckpt), resume=True
        )
        assert resumed == result


class TestInterruptAndResume:
    """Simulated SIGINT: the journal flushes, the rerun finishes the job."""

    @pytest.mark.parametrize("method,options", CHECKPOINTABLE)
    def test_kill_then_resume_is_identical(self, space, tmp_path, method, options):
        ckpt = tmp_path / "interrupted.jsonl"
        with pytest.raises(KeyboardInterrupt):
            compute_relationships(
                space,
                method,
                checkpoint=str(ckpt),
                unit_size=16,
                fault_plan=FaultPlan(interrupt_after=1),
                **options,
            )
        completed = [l for l in ckpt.read_text().splitlines()[1:]]
        assert completed  # partial progress survived the interrupt
        resumed = compute_relationships(
            space, method, checkpoint=str(ckpt), unit_size=16, resume=True, **options
        )
        assert_identical(resumed, clean_result(space, method, **options))

    def test_parallel_interrupt_resumes_sequentially(self, space, tmp_path):
        """A parallel run's checkpoint is interchangeable with sequential."""
        ckpt = tmp_path / "par.jsonl"
        with pytest.raises(KeyboardInterrupt):
            compute_relationships(
                space,
                Method.CUBE_MASKING,
                checkpoint=str(ckpt),
                unit_size=32,
                workers=2,
                fault_plan=FaultPlan(interrupt_after=2),
            )
        resumed = compute_relationships(
            space, Method.CUBE_MASKING, checkpoint=str(ckpt), unit_size=32, resume=True
        )
        assert_identical(resumed, compute_cubemask(space))

    def test_resume_skips_completed_units(self, space, tmp_path, monkeypatch):
        ckpt = tmp_path / "done.jsonl"
        compute_relationships(space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16)
        import repro.core.streaming as streaming

        def boom(*args, **kwargs):  # resuming a finished run recomputes nothing
            raise AssertionError("completed unit was recomputed")

        monkeypatch.setattr(streaming, "compute_block", boom)
        resumed = compute_relationships(
            space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16, resume=True
        )
        assert_identical(resumed, compute_baseline(space))


class TestWorkerCrashRecovery:
    """BrokenProcessPool is detected, the pool respawned, the range retried."""

    def test_killed_worker_recovers_without_intervention(self, space, tmp_path):
        plan = FaultPlan([Fault(unit=2, action="kill")], state_dir=tmp_path)
        result = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=0,
            unit_size=32,
            fault_plan=plan,
            max_retries=3,
            retry_backoff=0.0,
        )
        assert_identical(result, compute_cubemask(space))

    def test_repeated_kills_degrade_to_sequential(self, space, tmp_path):
        plan = FaultPlan([Fault(unit=1, action="kill", times=10)], state_dir=tmp_path)
        result = compute_cubemask_parallel(
            space,
            workers=2,
            min_parallel_observations=0,
            unit_size=32,
            fault_plan=plan,
            max_retries=1,
            retry_backoff=0.0,
        )
        assert_identical(result, compute_cubemask(space))

    def test_exhausted_retries_raise_without_fallback(self, space, tmp_path):
        plan = FaultPlan([Fault(unit=1, action="kill", times=10)], state_dir=tmp_path)
        with pytest.raises(WorkerCrashError):
            compute_cubemask_parallel(
                space,
                workers=2,
                min_parallel_observations=0,
                unit_size=32,
                fault_plan=plan,
                max_retries=1,
                retry_backoff=0.0,
                fallback_sequential=False,
            )

    def test_crash_through_runner_checkpoints_survivors(self, space, tmp_path):
        ckpt = tmp_path / "crash.jsonl"
        plan = FaultPlan([Fault(unit=2, action="kill")], state_dir=tmp_path / "state")
        (tmp_path / "state").mkdir()
        result = compute_relationships(
            space,
            Method.CUBE_MASKING,
            checkpoint=str(ckpt),
            unit_size=32,
            workers=2,
            fault_plan=plan,
            max_retries=3,
            retry_backoff=0.0,
        )
        assert_identical(result, compute_cubemask(space))

    def test_hung_worker_times_out(self, space, tmp_path):
        plan = FaultPlan(
            [Fault(unit=1, action="delay", seconds=5.0, times=5)], state_dir=tmp_path
        )
        with pytest.raises(UnitTimeoutError):
            compute_cubemask_parallel(
                space,
                workers=2,
                min_parallel_observations=0,
                unit_size=32,
                fault_plan=plan,
                max_retries=0,
                retry_backoff=0.0,
                unit_timeout=0.5,
                fallback_sequential=False,
            )


class TestInjectedUnitFailures:
    """Transient in-unit errors are retried with backoff, then recovered."""

    def test_transient_fault_is_retried(self, space):
        plan = FaultPlan([Fault(unit=1, action="raise", times=2)])
        result = run_materialization(
            space,
            Method.STREAMING,
            unit_size=16,
            fault_plan=plan,
            max_retries=3,
            retry_backoff=0.0,
        )
        assert_identical(result, compute_baseline_streaming(space))

    def test_permanent_fault_exhausts_retries(self, space, tmp_path):
        ckpt = tmp_path / "fail.jsonl"
        plan = FaultPlan([Fault(unit=1, action="raise", times=99)])
        with pytest.raises(WorkerCrashError):
            run_materialization(
                space,
                Method.STREAMING,
                checkpoint=str(ckpt),
                unit_size=16,
                fault_plan=plan,
                max_retries=2,
                retry_backoff=0.0,
            )
        # Units completed before the failure are durable and resumable.
        resumed = run_materialization(
            space, Method.STREAMING, checkpoint=str(ckpt), unit_size=16, resume=True
        )
        assert_identical(resumed, compute_baseline_streaming(space))


class TestCheckpointIntegrity:
    def test_torn_tail_is_repaired(self, space, tmp_path):
        ckpt = tmp_path / "torn.jsonl"
        with pytest.raises(KeyboardInterrupt):
            compute_relationships(
                space,
                Method.CUBE_MASKING,
                checkpoint=str(ckpt),
                unit_size=32,
                fault_plan=FaultPlan(interrupt_after=3),
            )
        intact = len(ckpt.read_text().splitlines())
        truncate_file(ckpt, drop_bytes=9)  # crash mid-append tears the tail
        resumed = compute_relationships(
            space, Method.CUBE_MASKING, checkpoint=str(ckpt), unit_size=32, resume=True
        )
        assert_identical(resumed, compute_cubemask(space))
        assert len(ckpt.read_text().splitlines()) >= intact

    def test_existing_checkpoint_requires_resume(self, space, tmp_path):
        ckpt = tmp_path / "existing.jsonl"
        compute_relationships(space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16)
        with pytest.raises(CheckpointError):
            compute_relationships(space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16)

    def test_mismatched_method_is_rejected(self, space, tmp_path):
        ckpt = tmp_path / "method.jsonl"
        compute_relationships(space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16)
        with pytest.raises(CheckpointError):
            compute_relationships(
                space, Method.STREAMING, checkpoint=str(ckpt), unit_size=16, resume=True
            )

    def test_mismatched_space_is_rejected(self, space, tmp_path):
        ckpt = tmp_path / "space.jsonl"
        compute_relationships(space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16)
        other = make_random_space(80, seed=7)
        with pytest.raises(CheckpointError):
            compute_relationships(
                other, Method.BASELINE, checkpoint=str(ckpt), unit_size=16, resume=True
            )

    def test_mismatched_unit_size_is_rejected(self, space, tmp_path):
        ckpt = tmp_path / "unit.jsonl"
        compute_relationships(space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16)
        with pytest.raises(CheckpointError):
            compute_relationships(
                space, Method.BASELINE, checkpoint=str(ckpt), unit_size=32, resume=True
            )

    def test_mid_file_corruption_is_fatal(self, space, tmp_path):
        ckpt = tmp_path / "corrupt.jsonl"
        compute_relationships(space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16)
        lines = ckpt.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # corrupt a middle record
        ckpt.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            compute_relationships(
                space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16, resume=True
            )

    def test_headerless_file_is_rejected(self, space, tmp_path):
        ckpt = tmp_path / "headerless.jsonl"
        ckpt.write_text('{"type": "unit", "id": 0, "delta": {}}\n')
        with pytest.raises(CheckpointError):
            compute_relationships(
                space, Method.BASELINE, checkpoint=str(ckpt), unit_size=16, resume=True
            )

    def test_fingerprint_tracks_content(self, space):
        assert space_fingerprint(space) == space_fingerprint(space)
        assert space_fingerprint(space) != space_fingerprint(make_random_space(80, seed=7))


class TestHarness:
    def test_kill_without_state_dir_is_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([Fault(unit=0, action="kill")])

    def test_unknown_action_is_rejected(self):
        with pytest.raises(ValueError):
            Fault(unit=0, action="explode")

    def test_faults_fire_a_bounded_number_of_times(self):
        plan = FaultPlan([Fault(unit=0, action="raise", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.before_unit(0)
        plan.before_unit(0)  # exhausted: no longer fires

    def test_truncate_file(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"x" * 100)
        assert truncate_file(path, keep_bytes=42) == 42
        assert path.stat().st_size == 42

    def test_runner_rejects_unknown_options(self, space):
        with pytest.raises(AlgorithmError):
            MaterializationRunner(Method.BASELINE, checkpoint=None, nonsense=1).run(space)

    def test_runner_rejects_unsupported_cubemask_dimensions(self, space):
        with pytest.raises(AlgorithmError):
            run_materialization(
                space, Method.CUBE_MASKING, unit_size=32, collect_partial_dimensions=True
            )

    def test_checkpoint_requires_open_handle(self, tmp_path):
        journal = Checkpoint(tmp_path / "x.jsonl")
        from repro.core import RelationshipSet

        with pytest.raises(CheckpointError):
            journal.append_unit(0, RelationshipSet())
