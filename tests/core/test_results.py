"""Unit tests for the relationship result container."""

import pytest

from repro.core.results import RelationshipSet, canonical
from repro.rdf import EX


class TestRelationshipSet:
    def test_complementary_canonicalised(self):
        result = RelationshipSet()
        result.add_complementary(EX.b, EX.a)
        assert result.complementary == {(EX.a, EX.b)}
        assert result.is_complementary(EX.a, EX.b)
        assert result.is_complementary(EX.b, EX.a)

    def test_full_is_directed(self):
        result = RelationshipSet(full=[(EX.a, EX.b)])
        assert (EX.a, EX.b) in result.full
        assert (EX.b, EX.a) not in result.full

    def test_partial_metadata(self):
        result = RelationshipSet()
        result.add_partial(EX.a, EX.b, frozenset({EX.d1}), 0.5)
        assert result.degree(EX.a, EX.b) == 0.5
        assert result.degree(EX.b, EX.a) is None
        assert result.partial_dimensions(EX.a, EX.b) == frozenset({EX.d1})
        assert result.partial_dimensions(EX.x, EX.y) == frozenset()

    def test_merge(self):
        r1 = RelationshipSet(full=[(EX.a, EX.b)])
        r2 = RelationshipSet(full=[(EX.c, EX.d)], complementary=[(EX.x, EX.y)])
        r2.add_partial(EX.p, EX.q, degree=0.25)
        r1.merge(r2)
        assert len(r1.full) == 2
        assert r1.is_complementary(EX.y, EX.x)
        assert r1.degree(EX.p, EX.q) == 0.25

    def test_total(self):
        result = RelationshipSet(full=[(EX.a, EX.b)], partial=[(EX.c, EX.d)])
        result.add_complementary(EX.e, EX.f)
        assert result.total() == 3

    def test_equality_ignores_metadata(self):
        r1 = RelationshipSet(partial=[(EX.a, EX.b)])
        r2 = RelationshipSet()
        r2.add_partial(EX.a, EX.b, frozenset({EX.d}), 0.5)
        assert r1 == r2

    def test_canonical_ordering(self):
        assert canonical(EX.b, EX.a) == (EX.a, EX.b)
        assert canonical(EX.a, EX.b) == (EX.a, EX.b)


class TestRecall:
    def test_perfect_recall(self):
        truth = RelationshipSet(full=[(EX.a, EX.b)], partial=[(EX.c, EX.d)])
        recall = truth.recall_against(truth)
        assert recall.full == recall.partial == recall.complementary == 1.0
        assert recall.overall == 1.0

    def test_partial_recall(self):
        truth = RelationshipSet(full=[(EX.a, EX.b), (EX.c, EX.d)])
        found = RelationshipSet(full=[(EX.a, EX.b)])
        recall = found.recall_against(truth)
        assert recall.full == 0.5

    def test_empty_truth_counts_as_one(self):
        truth = RelationshipSet()
        found = RelationshipSet(full=[(EX.a, EX.b)])
        assert found.recall_against(truth).full == 1.0

    def test_extra_findings_do_not_boost_recall(self):
        truth = RelationshipSet(full=[(EX.a, EX.b)])
        found = RelationshipSet(full=[(EX.a, EX.b), (EX.x, EX.y)])
        assert found.recall_against(truth).full == 1.0

    def test_symmetric_pairs_match_in_any_order(self):
        truth = RelationshipSet(complementary=[(EX.a, EX.b)])
        found = RelationshipSet(complementary=[(EX.b, EX.a)])
        assert found.recall_against(truth).complementary == 1.0
