"""Unit tests for rollup_dataset and incremental removal."""

import pytest

from repro.errors import AlgorithmError
from repro.core import compute_baseline, remove_observations, rollup_dataset
from repro.core.space import ObservationSpace
from repro.data.example import EXNS, build_example_cubespace
from repro.qb import CubeSpace, Dataset, DatasetSchema, Hierarchy, Observation
from repro.rdf import EX

from tests.conftest import make_random_space


@pytest.fixture
def population_cube() -> CubeSpace:
    geo = Hierarchy(EX.World)
    geo.add(EX.Greece, EX.World)
    geo.add(EX.Italy, EX.World)
    geo.add(EX.Athens, EX.Greece)
    geo.add(EX.Ioannina, EX.Greece)
    geo.add(EX.Rome, EX.Italy)
    time = Hierarchy(EX.AllTime)
    time.add(EX.Y2020, EX.AllTime)
    cube = CubeSpace()
    cube.add_hierarchy(EX.refArea, geo)
    cube.add_hierarchy(EX.refPeriod, time)
    schema = DatasetSchema(dimensions=(EX.refArea, EX.refPeriod), measures=(EX.pop,))
    ds = Dataset(EX.cities, schema)
    data = [(EX.Athens, 660.0), (EX.Ioannina, 65.0), (EX.Rome, 2800.0)]
    for i, (city, value) in enumerate(data):
        ds.add(Observation(EX[f"c{i}"], EX.cities,
                           {EX.refArea: city, EX.refPeriod: EX.Y2020}, {EX.pop: value}))
    cube.add_dataset(ds)
    return cube


class TestRollupDataset:
    def test_sum_to_country_level(self, population_cube):
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=1)
        values = {obs.value(EX.refArea): obs.measures[EX.pop] for obs in rolled}
        assert values[EX.Greece] == 725.0
        assert values[EX.Italy] == 2800.0
        assert len(rolled) == 2

    def test_rollup_to_root(self, population_cube):
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=0)
        assert len(rolled) == 1
        assert next(iter(rolled)).measures[EX.pop] == 3525.0

    def test_avg_aggregation(self, population_cube):
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=1, aggregation="avg")
        values = {obs.value(EX.refArea): obs.measures[EX.pop] for obs in rolled}
        assert values[EX.Greece] == pytest.approx(362.5)

    def test_identity_rollup_keeps_rows(self, population_cube):
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=2)
        assert len(rolled) == 3

    def test_coarser_rows_excluded(self, population_cube):
        # Add a country-level row; rolling to city level must skip it.
        ds = population_cube.datasets[EX.cities]
        ds.add(Observation(EX.country, EX.cities,
                           {EX.refArea: EX.Greece, EX.refPeriod: EX.Y2020}, {EX.pop: 999.0}))
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=2)
        assert all(obs.measures[EX.pop] != 999.0 for obs in rolled)

    def test_other_dimensions_preserved(self, population_cube):
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=1)
        assert all(obs.value(EX.refPeriod) == EX.Y2020 for obs in rolled)

    def test_rollup_result_is_valid_cube_dataset(self, population_cube):
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=1)
        population_cube.datasets[rolled.uri] = rolled
        population_cube.validate()

    def test_errors(self, population_cube):
        with pytest.raises(AlgorithmError):
            rollup_dataset(population_cube, EX.nothere, EX.refArea, 1)
        with pytest.raises(AlgorithmError):
            rollup_dataset(population_cube, EX.cities, EX.sex, 1)
        with pytest.raises(AlgorithmError):
            rollup_dataset(population_cube, EX.cities, EX.refArea, 99)
        with pytest.raises(AlgorithmError):
            rollup_dataset(population_cube, EX.cities, EX.refArea, 1, aggregation="median")

    def test_rollup_consistent_with_containment(self, population_cube):
        """Rolled-up totals equal aggregating via containment links."""
        rolled = rollup_dataset(population_cube, EX.cities, EX.refArea, to_level=1)
        population_cube.datasets[rolled.uri] = rolled
        from repro.core import Method, compute_relationships
        from repro.core.olap import CubeNavigator

        relationships = compute_relationships(population_cube, Method.BASELINE)
        navigator = CubeNavigator.from_cubespace(population_cube, relationships)
        greece_row = next(o for o in rolled if o.value(EX.refArea) == EX.Greece)
        assert navigator.aggregate(greece_row.uri, EX.pop, "sum") == greece_row.measures[EX.pop]


class TestRemoveObservations:
    def test_matches_recompute(self):
        space = make_random_space(40, seed=50)
        result = compute_baseline(space)
        to_remove = [space.observations[i].uri for i in (3, 17, 25)]
        new_space, result = remove_observations(space, result, to_remove)
        assert len(new_space) == 37
        assert result == compute_baseline(new_space)

    def test_metadata_purged(self):
        space = make_random_space(30, seed=51)
        result = compute_baseline(space, collect_partial_dimensions=True)
        victim = space.observations[0].uri
        _, result = remove_observations(space, result, [victim])
        assert all(victim not in pair for pair in result.partial_map)
        assert all(victim not in pair for pair in result.degrees)

    def test_unknown_uri_rejected(self):
        space = make_random_space(10, seed=52)
        result = compute_baseline(space)
        with pytest.raises(AlgorithmError):
            remove_observations(space, result, [EX.ghost])

    def test_add_then_remove_roundtrip(self):
        from repro.core import update_relationships

        space = make_random_space(25, seed=53)
        original = compute_baseline(space)
        record = space.observations[0]
        update_relationships(
            space,
            original,
            [(EX.temp, record.dataset, dict(zip(space.dimensions, record.codes)), record.measures)],
        )
        new_space, reduced = remove_observations(space, original, [EX.temp])
        assert reduced == compute_baseline(new_space)
