"""Unit tests for skyline / k-dominant skyline computation."""

import pytest

from repro.errors import AlgorithmError
from repro.core.baseline import compute_baseline
from repro.core.skyline import (
    k_dominant_skyline,
    k_dominates,
    skyline,
    skyline_from_relationships,
    strictly_dominates,
)
from repro.core.space import ObservationSpace
from repro.data.example import EXNS, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX

from tests.conftest import make_random_space


@pytest.fixture
def example() -> ObservationSpace:
    return build_example_space()


class TestDomination:
    def test_strict_domination(self, example):
        o21 = example.record_for(EXNS.o21).index
        o32 = example.record_for(EXNS.o32).index
        assert strictly_dominates(example, o21, o32)
        assert not strictly_dominates(example, o32, o21)

    def test_equal_vectors_do_not_dominate(self, example):
        o11 = example.record_for(EXNS.o11).index
        o31 = example.record_for(EXNS.o31).index
        assert not strictly_dominates(example, o11, o31)
        assert not strictly_dominates(example, o31, o11)

    def test_k_dominates_with_lower_k(self, example):
        o21 = example.record_for(EXNS.o21).index
        o31 = example.record_for(EXNS.o31).index
        # o21 contains o31 on refArea (strict) and sex, not refPeriod.
        assert k_dominates(example, o21, o31, k=2)
        assert not k_dominates(example, o21, o31, k=3)

    def test_k_validation(self, example):
        with pytest.raises(AlgorithmError):
            k_dominates(example, 0, 1, k=0)
        with pytest.raises(AlgorithmError):
            k_dominates(example, 0, 1, k=99)


class TestSkyline:
    def test_dominated_points_excluded(self, example):
        sky = set(skyline(example))
        assert EXNS.o32 not in sky  # dominated by o21
        assert EXNS.o34 not in sky
        assert EXNS.o33 not in sky  # dominated by o22
        assert EXNS.o21 in sky
        assert EXNS.o22 in sky

    def test_k_dominant_skyline_subset_of_skyline(self, example):
        full_skyline = set(skyline(example))
        k_sky = set(k_dominant_skyline(example, k=2))
        assert k_sky <= full_skyline

    def test_k_equal_dims_matches_skyline(self, example):
        assert set(k_dominant_skyline(example, k=3)) == set(skyline(example))

    def test_from_relationships_matches_direct(self, example):
        relationships = compute_baseline(example)
        direct = set(skyline(example))
        derived = set(skyline_from_relationships(example, relationships))
        assert direct == derived

    def test_from_relationships_random(self):
        space = make_random_space(60, seed=12)
        relationships = compute_baseline(space)
        assert set(skyline(space)) == set(skyline_from_relationships(space, relationships))

    def test_all_identical_points_survive(self):
        geo = Hierarchy(EX.World)
        geo.add(EX.Athens, EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.o1, EX.d, {EX.refArea: EX.Athens}, {EX.m})
        space.add(EX.o2, EX.d, {EX.refArea: EX.Athens}, {EX.m})
        assert set(skyline(space)) == {EX.o1, EX.o2}

    def test_measure_scoping(self):
        """Without shared measures nothing dominates by default."""
        geo = Hierarchy(EX.World)
        geo.add(EX.Athens, EX.World)
        space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
        space.add(EX.top, EX.d, {}, {EX.m1})
        space.add(EX.leaf, EX.d, {EX.refArea: EX.Athens}, {EX.m2})
        assert set(skyline(space)) == {EX.top, EX.leaf}
        assert set(skyline(space, same_measure_only=False)) == {EX.top}
