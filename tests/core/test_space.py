"""Unit tests for the observation space and its reference predicates."""

import pytest

from repro.errors import AlgorithmError
from repro.core.space import ObservationSpace
from repro.data.example import EXNS, build_example_space
from repro.qb.hierarchy import Hierarchy
from repro.rdf import EX


@pytest.fixture
def tiny() -> ObservationSpace:
    geo = Hierarchy(EX.World)
    geo.add(EX.Greece, EX.World)
    geo.add(EX.Athens, EX.Greece)
    space = ObservationSpace((EX.refArea,), {EX.refArea: geo})
    space.add(EX.o1, EX.d, {EX.refArea: EX.Greece}, {EX.m1})
    space.add(EX.o2, EX.d, {EX.refArea: EX.Athens}, {EX.m1})
    space.add(EX.o3, EX.d, {}, {EX.m2})  # padded to root
    return space


class TestConstruction:
    def test_padding_to_root(self, tiny):
        assert tiny[2].codes == (EX.World,)

    def test_unknown_code_rejected(self, tiny):
        with pytest.raises(AlgorithmError):
            tiny.add(EX.oX, EX.d, {EX.refArea: EX.Mars}, {EX.m1})

    def test_unknown_dimension_rejected(self, tiny):
        with pytest.raises(AlgorithmError):
            tiny.add(EX.oX, EX.d, {EX.zzz: EX.Athens}, {EX.m1})

    def test_measureless_observation_rejected(self, tiny):
        with pytest.raises(AlgorithmError):
            tiny.add(EX.oX, EX.d, {}, set())

    def test_duplicate_dimension_bus_rejected(self):
        geo = Hierarchy(EX.World)
        with pytest.raises(AlgorithmError):
            ObservationSpace((EX.refArea, EX.refArea), {EX.refArea: geo})

    def test_missing_hierarchy_rejected(self):
        with pytest.raises(AlgorithmError):
            ObservationSpace((EX.refArea,), {})

    def test_indices_sequential(self, tiny):
        assert [r.index for r in tiny] == [0, 1, 2]

    def test_record_for(self, tiny):
        assert tiny.record_for(EX.o2).index == 1
        with pytest.raises(AlgorithmError):
            tiny.record_for(EX.nothere)

    def test_from_cubespace_preserves_counts(self):
        space = build_example_space()
        assert len(space) == 10
        assert len(space.dimensions) == 3


class TestPredicates:
    def test_dimension_contains_reflexive(self, tiny):
        assert tiny.dimension_contains(0, 0, 0)

    def test_dimension_contains_hierarchy(self, tiny):
        assert tiny.dimension_contains(0, 1, 0)  # Greece contains Athens
        assert not tiny.dimension_contains(1, 0, 0)

    def test_root_contains_everything(self, tiny):
        assert tiny.dimension_contains(2, 0, 0)
        assert tiny.dimension_contains(2, 1, 0)

    def test_full_containment_requires_measure_overlap(self, tiny):
        # o3 (root) dimension-contains o1 but measures are disjoint.
        assert tiny.dim_full(2, 0)
        assert not tiny.is_full_containment(2, 0)
        assert tiny.is_full_containment(0, 1)

    def test_partial_disjoint_from_full(self, tiny):
        assert not (tiny.is_full_containment(0, 1) and tiny.is_partial_containment(0, 1))

    def test_complementarity_is_vector_equality(self, tiny):
        tiny.add(EX.o4, EX.d, {EX.refArea: EX.Athens}, {EX.m2})
        assert tiny.is_complementary(1, 3)
        assert tiny.is_complementary(3, 1)
        assert not tiny.is_complementary(0, 3)

    def test_no_self_relationships(self, tiny):
        assert not tiny.is_full_containment(0, 0)
        assert not tiny.is_partial_containment(0, 0)
        assert not tiny.is_complementary(0, 0)

    def test_containment_degree(self):
        space = build_example_space()
        o21 = space.record_for(EXNS.o21).index
        o31 = space.record_for(EXNS.o31).index
        # Greece⊃Athens yes, 2011 vs 2001 no, sex Total==Total yes -> 2/3.
        assert space.containment_degree(o21, o31) == pytest.approx(2 / 3)

    def test_partial_dimensions(self):
        space = build_example_space()
        o21 = space.record_for(EXNS.o21).index
        o31 = space.record_for(EXNS.o31).index
        assert space.partial_dimensions(o21, o31) == frozenset({EXNS.refArea, EXNS.sex})


class TestViews:
    def test_level_signature(self, tiny):
        assert tiny.level_signature(0) == (1,)
        assert tiny.level_signature(1) == (2,)
        assert tiny.level_signature(2) == (0,)

    def test_subset(self, tiny):
        sub = tiny.subset(2)
        assert len(sub) == 2
        assert sub[1].uri == EX.o2
        assert sub[1].index == 1

    def test_select_reindexes(self, tiny):
        sub = tiny.select([2, 0])
        assert [r.uri for r in sub] == [EX.o3, EX.o1]
        assert [r.index for r in sub] == [0, 1]

    def test_measure_overlap(self, tiny):
        assert tiny.measure_overlap(0, 1)
        assert not tiny.measure_overlap(0, 2)
