"""Unit tests for the streaming baseline and the hybrid method."""

import pytest

from repro.errors import AlgorithmError
from repro.core import (
    Method,
    compute_baseline,
    compute_baseline_streaming,
    compute_clustering,
    compute_hybrid,
    compute_relationships,
)
from repro.data.example import build_example_space

from tests.conftest import make_random_space


class TestStreaming:
    @pytest.mark.parametrize("block_size", [1, 3, 16, 1000])
    def test_equals_baseline_any_block_size(self, block_size):
        space = make_random_space(40, seed=30)
        assert compute_baseline_streaming(space, block_size=block_size) == compute_baseline(space)

    def test_example(self):
        space = build_example_space()
        assert compute_baseline_streaming(space, block_size=3) == compute_baseline(space)

    def test_partial_dimensions_rederived(self):
        space = build_example_space()
        streamed = compute_baseline_streaming(
            space, block_size=4, collect_partial_dimensions=True
        )
        full = compute_baseline(space, collect_partial_dimensions=True)
        assert streamed.partial_map == full.partial_map

    def test_targets(self):
        space = make_random_space(30, seed=31)
        truth = compute_baseline(space)
        only_full = compute_baseline_streaming(space, targets=("full",))
        assert only_full.full == truth.full
        assert only_full.partial == set() and only_full.complementary == set()

    def test_invalid_block_size(self):
        space = build_example_space()
        with pytest.raises(AlgorithmError):
            compute_baseline_streaming(space, block_size=0)

    def test_via_facade(self):
        space = build_example_space()
        assert compute_relationships(space, Method.STREAMING) == compute_baseline(space)


class TestHybrid:
    def test_exact_on_full_and_complementary(self):
        space = make_random_space(60, seed=32)
        truth = compute_baseline(space)
        hybrid = compute_hybrid(space, seed=2)
        assert hybrid.full == truth.full
        assert hybrid.complementary == truth.complementary

    def test_partial_matches_clustering_arm(self):
        space = make_random_space(60, seed=33)
        hybrid = compute_hybrid(space, algorithm="kmeans", seed=5)
        clustered = compute_clustering(
            space, algorithm="kmeans", seed=5, targets=("partial",)
        )
        assert hybrid.partial == clustered.partial

    def test_partial_subset_of_truth(self):
        space = make_random_space(60, seed=34)
        truth = compute_baseline(space)
        hybrid = compute_hybrid(space, seed=3)
        assert hybrid.partial <= truth.partial

    def test_targets_respected(self):
        space = make_random_space(30, seed=35)
        result = compute_hybrid(space, targets=("full",), seed=0)
        assert result.partial == set() and result.complementary == set()

    def test_via_facade(self):
        space = make_random_space(30, seed=36)
        assert compute_relationships(space, Method.HYBRID, seed=4) == compute_hybrid(
            space, seed=4
        )


class TestCubemaskStats:
    def test_stats_collected(self):
        space = make_random_space(50, seed=37)
        from repro.core import compute_cubemask

        stats: dict = {}
        compute_cubemask(space, stats=stats)
        n = len(space)
        assert stats["cubes"] >= 1
        assert stats["cube_pairs"] >= 1
        assert 0 < stats["instance_comparisons"]

    def test_pruning_saves_comparisons(self):
        space = make_random_space(80, seed=38, fanout=2, depth=4)
        from repro.core import compute_cubemask

        stats: dict = {}
        compute_cubemask(space, targets=("full", "complementary"), stats=stats)
        assert stats["instance_comparisons"] < len(space) ** 2
