"""Unit tests for the per-relationship ``targets`` option (Fig. 5a-c)."""

import pytest

from repro.core import (
    compute_baseline,
    compute_clustering,
    compute_cubemask,
    compute_rules,
    compute_sparql,
)
from repro.core.baseline import normalize_targets
from repro.data.example import build_example_space


@pytest.fixture(scope="module")
def example():
    return build_example_space()


@pytest.fixture(scope="module")
def truth(example):
    return compute_baseline(example)


class TestNormalize:
    def test_default_is_all(self):
        assert normalize_targets(None) == {"full", "partial", "complementary"}

    def test_collect_partial_false_drops_partial(self):
        assert normalize_targets(None, collect_partial=False) == {"full", "complementary"}

    def test_explicit_subset(self):
        assert normalize_targets(("full",)) == {"full"}

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            normalize_targets(("fuull",))

    def test_accepts_any_iterable(self):
        assert normalize_targets({"partial"}) == {"partial"}
        assert normalize_targets(["complementary"]) == {"complementary"}


LOSSLESS_METHODS = [compute_baseline, compute_cubemask, compute_sparql, compute_rules]


class TestPerMethodTargets:
    @pytest.mark.parametrize("fn", LOSSLESS_METHODS)
    def test_complementary_only(self, fn, example, truth):
        result = fn(example, targets=("complementary",))
        assert result.complementary == truth.complementary
        assert result.full == set()
        assert result.partial == set()

    @pytest.mark.parametrize("fn", LOSSLESS_METHODS)
    def test_full_only(self, fn, example, truth):
        result = fn(example, targets=("full",))
        assert result.full == truth.full
        assert result.complementary == set()
        assert result.partial == set()

    @pytest.mark.parametrize("fn", LOSSLESS_METHODS)
    def test_partial_only(self, fn, example, truth):
        result = fn(example, targets=("partial",))
        assert result.partial == truth.partial
        assert result.full == set()
        assert result.complementary == set()

    @pytest.mark.parametrize("fn", LOSSLESS_METHODS)
    def test_all_targets_equals_default(self, fn, example, truth):
        assert fn(example, targets=("full", "partial", "complementary")) == truth

    def test_clustering_respects_targets(self, example, truth):
        result = compute_clustering(
            example, targets=("full",), n_clusters=1, sample_rate=1.0, seed=0
        )
        assert result.full == truth.full
        assert result.partial == set() and result.complementary == set()

    def test_targets_combined_with_collect_partial(self, example):
        result = compute_baseline(
            example, targets=("full", "partial"), collect_partial=False
        )
        assert result.partial == set()
        assert result.full
