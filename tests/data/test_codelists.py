"""Unit tests for the generated code lists."""

import pytest

from repro.data import codelists


class TestGeoHierarchy:
    def test_depth(self):
        geo = codelists.geo_hierarchy()
        assert geo.max_level == 4

    def test_parameterised_size(self):
        small = codelists.geo_hierarchy(countries_per_continent=1, regions_per_country=1, cities_per_region=1)
        # 1 root + 5 continents + 5 countries + 5 regions + 5 cities.
        assert len(small) == 21

    def test_city_chain(self):
        geo = codelists.geo_hierarchy()
        city = codelists.CODE["geo/EU-C0-R0-T0"]
        assert geo.level(city) == 4
        assert geo.is_ancestor(codelists.CODE["geo/EU"], city)
        assert geo.is_ancestor(geo.root, city)

    def test_deterministic(self):
        assert set(codelists.geo_hierarchy()) == set(codelists.geo_hierarchy())


class TestTimeHierarchy:
    def test_depth_with_months(self):
        time = codelists.time_hierarchy()
        assert time.max_level == 3

    def test_depth_without_months(self):
        time = codelists.time_hierarchy(months=False)
        assert time.max_level == 2

    def test_month_quarter_chain(self):
        time = codelists.time_hierarchy(start_year=2010, years=1)
        month = codelists.CODE["time/Y2010-M05"]
        quarter = codelists.CODE["time/Y2010-Q2"]
        assert time.parent(month) == quarter
        assert time.parent(quarter) == codelists.CODE["time/Y2010"]

    def test_year_count(self):
        time = codelists.time_hierarchy(start_year=2000, years=3, months=False)
        assert len(time.codes_at_level(1)) == 3


@pytest.mark.parametrize(
    "builder,expected_depth",
    [
        (codelists.sex_hierarchy, 1),
        (codelists.age_hierarchy, 2),
        (codelists.unit_hierarchy, 1),
        (codelists.citizenship_hierarchy, 2),
        (codelists.education_hierarchy, 2),
        (codelists.household_size_hierarchy, 1),
        (codelists.economic_activity_hierarchy, 2),
    ],
)
def test_all_hierarchies_shape(builder, expected_depth):
    hierarchy = builder()
    assert hierarchy.max_level == expected_depth
    assert len(hierarchy) > 1
    for code in hierarchy:
        assert hierarchy.is_ancestor(hierarchy.root, code)


def test_total_code_count_near_paper_scale():
    """The default code lists should be on the order of the paper's 2.6k values."""
    total = sum(
        len(builder())
        for builder in (
            codelists.geo_hierarchy,
            codelists.time_hierarchy,
            codelists.sex_hierarchy,
            codelists.age_hierarchy,
            codelists.unit_hierarchy,
            codelists.citizenship_hierarchy,
            codelists.education_hierarchy,
            codelists.household_size_hierarchy,
            codelists.economic_activity_hierarchy,
        )
    )
    assert 500 <= total <= 5000
