"""Unit tests for the running-example builder."""

from repro.data.example import EXNS, EXPECTED_EXAMPLE, build_example_cubespace, build_example_space


class TestExampleData:
    def test_ten_observations_three_datasets(self):
        cube = build_example_cubespace()
        assert len(cube.datasets) == 3
        assert cube.observation_count() == 10

    def test_dimension_bus(self):
        space = build_example_space()
        assert set(space.dimensions) == {EXNS.refArea, EXNS.refPeriod, EXNS.sex}

    def test_hierarchies_match_figure1(self):
        cube = build_example_cubespace()
        geo = cube.hierarchies[EXNS.refArea]
        assert geo.is_ancestor(EXNS.Greece, EXNS.Athens)
        assert geo.is_ancestor(EXNS.Greece, EXNS.Ioannina)
        assert geo.is_ancestor(EXNS.Italy, EXNS.Rome)
        assert geo.is_ancestor(EXNS.US, EXNS.Austin)
        assert not geo.is_ancestor(EXNS.Greece, EXNS.Rome)
        time = cube.hierarchies[EXNS.refPeriod]
        assert time.is_ancestor(EXNS.Y2011, EXNS.Jan2011)
        assert not time.is_ancestor(EXNS.Y2001, EXNS.Jan2011)

    def test_measures_match_figure2(self):
        cube = build_example_cubespace()
        space = build_example_space()
        o21 = space.record_for(EXNS.o21)
        assert o21.measures == frozenset({EXNS.unemployment, EXNS.poverty})
        o11 = space.record_for(EXNS.o11)
        assert o11.measures == frozenset({EXNS.population})

    def test_d2_lacks_sex_dimension(self):
        cube = build_example_cubespace()
        d2 = cube.datasets[EXNS["dataset/D2"]]
        assert EXNS.sex not in d2.schema.dimensions
        # Flattened: padded to the sex root.
        space = build_example_space()
        assert space.record_for(EXNS.o21).codes[space.dimensions.index(EXNS.sex)] == EXNS.Total

    def test_expected_relationships_well_formed(self):
        assert EXPECTED_EXAMPLE["full"]
        assert EXPECTED_EXAMPLE["complementary"]
        locals_present = {o[0] for o in EXPECTED_EXAMPLE["full"]}
        assert locals_present <= {"o21", "o22"}

    def test_validates(self):
        build_example_cubespace().validate()
