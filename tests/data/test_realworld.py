"""Unit tests for the Table 4 real-world emulation."""

import pytest

from repro.core.space import ObservationSpace
from repro.data.realworld import (
    DIM_REF_AREA,
    DIM_REF_PERIOD,
    REALWORLD_PROFILES,
    build_realworld_cubespace,
    standard_hierarchies,
)


class TestProfiles:
    def test_seven_datasets(self):
        assert len(REALWORLD_PROFILES) == 7

    def test_paper_observation_total(self):
        total = sum(p.observations for p in REALWORLD_PROFILES)
        assert total == 246_500  # the paper reports ~250k

    def test_all_profiles_share_area_and_period(self):
        for profile in REALWORLD_PROFILES:
            assert DIM_REF_AREA in profile.dimensions
            assert DIM_REF_PERIOD in profile.dimensions

    def test_table4_dimension_counts(self):
        by_name = {p.name: p for p in REALWORLD_PROFILES}
        assert len(by_name["D1"].dimensions) == 6
        assert len(by_name["D4"].dimensions) == 3
        assert len(by_name["D7"].dimensions) == 3

    def test_d1_d3_share_population_measure(self):
        by_name = {p.name: p for p in REALWORLD_PROFILES}
        assert by_name["D1"].measure == by_name["D3"].measure


class TestGeneration:
    def test_scaled_counts(self):
        cube = build_realworld_cubespace(scale=0.01, seed=0)
        assert len(cube.datasets) == 7
        expected = sum(max(1, round(p.observations * 0.01)) for p in REALWORLD_PROFILES)
        assert cube.observation_count() == expected

    def test_observations_valid(self):
        cube = build_realworld_cubespace(scale=0.002, seed=1)
        cube.validate()  # no unknown codes

    def test_deterministic_per_seed(self):
        c1 = build_realworld_cubespace(scale=0.002, seed=5)
        c2 = build_realworld_cubespace(scale=0.002, seed=5)
        obs1 = [(o.uri, tuple(sorted(o.dimensions.items()))) for o in c1.observations()]
        obs2 = [(o.uri, tuple(sorted(o.dimensions.items()))) for o in c2.observations()]
        assert obs1 == obs2

    def test_different_seeds_differ(self):
        c1 = build_realworld_cubespace(scale=0.002, seed=1)
        c2 = build_realworld_cubespace(scale=0.002, seed=2)
        dims1 = [tuple(sorted(o.dimensions.items())) for o in c1.observations()]
        dims2 = [tuple(sorted(o.dimensions.items())) for o in c2.observations()]
        assert dims1 != dims2

    def test_aggregate_share_controls_levels(self):
        leafy = build_realworld_cubespace(scale=0.002, seed=3, aggregate_share=0.0)
        space = ObservationSpace.from_cubespace(leafy)
        hierarchies = standard_hierarchies()
        # With aggregate_share=0 every drawn code is a leaf of its hierarchy.
        for record in space.observations:
            for dimension, code in zip(space.dimensions, record.codes):
                hierarchy = hierarchies[dimension]
                if code != hierarchy.root:  # padded dimensions are roots
                    assert not hierarchy.children(code)

    def test_produces_relationships(self):
        """Observations of an emulated corpus must actually relate."""
        from repro.core import Method, compute_relationships

        cube = build_realworld_cubespace(scale=0.004, seed=7)
        result = compute_relationships(cube, Method.CUBE_MASKING, collect_partial=False)
        assert len(result.full) > 0
