"""Unit tests for the Section 4.2 synthetic generator."""

import pytest

from repro.core.lattice import CubeLattice
from repro.data.synthetic import build_synthetic_space, projected_cube_count


class TestProjection:
    def test_sublinear_growth(self):
        small = projected_cube_count(1_000)
        large = projected_cube_count(100_000)
        assert small < large
        # Ratio cubes/n must decrease (Figure 5f).
        assert large / 100_000 < small / 1_000

    def test_bounds(self):
        assert projected_cube_count(0) == 0
        assert projected_cube_count(1) == 1
        assert projected_cube_count(10) <= 10


class TestGeneration:
    def test_exact_observation_count(self):
        space = build_synthetic_space(257, seed=0)
        assert len(space) == 257

    def test_dimension_count(self):
        space = build_synthetic_space(50, dimension_count=6, seed=0)
        assert len(space.dimensions) == 6

    def test_cube_count_close_to_projection(self):
        n = 400
        space = build_synthetic_space(n, seed=1)
        lattice = CubeLattice(space)
        target = projected_cube_count(n)
        assert abs(len(lattice) - target) <= max(3, target // 4)

    def test_even_population(self):
        space = build_synthetic_space(300, seed=2)
        lattice = CubeLattice(space)
        sizes = [len(members) for members in lattice.nodes.values()]
        assert max(sizes) - min(sizes) <= max(3, max(sizes) // 2)

    def test_deterministic(self):
        s1 = build_synthetic_space(100, seed=3)
        s2 = build_synthetic_space(100, seed=3)
        assert [r.codes for r in s1.observations] == [r.codes for r in s2.observations]

    def test_measures_assigned(self):
        space = build_synthetic_space(40, seed=4, measure_count=2)
        measures = {m for r in space.observations for m in r.measures}
        assert len(measures) == 2

    def test_empty(self):
        assert len(build_synthetic_space(0)) == 0

    def test_ratio_decreases_with_size(self):
        """Figure 5(f): cubes per observation shrinks as input grows."""
        ratios = []
        for n in (200, 800, 3200):
            space = build_synthetic_space(n, seed=5)
            ratios.append(CubeLattice(space).cube_ratio)
        assert ratios[0] > ratios[1] > ratios[2]
