"""Compatibility shim — the exposition parser now lives in
:mod:`repro.obs.exposition`.

Historically the Prometheus text-exposition parser/validator lived
here; PR 10 promoted it into the package so the cluster router's
``/metrics`` federation and ``repro top`` can import it.  This shim
keeps the old import path (``from tests.exposition import ...``) and
the old CI invocation (``python tests/exposition.py scrape.txt ...``)
working.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obs.exposition import (  # noqa: E402,F401
    ExpositionError,
    MetricFamily,
    Sample,
    federate,
    main,
    parse_exposition,
    render_families,
    validate,
)

__all__ = [
    "ExpositionError",
    "MetricFamily",
    "Sample",
    "federate",
    "main",
    "parse_exposition",
    "render_families",
    "validate",
]

if __name__ == "__main__":
    raise SystemExit(main())
