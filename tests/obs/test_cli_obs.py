"""CLI observability flags: ``compute --trace/--profile`` and
``inspect --stats``."""

import json

import pytest

from repro.cli import main

from tests.obs.test_tracing import ENVELOPE_KEYS, FIELD_KEYS


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "corpus.ttl"
    code = main(["generate", "--kind", "realworld", "--scale", "0.001",
                 "--seed", "7", "--output", str(path)])
    assert code == 0
    return path


class TestComputeTrace:
    def test_trace_writes_jsonl(self, corpus_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        out = tmp_path / "links.nt"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "--targets", "full",
                     "--output", str(out), "--trace", str(trace_path)])
        assert code == 0
        err = capsys.readouterr().err
        assert "# trace " in err
        lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert lines, "trace file is empty"
        spans = [line for line in lines if line["event"] == "span"]
        names = {line["span"] for line in spans}
        # The top-level phases all show up...
        assert {"cli.load", "cli.compute", "cli.store"} <= names
        # ...as do the nested compute internals.
        assert any(name.startswith("cubemask.") for name in names)
        for line in spans:
            assert ENVELOPE_KEYS <= set(line)
            assert FIELD_KEYS <= set(line["fields"])
        # One run, one trace ID on every record.
        assert len({line["trace_id"] for line in spans}) == 1

    def test_trace_spans_cover_wall_time(self, corpus_file, tmp_path):
        """Top-level spans account for (almost) the whole run."""
        trace_path = tmp_path / "trace.jsonl"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking",
                     "--output", str(tmp_path / "links.nt"),
                     "--trace", str(trace_path)])
        assert code == 0
        spans = [json.loads(line) for line in trace_path.read_text().splitlines()]
        tops = [s for s in spans if s["fields"]["parent_id"] is None]
        start = min(s["fields"]["start"] for s in spans)
        end = max(
            s["fields"]["start"] + s["fields"]["duration_ns"] / 1e9 for s in spans
        )
        covered = sum(s["fields"]["duration_ns"] for s in tops) / 1e9
        assert covered >= 0.9 * (end - start)

    def test_profile_prints_table(self, corpus_file, tmp_path, capsys):
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking",
                     "--output", str(tmp_path / "links.nt"), "--profile"])
        assert code == 0
        err = capsys.readouterr().err
        assert "wall-clock sampling profile" in err


class TestInspectStats:
    def test_inspect_stats_on_segment_store(self, corpus_file, tmp_path, capsys):
        store = tmp_path / "links.rseg"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "-o", str(store)])
        assert code == 0
        capsys.readouterr()
        code = main(["inspect", "--input", str(store), "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "storage:" in out
        assert "segments:" in out
        assert "wal tail:" in out
        assert "last repair:" in out
        assert "repro_storage_segment_loads_total" in out

    def test_inspect_without_stats_unchanged(self, corpus_file, tmp_path, capsys):
        store = tmp_path / "links.rseg"
        main(["compute", "--input", str(corpus_file),
              "--method", "cube_masking", "-o", str(store)])
        capsys.readouterr()
        code = main(["inspect", "--input", str(store)])
        assert code == 0
        assert "storage counters" not in capsys.readouterr().out
