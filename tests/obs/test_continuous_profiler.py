"""The always-on continuous profiler: sampling, window rotation,
collapsed-stack dumps and the process-wide singleton."""

import threading
import time

import pytest

from repro.obs.profile import (
    ContinuousProfiler,
    get_continuous_profiler,
    start_continuous_profiler,
    stop_continuous_profiler,
)


def busy_wait(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(500))


@pytest.fixture
def worker():
    stop = threading.Event()
    thread = threading.Thread(target=busy_wait, args=(stop,), daemon=True)
    thread.start()
    yield
    stop.set()
    thread.join()


class TestSampling:
    def test_collects_collapsed_stacks(self, worker):
        profiler = ContinuousProfiler(interval=0.005, window_seconds=60.0)
        profiler.start()
        time.sleep(0.2)
        profiler.stop()
        stacks = profiler.collapsed()
        assert stacks, "no samples collected"
        # Root-first collapsed format: frames joined by ';', each
        # file:function.
        assert any("busy_wait" in stack for stack in stacks)
        for stack in stacks:
            assert all(":" in frame for frame in stack.split(";"))

    def test_render_is_flamegraph_input(self, worker):
        profiler = ContinuousProfiler(interval=0.005)
        profiler.start()
        time.sleep(0.1)
        profiler.stop()
        lines = profiler.render(limit=5).splitlines()
        assert 0 < len(lines) <= 5
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0

    def test_render_empty(self):
        assert ContinuousProfiler().render() == "(no samples yet)\n"

    def test_excludes_own_thread(self):
        # An otherwise idle process: the sampler must not sample its own
        # sampling loop.  (Stop the process-wide singleton first — its
        # sampler thread is a *different* thread and would legitimately
        # show up in our local profiler's samples.)
        stop_continuous_profiler()
        profiler = ContinuousProfiler(interval=0.005)
        profiler.start()
        time.sleep(0.05)
        profiler.stop()
        frames = {
            frame for stack in profiler.collapsed() for frame in stack.split(";")
        }
        assert "repro/obs/profile.py:_run" not in frames


class TestWindows:
    def test_rotation_retains_bounded_windows(self, worker):
        profiler = ContinuousProfiler(interval=0.005, windows=3)
        profiler.start()
        time.sleep(0.1)
        profiler.stop()
        before = sum(profiler.collapsed().values())
        for _ in range(10):
            profiler.rotate()
        # Windows beyond the retention bound are discarded, but recent
        # samples survive rotation in the retained deque.
        assert profiler.as_dict()["rotations"] == 10
        assert profiler.as_dict()["windows_retained"] <= 2  # maxlen windows-1

    def test_dump_dir_pruned_to_newest(self, tmp_path, worker):
        profiler = ContinuousProfiler(interval=0.005, windows=2, dump_dir=tmp_path)
        profiler.start()
        for _ in range(5):
            time.sleep(0.05)
            profiler.rotate()
        profiler.stop()
        dumps = sorted(tmp_path.glob("profile-*.collapsed"))
        assert 0 < len(dumps) <= 2
        text = dumps[-1].read_text()
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0

    def test_as_dict_shape(self):
        payload = ContinuousProfiler().as_dict()
        assert {
            "interval_seconds",
            "window_seconds",
            "samples",
            "rotations",
            "running",
            "hottest",
        } <= set(payload)


class TestSingleton:
    @pytest.fixture(autouse=True)
    def fresh(self):
        stop_continuous_profiler()
        yield
        stop_continuous_profiler()

    def test_get_or_create_and_stop(self):
        first = start_continuous_profiler(interval=0.05)
        second = start_continuous_profiler()
        assert first is second is get_continuous_profiler()
        assert first.running
        stop_continuous_profiler()
        assert get_continuous_profiler() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ContinuousProfiler(interval=0.0)
        with pytest.raises(ValueError):
            ContinuousProfiler(windows=0)
