"""Exposition re-rendering and scrape federation (`render_families`,
`federate`) — the machinery behind the router's merged `/metrics`."""

from repro.obs.exposition import (
    federate,
    parse_exposition,
    render_families,
    validate,
)

SHARD_SCRAPE = """\
# HELP repro_requests_total HTTP requests served, by endpoint and status.
# TYPE repro_requests_total counter
repro_requests_total{endpoint="contained",status="200"} 7
# TYPE repro_kernel_calls_total counter
repro_kernel_calls_total 12
# TYPE repro_request_latency_seconds histogram
repro_request_latency_seconds_bucket{endpoint="contained",status="200",le="0.1"} 6
repro_request_latency_seconds_bucket{endpoint="contained",status="200",le="+Inf"} 7
repro_request_latency_seconds_sum{endpoint="contained",status="200"} 0.42
repro_request_latency_seconds_count{endpoint="contained",status="200"} 7
"""

ROUTER_SCRAPE = """\
# TYPE repro_cluster_shards gauge
repro_cluster_shards 2
"""


class TestRenderFamilies:
    def test_round_trips_through_parse_and_validate(self):
        families = parse_exposition(SHARD_SCRAPE)
        text = render_families(families)
        assert validate(text) == []
        again = parse_exposition(text)
        assert set(again) == set(families)
        # Values and labels survive, including the +Inf bucket.
        assert "le=\"+Inf\"" in text
        assert "repro_requests_total{endpoint=\"contained\",status=\"200\"} 7" in text

    def test_label_escaping(self):
        text = render_families(
            parse_exposition(
                '# TYPE x gauge\nx{p="a\\\\b\\"c\\nd"} 1\n'
            )
        )
        assert parse_exposition(text)["x"].samples[0].labels["p"] == 'a\\b"c\nd'

    def test_float_values_preserved(self):
        text = render_families(parse_exposition("# TYPE y gauge\ny 0.125\n"))
        assert "y 0.125" in text


class TestFederate:
    def test_labels_scrapes_by_shard_and_replica(self):
        text, problems = federate(
            [
                ({"shard": "0", "replica": "0"}, SHARD_SCRAPE),
                ({"shard": "1", "replica": "0"}, SHARD_SCRAPE),
            ],
            base=ROUTER_SCRAPE,
        )
        assert problems == []
        assert validate(text) == []
        families = parse_exposition(text)
        samples = families["repro_requests_total"].samples
        assert {s.labels["shard"] for s in samples} == {"0", "1"}
        # Router-local series carry no federation labels.
        (local,) = families["repro_cluster_shards"].samples
        assert local.labels == {}

    def test_federation_labels_win_and_rename_collisions(self):
        # honor_labels: false — the federator knows which target it
        # scraped; a self-reported colliding label moves to exported_*.
        scrape = '# TYPE t counter\nt{shard="self-reported"} 1\n'
        text, problems = federate([({"shard": "3"}, scrape)])
        assert problems == []
        (sample,) = parse_exposition(text)["t"].samples
        assert sample.labels["shard"] == "3"
        assert sample.labels["exported_shard"] == "self-reported"

    def test_identical_collision_is_not_renamed(self):
        scrape = '# TYPE t counter\nt{shard="3"} 1\n'
        text, problems = federate([({"shard": "3"}, scrape)])
        assert problems == []
        (sample,) = parse_exposition(text)["t"].samples
        assert sample.labels == {"shard": "3"}

    def test_sick_scrape_degrades_to_problem(self):
        text, problems = federate(
            [
                ({"shard": "0", "replica": "0"}, SHARD_SCRAPE),
                ({"shard": "1", "replica": "1"}, "<html>502 Bad Gateway</html>"),
            ]
        )
        assert len(problems) == 1
        assert "shard=1" in problems[0]
        # The healthy shard still federates.
        assert "repro_kernel_calls_total" in parse_exposition(text)

    def test_histograms_stay_valid_per_replica(self):
        text, problems = federate(
            [
                ({"shard": "0", "replica": str(r)}, SHARD_SCRAPE)
                for r in range(2)
            ]
        )
        assert problems == []
        assert validate(text) == []
