"""Observability over HTTP: trace-ID round-trip, ``/metrics`` scrape
validation, ``/debug/vars`` and the ``/healthz`` storage block."""

import json
import urllib.request

import pytest

from repro.core import compute_baseline
from repro.service import QueryEngine, start_server

from tests.conftest import make_random_space
from tests.exposition import parse_exposition, validate


@pytest.fixture(scope="module")
def served():
    space = make_random_space(25, seed=71)
    result = compute_baseline(space, collect_partial_dimensions=True)
    engine = QueryEngine(
        result,
        space,
        storage_info=lambda: {"segments": 3, "wal_records": 1, "last_repair": None},
    )
    server = start_server(engine)
    host, port = server.server_address
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def fetch(base: str, path: str, headers: dict | None = None):
    request = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


class TestTraceIds:
    def test_response_carries_trace_id(self, served):
        status, headers, _ = fetch(served, "/healthz")
        assert status == 200
        assert len(headers["X-Trace-Id"]) == 32
        int(headers["X-Trace-Id"], 16)

    def test_request_trace_id_round_trips(self, served):
        sent = "0123456789abcdef0123456789abcdef"
        _, headers, _ = fetch(served, "/healthz", {"X-Trace-Id": sent})
        assert headers["X-Trace-Id"] == sent

    def test_fresh_id_per_request(self, served):
        _, first, _ = fetch(served, "/healthz")
        _, second, _ = fetch(served, "/healthz")
        assert first["X-Trace-Id"] != second["X-Trace-Id"]


class TestMetricsScrape:
    def test_scrape_is_valid_exposition(self, served):
        fetch(served, "/healthz")  # ensure at least one observed request
        status, headers, body = fetch(served, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        problems = validate(
            text,
            require=(
                "repro_requests_total",
                "repro_request_latency_seconds",
                "repro_build_info",
                "repro_process_uptime_seconds",
                "repro_cache_hits_total",
                "repro_index_generation",
            ),
            min_series=15,
        )
        assert problems == []

    def test_cross_layer_series_present(self, served):
        """The scrape covers every instrumented layer, not just HTTP."""
        _, _, body = fetch(served, "/metrics")
        families = set(parse_exposition(body.decode("utf-8")))
        for name in (
            "repro_kernel_calls_total",
            "repro_kernel_pairs_total",
            "repro_cubemask_runs_total",
            "repro_runner_runs_total",
            "repro_parallel_units_total",
            "repro_storage_segment_loads_total",
            "repro_wal_appends_total",
        ):
            assert name in families, name

    def test_no_duplicate_series(self, served):
        _, _, body = fetch(served, "/metrics")
        text = body.decode("utf-8")
        samples = [
            line.split(" ")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(samples) == len(set(samples))


class TestDebugVars:
    def test_debug_vars_payload(self, served):
        fetch(served, "/stats")  # make sure a span exists
        status, headers, body = fetch(served, "/debug/vars")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert set(payload) == {
            "metrics",
            "top_spans",
            "recent_spans",
            "spanstore",
            "slow_query_log",
            "profiler",
        }
        assert payload["spanstore"]["spans"] >= 1
        assert "repro_build_info" in payload["metrics"]
        names = {row["span"] for row in payload["top_spans"]}
        assert "http.request" in names
        for row in payload["recent_spans"]:
            assert {"span", "trace_id", "span_id", "duration_ns"} <= set(row)


class TestDebugTrace:
    def test_trace_endpoint_returns_request_spans(self, served):
        sent = "feedfacefeedfacefeedfacefeedface"
        fetch(served, "/stats", {"X-Trace-Id": sent})
        status, headers, body = fetch(served, f"/debug/trace/{sent}")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["trace_id"] == sent
        assert payload["count"] == len(payload["spans"]) >= 1
        span = payload["spans"][0]
        assert span["span"] == "http.request"
        assert span["trace_id"] == sent
        assert span["fields"]["endpoint"] == "stats"
        assert span["fields"]["role"] == "serve"

    def test_unknown_trace_is_empty(self, served):
        _, _, body = fetch(served, "/debug/trace/" + "a" * 32)
        assert json.loads(body)["spans"] == []


class TestDebugProfile:
    def test_collapsed_text(self, served):
        status, headers, body = fetch(served, "/debug/profile")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")

    def test_json_shape(self, served):
        _, _, body = fetch(served, "/debug/profile?format=json")
        payload = json.loads(body)
        assert payload["running"] is True
        assert "hottest" in payload


class TestHealthzStorage:
    def test_storage_block_from_storage_info(self, served):
        _, _, body = fetch(served, "/healthz")
        payload = json.loads(body)
        assert payload["storage"] == {
            "segments": 3,
            "wal_records": 1,
            "last_repair": None,
        }
