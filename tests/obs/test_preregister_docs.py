"""The boot registry and docs/observability.md must not drift apart.

`preregister()` promises that a freshly-booted server's very first
scrape shows every family in the documented catalogue (zero-valued);
this test parses the catalogue tables out of the markdown and checks
both directions for the families the telemetry layer owns.
"""

import re
from pathlib import Path

import repro.obs as obs
from repro.obs.registry import get_registry

DOC = Path(__file__).resolve().parents[2] / "docs" / "observability.md"

#: Families documented under this source live on a per-server private
#: registry (see ServiceMetrics), not the process-wide one.
PRIVATE_SOURCE = "service.metrics"


def documented_families() -> set[str]:
    names: set[str] = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if not line.startswith("| `repro_"):
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        match = re.match(r"`(repro_[a-z0-9_]+)[`{]", cells[0])
        if match is None:
            continue  # wildcard rows like `repro_cache_*`
        if len(cells) > 2 and PRIVATE_SOURCE in cells[2]:
            continue
        names.add(match.group(1))
    return names


def boot_families() -> set[str]:
    obs.preregister()
    return {
        line.split()[2]
        for line in get_registry().render().splitlines()
        if line.startswith("# TYPE ")
    }


class TestCatalogueSync:
    def test_doc_parses_a_real_catalogue(self):
        documented = documented_families()
        assert len(documented) > 60
        assert "repro_kernel_calls_total" in documented
        assert "repro_cluster_federated_scrapes_total" in documented
        assert "repro_obs_spans_recorded_total" in documented

    def test_every_documented_family_preregistered(self):
        missing = documented_families() - boot_families()
        assert not missing, f"documented but absent from the boot scrape: {sorted(missing)}"

    def test_new_subsystem_families_documented(self):
        """Every repro_stream_*/repro_cluster_*/repro_obs_* family the
        boot registry exposes must appear in the catalogue."""
        owned = {
            name
            for name in boot_families()
            if name.startswith(("repro_stream_", "repro_cluster_", "repro_obs_"))
        }
        assert owned, "preregister exposed no stream/cluster/obs families"
        undocumented = owned - documented_families()
        assert not undocumented, f"in the boot scrape but not documented: {sorted(undocumented)}"
