"""Sampling wall-clock profiler."""

import time

from repro.obs.profile import SamplingProfiler


def _spin(deadline: float) -> None:
    while time.perf_counter() < deadline:
        sum(i * i for i in range(200))


class TestSamplingProfiler:
    def test_captures_hot_function(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _spin(time.perf_counter() + 0.15)
        assert profiler.samples > 10
        assert profiler.elapsed >= 0.1
        data = profiler.as_dict(limit=10)
        names = [row["function"] for row in data["rows"]]
        assert any("_spin" in name or "<genexpr>" in name for name in names)

    def test_report_is_a_table(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            _spin(time.perf_counter() + 0.05)
        report = profiler.report(limit=5)
        assert "self%" in report
        assert "samples" in report

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval=0.001).start()
        profiler.stop()
        profiler.stop()
        assert profiler.samples >= 0

    def test_zero_work_profile(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        profiler.stop()
        data = profiler.as_dict()
        assert data["samples"] == profiler.samples
