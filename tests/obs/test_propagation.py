"""Trace-ID propagation into the shared-memory pool fan-out, and the
exposition validator's command-line entry point."""

from repro.core.parallel import build_cubemask_state, prepare_shared_fanout
from repro.obs.tracing import bind_trace, trace

from tests.conftest import make_random_space
from tests.exposition import main as exposition_main


class TestWorkerPropagation:
    def test_fanout_meta_carries_trace_id(self):
        """Worker initializer metadata ships the parent's trace ID, so
        worker-side spans join the same trace."""
        space = make_random_space(40, seed=13)
        state = build_cubemask_state(space, ("full",))
        with bind_trace("beefbeefbeefbeefbeefbeefbeefbeef"):
            segment, meta = prepare_shared_fanout(state)
        try:
            assert meta["trace_id"] == "beefbeefbeefbeefbeefbeefbeefbeef"
        finally:
            segment.close()
            segment.unlink()

    def test_fanout_meta_without_trace(self):
        space = make_random_space(40, seed=13)
        state = build_cubemask_state(space, ("full",))
        segment, meta = prepare_shared_fanout(state)
        try:
            assert meta["trace_id"] is None
            assert meta["parent_span_id"] is None
        finally:
            segment.close()
            segment.unlink()

    def test_fanout_meta_carries_parent_span_id(self):
        """Worker spans must parent onto the span open at fan-out time,
        so `repro trace --dir` renders one tree across processes."""
        space = make_random_space(40, seed=13)
        state = build_cubemask_state(space, ("full",))
        with trace("parallel.compute") as span:
            segment, meta = prepare_shared_fanout(state)
        try:
            assert meta["parent_span_id"] == span.span_id
        finally:
            segment.close()
            segment.unlink()

    def test_fanout_meta_carries_span_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPAN_DIR", str(tmp_path))
        space = make_random_space(40, seed=13)
        state = build_cubemask_state(space, ("full",))
        segment, meta = prepare_shared_fanout(state)
        try:
            assert meta["span_dir"] == str(tmp_path)
        finally:
            segment.close()
            segment.unlink()


class TestExpositionCli:
    def test_valid_payload_passes(self, tmp_path, capsys):
        payload = (
            "# HELP x_total X.\n# TYPE x_total counter\nx_total 3\n"
        )
        path = tmp_path / "metrics.txt"
        path.write_text(payload)
        code = exposition_main([str(path), "--require", "x_total"])
        assert code == 0
        assert "exposition OK" in capsys.readouterr().out

    def test_missing_requirement_fails(self, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        path.write_text("# TYPE a gauge\na 1\n")
        code = exposition_main([str(path), "--require", "missing_total"])
        assert code == 1
        assert "missing" in capsys.readouterr().err

    def test_min_series_enforced(self, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        path.write_text("# TYPE a gauge\na 1\n")
        code = exposition_main([str(path), "--min-series", "5"])
        assert code == 1

    def test_untyped_sample_rejected(self, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        path.write_text("orphan_total 3\n")
        code = exposition_main([str(path)])
        assert code == 1
        assert "no preceding # TYPE" in capsys.readouterr().err
