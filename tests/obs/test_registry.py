"""MetricsRegistry primitives: rendering, escaping, histograms."""

import math
import threading

import pytest

from repro.obs.registry import (
    MetricsRegistry,
    escape_label_value,
    format_value,
    get_registry,
    install_standard_metrics,
)

from tests.exposition import parse_exposition, validate


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestFormatting:
    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("plain") == "plain"

    def test_escaped_labels_round_trip_through_parser(self, registry):
        counter = registry.counter("evil_total", "Evil.", labelnames=("path",))
        nasty = 'C:\\tmp\\"x"\nend'
        counter.inc(path=nasty)
        families = parse_exposition(registry.render())
        (sample,) = families["evil_total"].samples
        assert sample.labels["path"] == nasty

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"


class TestCounterGauge:
    def test_counter_basics(self, registry):
        counter = registry.counter("c_total", "C.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_is_idempotent(self, registry):
        a = registry.counter("same_total", "First.")
        b = registry.counter("same_total", "Second.")
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("thing_total", "X.")
        with pytest.raises(ValueError):
            registry.gauge("thing_total", "X.")
        registry.counter("lab_total", "X.", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("lab_total", "X.", labelnames=("b",))

    def test_labelled_counter_items(self, registry):
        counter = registry.counter("l_total", "L.", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.items() == [({"kind": "a"}, 1.0), ({"kind": "b"}, 2.0)]
        assert counter.total() == 3.0

    def test_gauge_set_and_function(self, registry):
        gauge = registry.gauge("g", "G.")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value() == 3
        gauge.set_function(lambda: 42.0)
        assert "g 42" in registry.render()


class TestHistogram:
    def test_buckets_cumulative_with_inf(self, registry):
        histogram = registry.histogram("h", "H.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render()
        families = parse_exposition(text)
        buckets = {
            sample.labels["le"]: sample.value
            for sample in families["h"].samples
            if sample.name == "h_bucket"
        }
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
        counts = {
            sample.name: sample.value
            for sample in families["h"].samples
            if sample.name in ("h_sum", "h_count")
        }
        assert counts["h_count"] == 3.0
        assert counts["h_sum"] == pytest.approx(5.55)
        assert validate(text) == []

    def test_labelled_histogram(self, registry):
        histogram = registry.histogram(
            "lat", "L.", buckets=(1.0,), labelnames=("endpoint",)
        )
        histogram.observe(0.5, endpoint="query")
        histogram.observe(2.0, endpoint="query")
        assert histogram.count(endpoint="query") == 2
        assert validate(registry.render()) == []


class TestRegistry:
    def test_render_is_valid_exposition(self, registry):
        registry.counter("a_total", "A.").inc()
        registry.gauge("b", "B.").set(1)
        registry.histogram("c", "C.").observe(0.1)
        text = registry.render()
        assert text.endswith("\n")
        assert validate(text, require=("a_total", "b", "c")) == []

    def test_snapshot_shapes(self, registry):
        registry.counter("u_total", "U.").inc(4)
        labelled = registry.counter("v_total", "V.", labelnames=("k",))
        labelled.inc(k="x")
        snapshot = registry.snapshot()
        assert snapshot["u_total"]["value"] == 4
        assert snapshot["v_total"]["series"] == {"k=x": 1.0}

    def test_reset(self, registry):
        registry.counter("r_total", "R.").inc()
        registry.reset()
        assert registry.counter("r_total", "R.").value() == 0

    def test_standard_metrics(self, registry):
        install_standard_metrics(registry)
        text = registry.render()
        assert "repro_build_info" in text
        assert "repro_process_uptime_seconds" in text
        assert validate(text, require=("repro_build_info",)) == []

    def test_global_registry_has_build_info(self):
        assert "repro_build_info" in get_registry().names()


class TestConcurrency:
    def test_hammer(self, registry):
        """Many threads incrementing shared metrics lose no updates."""
        counter = registry.counter("hammer_total", "H.", labelnames=("worker",))
        histogram = registry.histogram("hammer_lat", "H.", buckets=(0.5,))
        rounds, threads = 200, 8

        def work(ident: int) -> None:
            for _ in range(rounds):
                counter.inc(worker=str(ident % 4))
                histogram.observe(0.25)
                registry.render()  # readers interleave with writers

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.total() == rounds * threads
        assert histogram.count() == rounds * threads
        assert validate(registry.render()) == []
