"""The slow-query log: threshold gating, record schema, contextvar
annotations and rotation."""

import json

import pytest

from repro.obs.slowlog import (
    SlowQueryLog,
    annotate,
    begin_request,
    end_request,
    get_slow_log,
    install_slow_log,
    request_annotations,
    uninstall_slow_log,
)


@pytest.fixture
def log(tmp_path):
    return SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=50.0)


class TestThreshold:
    def test_fast_requests_not_recorded(self, log):
        assert log.maybe_record("contained", 0.010, status=200) is None
        assert not log.path.exists()

    def test_slow_requests_recorded(self, log):
        record = log.maybe_record(
            "contained", 0.2, status=200, trace_id="t" * 32, span_id="s" * 16
        )
        assert record is not None
        lines = log.path.read_text().splitlines()
        assert len(lines) == 1
        on_disk = json.loads(lines[0])
        assert on_disk["event"] == "slow_query"
        assert on_disk["endpoint"] == "contained"
        assert on_disk["status"] == 200
        assert on_disk["trace_id"] == "t" * 32
        assert on_disk["span_id"] == "s" * 16
        assert on_disk["duration_ms"] == 200.0
        assert on_disk["threshold_ms"] == 50.0
        assert isinstance(on_disk["ts"], float)

    def test_none_fields_omitted(self, log):
        record = log.maybe_record("x", 0.1, status=200, deadline_ms=None)
        assert "deadline_ms" not in record


class TestAnnotations:
    def test_annotations_merge_into_record(self, log):
        token = begin_request()
        try:
            annotate(cache="miss")
            annotate(fanout=4)
            record = log.maybe_record("related", 0.1, status=200)
        finally:
            end_request(token)
        assert record["cache"] == "miss"
        assert record["fanout"] == 4

    def test_annotate_is_noop_outside_request(self):
        annotate(cache="hit")  # must not raise
        assert request_annotations() == {}

    def test_explicit_fields_win_over_annotations(self, log):
        token = begin_request()
        try:
            annotate(role="annotated")
            record = log.maybe_record("x", 0.1, role="explicit")
        finally:
            end_request(token)
        assert record["role"] == "explicit"

    def test_kernel_counters_snapshotted(self, log):
        from repro.core.kernels import _registry_counters

        _registry_counters()  # force-register the kernel families
        record = log.maybe_record("x", 0.1)
        assert "kernel_calls" in record and "kernel_pairs" in record


class TestRotation:
    def test_rotates_at_max_records(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=0.0, max_records=5)
        for i in range(12):
            log.maybe_record(f"e{i}", 0.001)
        log.close()
        assert len((tmp_path / "slow.jsonl.1").read_text().splitlines()) == 5
        assert len((tmp_path / "slow.jsonl").read_text().splitlines()) == 2

    def test_stats(self, log):
        log.maybe_record("x", 0.1)
        stats = log.stats()
        assert stats["recorded_total"] == 1
        assert stats["threshold_ms"] == 50.0


class TestProcessLog:
    @pytest.fixture(autouse=True)
    def fresh(self):
        uninstall_slow_log()
        yield
        uninstall_slow_log()

    def test_install_is_get_or_create(self, tmp_path):
        first = install_slow_log(tmp_path / "a.jsonl", threshold_ms=1.0)
        second = install_slow_log(tmp_path / "b.jsonl")
        assert first is second is get_slow_log()
        assert first.threshold_ms == 1.0

    def test_uninstalled_means_none(self):
        assert get_slow_log() is None


class TestServerIntegration:
    """A live server with a zero threshold records every request."""

    @pytest.fixture(autouse=True)
    def fresh(self):
        uninstall_slow_log()
        yield
        uninstall_slow_log()

    def test_served_requests_land_in_the_log(self, tmp_path):
        import urllib.request

        from repro.core import compute_baseline
        from repro.service import QueryEngine, start_server

        from tests.conftest import make_random_space

        space = make_random_space(15, seed=3)
        engine = QueryEngine(compute_baseline(space), space)
        path = tmp_path / "slow.jsonl"
        server = start_server(engine, slow_log_path=path, slow_query_ms=0.0)
        host, port = server.server_address
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/stats",
                headers={"X-Trace-Id": "ab" * 16, "X-Deadline-Ms": "9000"},
            )
            urllib.request.urlopen(request).read()
        finally:
            server.shutdown()
            server.server_close()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        stats = [r for r in records if r["endpoint"] == "stats"]
        assert len(stats) == 1
        record = stats[0]
        assert record["event"] == "slow_query"
        assert record["trace_id"] == "ab" * 16
        assert record["status"] == 200
        assert record["role"] == "serve"
        assert record["deadline_ms"] == "9000"
        assert record["duration_ms"] >= 0.0
        assert len(record["span_id"]) == 16
