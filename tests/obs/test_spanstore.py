"""The span store: bounded ring, JSONL ring persistence, offline
reads, trace assembly and rendering."""

import json

import pytest

from repro.obs.spanstore import (
    SpanStore,
    assemble_trace,
    get_span_store,
    install_span_store,
    read_span_files,
    render_trace,
    uninstall_span_store,
)
from repro.obs.tracing import bind_trace, trace


def span(span_id, parent_id=None, trace_id="t1", name="work", start=0.0, ns=1_000_000, **fields):
    return {
        "span": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start": start,
        "duration_ns": ns,
        "error": None,
        "fields": fields,
    }


class TestRing:
    def test_ring_is_bounded(self):
        store = SpanStore(max_records=10)
        for i in range(25):
            store.record(span(f"s{i}", start=float(i)))
        assert store.stats()["spans"] == 10
        assert store.stats()["recorded_total"] == 25
        # Oldest records were evicted, newest survive.
        assert store.recent(100)[0]["span_id"] == "s15"

    def test_spans_for_filters_by_trace(self):
        store = SpanStore()
        store.record(span("a", trace_id="one"))
        store.record(span("b", trace_id="two"))
        store.record(span("c", trace_id="one"))
        assert [r["span_id"] for r in store.spans_for("one")] == ["a", "c"]
        assert store.spans_for("nope") == []

    def test_trace_ids_newest_first_dedup(self):
        store = SpanStore()
        for tid in ("one", "two", "one", "three"):
            store.record(span(f"s-{tid}", trace_id=tid))
        assert store.trace_ids() == ["three", "one", "two"]


class TestPersistence:
    def test_writes_per_pid_jsonl(self, tmp_path):
        store = SpanStore(path=tmp_path)
        store.record(span("a"))
        store.record(span("b"))
        store.close()
        files = list(tmp_path.glob("spans-*.jsonl"))
        assert len(files) == 1
        lines = files[0].read_text().splitlines()
        assert [json.loads(line)["span_id"] for line in lines] == ["a", "b"]

    def test_two_file_rotation_bounds_disk(self, tmp_path):
        store = SpanStore(path=tmp_path, max_records=5)
        for i in range(12):
            store.record(span(f"s{i}"))
        store.close()
        current = list(tmp_path.glob("spans-*.jsonl"))
        rotated = list(tmp_path.glob("spans-*.jsonl.1"))
        assert len(current) == 1 and len(rotated) == 1
        # Rotated ring holds a full window, current holds the remainder.
        assert len(rotated[0].read_text().splitlines()) == 5
        assert len(current[0].read_text().splitlines()) == 2

    def test_read_span_files_skips_torn_lines(self, tmp_path):
        ring = tmp_path / "spans-123.jsonl"
        ring.write_text(
            json.dumps(span("good")) + "\n" + '{"torn": \n' + json.dumps(span("also")) + "\n"
        )
        records = read_span_files(tmp_path)
        assert [r["span_id"] for r in records] == ["good", "also"]

    def test_read_span_files_filters_trace(self, tmp_path):
        ring = tmp_path / "spans-9.jsonl"
        ring.write_text(
            json.dumps(span("a", trace_id="keep"))
            + "\n"
            + json.dumps(span("b", trace_id="drop"))
            + "\n"
        )
        assert [r["span_id"] for r in read_span_files(tmp_path, trace_id="keep")] == ["a"]


class TestProcessStore:
    @pytest.fixture(autouse=True)
    def fresh(self):
        uninstall_span_store()
        yield
        uninstall_span_store()
        install_span_store()  # other test modules expect a live store

    def test_install_hooks_tracer(self):
        store = install_span_store()
        with bind_trace("feed" * 8):
            with trace("unit.work"):
                pass
        assert [r["span"] for r in store.spans_for("feed" * 8)] == ["unit.work"]

    def test_install_is_get_or_create(self, tmp_path):
        first = install_span_store(tmp_path)
        second = install_span_store()
        assert first is second is get_span_store()

    def test_env_dir_honoured(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPAN_DIR", str(tmp_path))
        store = install_span_store()
        store.record(span("from-env"))
        store.close()
        assert list(tmp_path.glob("spans-*.jsonl"))


class TestAssembly:
    def test_tree_is_stitched_by_parent_id(self):
        records = [
            span("root", start=0.0, ns=10_000_000),
            span("kid-b", parent_id="root", start=2.0),
            span("kid-a", parent_id="root", start=1.0),
            span("grandkid", parent_id="kid-a", start=1.5),
        ]
        roots = assemble_trace(records)
        assert len(roots) == 1
        kids = roots[0]["children"]
        assert [k["record"]["span_id"] for k in kids] == ["kid-a", "kid-b"]
        assert kids[0]["children"][0]["record"]["span_id"] == "grandkid"

    def test_duplicates_from_scatter_gather_dedup(self):
        record = span("once")
        assert len(assemble_trace([record, dict(record)])) == 1

    def test_orphans_surface_as_roots(self):
        roots = assemble_trace([span("lost", parent_id="evicted")])
        assert len(roots) == 1
        assert roots[0]["record"]["span_id"] == "lost"

    def test_render_shows_role_budget_and_error(self):
        records = [
            span(
                "root",
                name="router.request",
                ns=50_000_000,
                role="router",
                endpoint="contained",
                deadline_ms=200,
            ),
            span("kid", parent_id="root", name="http.request", start=1.0, role="shard-0"),
        ]
        records[1]["error"] = "boom"
        text = render_trace(records)
        assert "trace t1 — 2 spans" in text
        assert "[router]" in text and "endpoint=contained" in text
        assert "budget=200ms spent=25%" in text
        assert "  http.request" in text  # indented child
        assert "ERROR: boom" in text

    def test_render_empty(self):
        assert render_trace([]) == "(no spans)\n"
