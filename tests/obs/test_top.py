"""`repro top` internals: counter-delta rates, histogram percentile
interpolation and frame rendering — all on synthetic snapshots."""

import io

from repro.obs.exposition import parse_exposition
from repro.obs.top import percentiles, render_frame


def snapshot(ts: float, text: str) -> dict:
    return {"ts": ts, "families": parse_exposition(text), "vars": {}}


def latency_scrape(buckets: dict[str, float], endpoint: str = "contained") -> str:
    lines = [
        "# TYPE repro_request_latency_seconds histogram",
    ]
    total = 0.0
    for le, count in buckets.items():
        total = count
        lines.append(
            "repro_request_latency_seconds_bucket"
            f'{{endpoint="{endpoint}",status="200",le="{le}"}} {count}'
        )
    lines.append(
        f'repro_request_latency_seconds_sum{{endpoint="{endpoint}",status="200"}} 1'
    )
    lines.append(
        f'repro_request_latency_seconds_count{{endpoint="{endpoint}",status="200"}} {total}'
    )
    return "\n".join(lines) + "\n"


class TestPercentiles:
    def test_interpolates_within_bucket(self):
        # 100 observations, all between 0.1 and 0.2: p50 lands mid-bucket.
        curr = snapshot(
            1.0, latency_scrape({"0.1": 0, "0.2": 100, "+Inf": 100})
        )
        pcts = percentiles(None, curr, qs=(0.5,))
        assert abs(pcts[0.5] - 0.15) < 1e-9

    def test_uses_deltas_between_snapshots(self):
        # Cumulative history is slow; the *window* is all fast.  The
        # delta-based percentile must see only the window.
        prev = snapshot(0.0, latency_scrape({"0.01": 0, "1.0": 100, "+Inf": 100}))
        curr = snapshot(
            2.0, latency_scrape({"0.01": 50, "1.0": 150, "+Inf": 150})
        )
        pcts = percentiles(prev, curr, qs=(0.5, 0.99))
        assert pcts[0.5] <= 0.01
        assert pcts[0.99] <= 0.01

    def test_empty_window_is_none(self):
        text = latency_scrape({"0.1": 5, "+Inf": 5})
        pcts = percentiles(snapshot(0.0, text), snapshot(1.0, text))
        assert pcts == {0.5: None, 0.95: None, 0.99: None}

    def test_aggregates_across_label_sets(self):
        text = latency_scrape({"0.1": 10, "+Inf": 10}, endpoint="a") + latency_scrape(
            {"10.0": 10, "+Inf": 10}, endpoint="b"
        )
        pcts = percentiles(None, snapshot(0.0, text), qs=(0.5,))
        assert pcts[0.5] is not None
        where = percentiles(
            None, snapshot(0.0, text), qs=(0.5,), where={"endpoint": "a"}
        )
        assert where[0.5] <= 0.1


SCRAPE_T0 = """\
# TYPE repro_requests_total counter
repro_requests_total{endpoint="contained",status="200"} 100
repro_requests_total{endpoint="related",status="500"} 2
# TYPE repro_request_latency_seconds histogram
repro_request_latency_seconds_bucket{endpoint="contained",status="200",le="0.1"} 90
repro_request_latency_seconds_bucket{endpoint="contained",status="200",le="+Inf"} 100
repro_request_latency_seconds_sum{endpoint="contained",status="200"} 3
repro_request_latency_seconds_count{endpoint="contained",status="200"} 100
# TYPE repro_cache_hit_ratio gauge
repro_cache_hit_ratio 0.75
# TYPE repro_cache_entries gauge
repro_cache_entries 42
# TYPE repro_breaker_state gauge
repro_breaker_state 0
# TYPE repro_cluster_shards gauge
repro_cluster_shards 2
# TYPE repro_cluster_replicas_up gauge
repro_cluster_replicas_up{shard="0"} 2
repro_cluster_replicas_up{shard="1"} 1
"""

SCRAPE_T1 = SCRAPE_T0.replace(
    'repro_requests_total{endpoint="contained",status="200"} 100',
    'repro_requests_total{endpoint="contained",status="200"} 120',
)


class TestRenderFrame:
    def test_first_frame_without_prev(self):
        text = render_frame(None, snapshot(0.0, SCRAPE_T0), "http://x")
        assert "repro top — http://x" in text
        assert "102 total" in text
        assert "cache     hit  75%   entries 42" in text
        assert "breaker   closed" in text
        assert "2 shard(s)" in text
        assert "[s0:2 s1:1]" in text

    def test_qps_from_delta(self):
        prev = snapshot(0.0, SCRAPE_T0)
        curr = snapshot(10.0, SCRAPE_T1)
        text = render_frame(prev, curr, "http://x")
        assert "(window 10.0s)" in text
        assert "qps   2.0" in text

    def test_endpoint_table_sorted_and_errors_counted(self):
        text = render_frame(None, snapshot(0.0, SCRAPE_T0))
        lines = text.splitlines()
        table = [line for line in lines if line.startswith(("contained", "related"))]
        assert len(table) == 2
        assert table[0].startswith("contained")  # busiest first
        assert table[1].split()[3] == "2"  # the 500s count as errors

    def test_counter_reset_clamps_to_zero(self):
        prev = snapshot(0.0, SCRAPE_T1)  # server restarted: counts went down
        curr = snapshot(1.0, SCRAPE_T0)
        assert "qps   0.0" in render_frame(prev, curr)


class TestRunTop:
    def test_iterations_and_unreachable_banner(self):
        from repro.obs.top import run_top

        buf = io.StringIO()
        # Nothing listens on this port: every frame is the banner.
        code = run_top(
            "http://127.0.0.1:9", interval=0.01, iterations=2, out=buf, clear=False
        )
        assert code == 0
        assert buf.getvalue().count("unreachable") == 2
