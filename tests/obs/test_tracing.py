"""Span tracer: nesting, context propagation, recorder, JSONL schema."""

import io
import json

import pytest

from repro.obs.logging import configure_jsonl, remove_handler
from repro.obs.tracing import (
    Span,
    bind_trace,
    current_span,
    current_trace_id,
    new_span_id,
    new_trace_id,
    recorder,
    set_trace_id,
    trace,
)

#: Keys every span JSONL record must carry (the stable schema the
#: docs promise to downstream tooling).
ENVELOPE_KEYS = {"ts", "level", "logger", "event", "trace_id", "span", "fields"}
FIELD_KEYS = {"span_id", "parent_id", "start", "duration_ns"}


class TestIds:
    def test_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)} | {new_span_id() for _ in range(64)}
        assert len(ids) == 128
        for value in ids:
            int(value, 16)


class TestContext:
    def test_bind_trace_mints_and_restores(self):
        assert current_trace_id() is None
        with bind_trace() as trace_id:
            assert current_trace_id() == trace_id
            with bind_trace("feedface") as inner:
                assert inner == "feedface"
                assert current_trace_id() == "feedface"
            assert current_trace_id() == trace_id
        assert current_trace_id() is None

    def test_set_trace_id_for_workers(self):
        token = set_trace_id("cafe01")
        try:
            assert current_trace_id() == "cafe01"
        finally:
            set_trace_id(None)
            assert current_trace_id() is None
        assert token is not None


class TestSpans:
    def test_nesting_links_parent(self):
        with trace("outer") as outer:
            assert current_span() is outer
            with trace("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert current_span() is outer
        assert current_span() is None
        assert outer.finished
        assert outer.duration_ns > 0

    def test_fields_survive_and_grow(self):
        with trace("work", size=3) as span:
            span.fields["extra"] = "yes"
        record = span.to_record()
        assert record["fields"]["size"] == 3
        assert record["fields"]["extra"] == "yes"

    def test_exception_marks_error_and_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            with trace("failing") as span:
                raise RuntimeError("boom")
        assert span.finished
        assert "boom" in span.error

    def test_recorder_sees_spans(self):
        marker = f"recorded-{new_span_id()}"
        with trace(marker):
            pass
        names = [entry["span"] for entry in recorder().recent(limit=10)]
        assert marker in names

    def test_top_spans_ranked_by_time(self):
        spans = recorder().top_spans(limit=5)
        assert len(spans) <= 5
        totals = [entry["total_ns"] for entry in spans]
        assert totals == sorted(totals, reverse=True)


class TestJsonl:
    def test_span_jsonl_schema(self, tmp_path):
        stream = io.StringIO()
        handler = configure_jsonl(stream)
        try:
            with bind_trace() as trace_id:
                with trace("outer", stage="demo"):
                    with trace("inner"):
                        pass
        finally:
            remove_handler(handler)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        spans = [line for line in lines if line["event"] == "span"]
        assert {line["span"] for line in spans} >= {"outer", "inner"}
        for line in spans:
            assert ENVELOPE_KEYS <= set(line)
            assert FIELD_KEYS <= set(line["fields"])
            assert line["trace_id"] == trace_id
        inner = next(line for line in spans if line["span"] == "inner")
        outer = next(line for line in spans if line["span"] == "outer")
        assert inner["fields"]["parent_id"] == outer["fields"]["span_id"]
        assert outer["fields"]["stage"] == "demo"

    def test_no_emission_without_handler(self):
        """Tracing without a JSONL sink stays silent and cheap."""
        with trace("quiet") as span:
            pass
        assert span.finished


class TestSpanRecord:
    def test_manual_span_lifecycle(self):
        span = Span("manual", trace_id="abc")
        assert not span.finished
        span.finish()
        assert span.finished
        record = span.to_record()
        assert record["span"] == "manual"
        assert record["trace_id"] == "abc"
