"""Shared hypothesis strategies: random hierarchies, spaces and graphs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.space import ObservationSpace
from repro.qb.hierarchy import Hierarchy
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef

__all__ = ["hierarchies", "observation_spaces", "simple_graphs", "uri_locals"]

uri_locals = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789",
    min_size=1,
    max_size=8,
)


@st.composite
def hierarchies(draw, min_codes: int = 1, max_codes: int = 12, prefix: str = "h"):
    """A random tree: node i's parent is a previous node (or the root)."""
    count = draw(st.integers(min_value=min_codes, max_value=max_codes))
    root = URIRef(f"http://prop.example/{prefix}/ALL")
    hierarchy = Hierarchy(root)
    nodes = [root]
    for index in range(count):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        node = URIRef(f"http://prop.example/{prefix}/c{index}")
        hierarchy.add(node, parent)
        nodes.append(node)
    return hierarchy


@st.composite
def observation_spaces(draw, max_observations: int = 25, max_dimensions: int = 3):
    """A random observation space over random hierarchies."""
    dimension_count = draw(st.integers(min_value=1, max_value=max_dimensions))
    dims = tuple(URIRef(f"http://prop.example/dim{i}") for i in range(dimension_count))
    hiers = {
        dims[i]: draw(hierarchies(prefix=f"d{i}", max_codes=8)) for i in range(dimension_count)
    }
    space = ObservationSpace(dims, hiers)
    n = draw(st.integers(min_value=0, max_value=max_observations))
    measure_pool = [URIRef(f"http://prop.example/m{i}") for i in range(3)]
    for index in range(n):
        chosen_dims = {}
        for dimension in dims:
            codes = sorted(hiers[dimension], key=str)
            pick = draw(st.integers(min_value=-1, max_value=len(codes) - 1))
            if pick >= 0:
                chosen_dims[dimension] = codes[pick]
        measures = draw(
            st.sets(st.sampled_from(measure_pool), min_size=1, max_size=2)
        )
        space.add(URIRef(f"http://prop.example/o{index}"), URIRef("http://prop.example/ds"), chosen_dims, measures)
    return space


@st.composite
def simple_graphs(draw, max_triples: int = 20):
    """A random RDF graph of URI/literal triples."""
    graph = Graph()
    count = draw(st.integers(min_value=0, max_value=max_triples))
    for _ in range(count):
        s = URIRef("http://prop.example/s/" + draw(uri_locals))
        p = URIRef("http://prop.example/p/" + draw(uri_locals))
        if draw(st.booleans()):
            o = URIRef("http://prop.example/o/" + draw(uri_locals))
        else:
            o = draw(
                st.one_of(
                    st.text(max_size=12).map(Literal),
                    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
                    st.booleans().map(Literal),
                )
            )
        graph.add((s, p, o))
    return graph
