"""Property-based tests for the extension features.

Covers the store round-trip, incremental add/remove consistency, the
streaming baseline's block-size invariance and aggregate evaluation
against a plain-Python reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_baseline, compute_baseline_streaming, remove_observations, update_relationships
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.sparql import query
from repro.sparql.ast import Var
from repro.store import dumps_relationships, loads_relationships

from tests.property.strategies import observation_spaces


@given(observation_spaces(max_observations=15))
@settings(max_examples=20, deadline=None)
def test_store_round_trip(space):
    result = compute_baseline(space, collect_partial_dimensions=True)
    loaded = loads_relationships(dumps_relationships(result))
    assert loaded == result
    assert loaded.degrees == result.degrees
    assert loaded.partial_map == result.partial_map


@given(observation_spaces(max_observations=15), st.integers(min_value=1, max_value=20))
@settings(max_examples=20, deadline=None)
def test_streaming_block_size_invariance(space, block_size):
    full = compute_baseline(space)
    assert compute_baseline_streaming(space, block_size=block_size) == full


@given(observation_spaces(max_observations=14), st.integers(min_value=0, max_value=13))
@settings(max_examples=20, deadline=None)
def test_incremental_add_matches_batch(space, split_at):
    n = len(space)
    if n < 2:
        return
    split = min(split_at, n - 1) or 1
    base = space.select(range(split))
    result = compute_baseline(base)
    arrivals = [
        (r.uri, r.dataset, dict(zip(space.dimensions, r.codes)), r.measures)
        for r in space.observations[split:]
    ]
    update_relationships(base, result, arrivals)
    assert result == compute_baseline(space)


@given(observation_spaces(max_observations=14), st.sets(st.integers(0, 13), max_size=5))
@settings(max_examples=20, deadline=None)
def test_removal_matches_batch(space, victim_indices):
    n = len(space)
    victims = [space.observations[i].uri for i in victim_indices if i < n]
    if not victims:
        return
    result = compute_baseline(space)
    new_space, result = remove_observations(space, result, victims)
    assert result == compute_baseline(new_space)


count_values = st.lists(
    st.tuples(st.integers(0, 4), st.integers(-100, 100)), min_size=0, max_size=25
)


@given(count_values)
@settings(max_examples=40, deadline=None)
def test_aggregates_match_python_reference(pairs):
    graph = Graph()
    groups: dict[int, list[int]] = {}
    pred = URIRef("http://prop.example/value")
    kind = URIRef("http://prop.example/kind")
    for index, (group, value) in enumerate(pairs):
        subject = URIRef(f"http://prop.example/row{index}")
        graph.add((subject, kind, URIRef(f"http://prop.example/g{group}")))
        graph.add((subject, pred, Literal(value)))
        groups.setdefault(group, []).append(value)
    rows = query(
        graph,
        f"SELECT ?g (COUNT(?v) AS ?n) (SUM(?v) AS ?sum) (MIN(?v) AS ?low) (MAX(?v) AS ?high) "
        f"{{ ?s <{kind}> ?g ; <{pred}> ?v }} GROUP BY ?g",
    )
    got = {
        row[Var("g")].local_name(): (
            row[Var("n")].to_python(),
            row[Var("sum")].to_python(),
            row[Var("low")].to_python(),
            row[Var("high")].to_python(),
        )
        for row in rows
    }
    expected = {
        f"g{group}": (len(vals), sum(vals), min(vals), max(vals))
        for group, vals in groups.items()
    }
    assert got == expected
