"""Property-based tests for hierarchy invariants (Definition 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property.strategies import hierarchies


@given(hierarchies())
def test_ancestry_reflexive(hierarchy):
    for code in hierarchy:
        assert hierarchy.is_ancestor(code, code)


@given(hierarchies())
def test_root_is_universal_ancestor(hierarchy):
    for code in hierarchy:
        assert hierarchy.is_ancestor(hierarchy.root, code)


@given(hierarchies(max_codes=10))
def test_ancestry_transitive(hierarchy):
    codes = list(hierarchy)
    for a in codes:
        for b in codes:
            if not hierarchy.is_ancestor(a, b):
                continue
            for c in codes:
                if hierarchy.is_ancestor(b, c):
                    assert hierarchy.is_ancestor(a, c)


@given(hierarchies(max_codes=10))
def test_ancestry_antisymmetric(hierarchy):
    codes = list(hierarchy)
    for a in codes:
        for b in codes:
            if a != b and hierarchy.is_ancestor(a, b):
                assert not hierarchy.is_ancestor(b, a)


@given(hierarchies())
def test_level_equals_path_length(hierarchy):
    for code in hierarchy:
        assert hierarchy.level(code) == len(hierarchy.path_to_root(code)) - 1


@given(hierarchies())
def test_ancestors_equal_path_to_root(hierarchy):
    for code in hierarchy:
        assert hierarchy.ancestors(code) == frozenset(hierarchy.path_to_root(code))


@given(hierarchies(max_codes=10))
def test_descendants_inverse_of_ancestors(hierarchy):
    codes = list(hierarchy)
    for a in codes:
        for b in codes:
            assert (b in hierarchy.descendants(a)) == (a in hierarchy.ancestors(b))


@given(hierarchies())
def test_levels_partition_codes(hierarchy):
    total = sum(len(hierarchy.codes_at_level(level)) for level in range(hierarchy.max_level + 1))
    assert total == len(hierarchy)


@given(hierarchies())
def test_children_parent_consistency(hierarchy):
    for code in hierarchy:
        for child in hierarchy.children(code):
            assert hierarchy.parent(child) == code


@given(hierarchies(max_codes=8, prefix="left"), hierarchies(max_codes=8, prefix="right"))
def test_merge_contains_both(h1, h2):
    # Rebuild h2 under h1's root (merge requires a shared root); the
    # two strategies use distinct URI prefixes so codes never clash.
    from repro.qb.hierarchy import Hierarchy

    rebased = Hierarchy(h1.root)
    mapping = {h2.root: h1.root}
    for code in sorted(h2, key=lambda c: h2.level(c)):
        if code == h2.root:
            continue
        parent = h2.parent(code)
        rebased.add(code, mapping.get(parent, parent))
        mapping[code] = code
    merged = h1.merge(rebased)
    for code in h1:
        assert code in merged
    for code in rebased:
        assert code in merged
