"""Property-based equivalence: vectorised kernels vs the Python path.

Hypothesis drives random spaces (random hierarchies, missing
dimensions, 0..N observations) through the numpy kernel, the pure
Python cubeMasking path and the baseline, asserting identical
``RelationshipSet``s — including degrees and partial-dimension maps —
and identical pruning statistics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_baseline, compute_cubemask, update_relationships
from repro.core.cubemask import STAT_KEYS

from tests.property.strategies import observation_spaces


@given(observation_spaces(max_observations=18), st.booleans(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_kernel_matches_python_and_baseline(space, prefetch, collect_dims):
    baseline = compute_baseline(space, collect_partial_dimensions=collect_dims)
    python_stats, numpy_stats = {}, {}
    python_result = compute_cubemask(
        space,
        prefetch_children=prefetch,
        collect_partial_dimensions=collect_dims,
        kernel="python",
        stats=python_stats,
    )
    numpy_result = compute_cubemask(
        space,
        prefetch_children=prefetch,
        collect_partial_dimensions=collect_dims,
        kernel="numpy",
        stats=numpy_stats,
    )
    assert python_result == baseline
    assert numpy_result == baseline
    assert numpy_result.degrees == baseline.degrees
    if collect_dims:
        assert numpy_result.partial_map == baseline.partial_map
    for key in STAT_KEYS:
        if key.startswith("kernel_"):
            continue  # path-specific by design
        assert python_stats[key] == numpy_stats[key]


@given(observation_spaces(max_observations=14), st.integers(min_value=1, max_value=13))
@settings(max_examples=15, deadline=None)
def test_incremental_kernel_matches_python(space, split_at):
    n = len(space)
    if n < 2:
        return
    split = min(split_at, n - 1)
    base_py = space.select(range(split))
    base_np = space.select(range(split))
    arrivals = [
        (r.uri, r.dataset, dict(zip(space.dimensions, r.codes)), r.measures)
        for r in space.observations[split:]
    ]
    result_py = compute_baseline(base_py, collect_partial_dimensions=True)
    result_np = compute_baseline(base_np, collect_partial_dimensions=True)
    update_relationships(base_py, result_py, arrivals, kernel="python")
    update_relationships(base_np, result_np, arrivals, kernel="numpy", kernel_threshold=0)
    assert result_np == result_py
    assert result_np.degrees == result_py.degrees
    assert result_np.partial_map == result_py.partial_map
