"""Property-based equivalence: vectorised kernels vs the Python path.

Hypothesis drives random spaces (random hierarchies, missing
dimensions, 0..N observations) through the numpy kernel, the pure
Python cubeMasking path, the parallel fan-out's scoring path and the
baseline, asserting identical ``RelationshipSet``s — including
degrees and partial-dimension maps — and identical pruning
statistics.  Chunk/tile boundaries and single-pair work units are
swept explicitly: a block split at every possible boundary must
produce the same partial results and dimension masks as one
monolithic evaluation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_baseline, compute_cubemask, update_relationships
from repro.core.cubemask import STAT_KEYS
from repro.core.kernels import build_kernel_plan, evaluate_pair_block
from repro.core.parallel import build_cubemask_state, enumerate_unit_ranges, score_range
from repro.core.results import RelationshipSet

from tests.property.strategies import observation_spaces


@given(observation_spaces(max_observations=18), st.booleans(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_kernel_matches_python_and_baseline(space, prefetch, collect_dims):
    baseline = compute_baseline(space, collect_partial_dimensions=collect_dims)
    python_stats, numpy_stats = {}, {}
    python_result = compute_cubemask(
        space,
        prefetch_children=prefetch,
        collect_partial_dimensions=collect_dims,
        kernel="python",
        stats=python_stats,
    )
    numpy_result = compute_cubemask(
        space,
        prefetch_children=prefetch,
        collect_partial_dimensions=collect_dims,
        kernel="numpy",
        stats=numpy_stats,
    )
    assert python_result == baseline
    assert numpy_result == baseline
    assert numpy_result.degrees == baseline.degrees
    if collect_dims:
        assert numpy_result.partial_map == baseline.partial_map
    for key in STAT_KEYS:
        if key.startswith("kernel_"):
            continue  # path-specific by design
        assert python_stats[key] == numpy_stats[key]


@given(
    observation_spaces(max_observations=16),
    st.booleans(),
    st.sampled_from([1, 3, 10_000]),
)
@settings(max_examples=20, deadline=None)
def test_parallel_scoring_matches_python(space, collect_dims, unit_size):
    """The parallel fan-out's scoring path (shared state + columnar
    worker payloads) agrees with the pure-Python path on partial
    results *and* ``partial_dim_masks`` — including ``unit_size=1``
    single-cube-pair payloads and one monolithic range."""
    targets = ("complementary", "full", "partial")
    expected = compute_cubemask(
        space,
        targets=targets,
        kernel="python",
        collect_partial_dimensions=collect_dims,
    )
    state = build_cubemask_state(
        space,
        targets,
        kernel="numpy",
        kernel_threshold=0,
        collect_partial_dimensions=collect_dims,
    )
    result = RelationshipSet()
    for _, start, stop in enumerate_unit_ranges(len(state["pairs"]), unit_size):
        result.merge(score_range(state, start, stop))
    assert result == expected
    assert result.degrees == expected.degrees
    if collect_dims:
        assert result.partial_map == expected.partial_map


@given(
    observation_spaces(max_observations=16),
    st.sampled_from([1, 2, 7]),
    st.sampled_from([1, 5, 1 << 20]),
)
@settings(max_examples=20, deadline=None)
def test_pair_block_chunk_and_tile_invariance(space, chunk, tile_pairs):
    """Chunk and tile boundaries never change the kernel's output:
    the bitset pass split into 1-row chunks / tiny tiles matches one
    unsplit evaluation pairwise, masks included."""
    if len(space) < 2 or not space.dimensions:
        return
    plan = build_kernel_plan(space, collect_partial_dimensions=True)
    rows = np.arange(len(space), dtype=np.int64)

    def snapshot(block):
        return (
            sorted(zip(block.full_a.tolist(), block.full_b.tolist())),
            sorted(zip(block.compl_a.tolist(), block.compl_b.tolist())),
            sorted(
                zip(
                    block.partial_a.tolist(),
                    block.partial_b.tolist(),
                    block.partial_counts.tolist(),
                    block.partial_masks.tolist(),
                )
            ),
        )

    reference = evaluate_pair_block(
        plan, rows, rows, same_cube=True, collect_partial_dimensions=True
    )
    split = evaluate_pair_block(
        plan,
        rows,
        rows,
        same_cube=True,
        collect_partial_dimensions=True,
        chunk=chunk,
        tile_pairs=tile_pairs,
    )
    assert snapshot(split) == snapshot(reference)


@given(observation_spaces(max_observations=14), st.integers(min_value=1, max_value=13))
@settings(max_examples=15, deadline=None)
def test_incremental_kernel_matches_python(space, split_at):
    n = len(space)
    if n < 2:
        return
    split = min(split_at, n - 1)
    base_py = space.select(range(split))
    base_np = space.select(range(split))
    arrivals = [
        (r.uri, r.dataset, dict(zip(space.dimensions, r.codes)), r.measures)
        for r in space.observations[split:]
    ]
    result_py = compute_baseline(base_py, collect_partial_dimensions=True)
    result_np = compute_baseline(base_np, collect_partial_dimensions=True)
    update_relationships(base_py, result_py, arrivals, kernel="python")
    update_relationships(base_np, result_np, arrivals, kernel="numpy", kernel_threshold=0)
    assert result_np == result_py
    assert result_np.degrees == result_py.degrees
    assert result_np.partial_map == result_py.partial_map
