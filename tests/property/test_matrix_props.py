"""Property-based tests for the occurrence matrix."""

import numpy as np
from hypothesis import given, settings

from repro.core.matrix import OccurrenceMatrix

from tests.property.strategies import observation_spaces


@given(observation_spaces(max_observations=15))
@settings(max_examples=25, deadline=None)
def test_row_bit_count_equals_path_lengths(space):
    """Each dimension block has exactly level+1 bits set (the reflexive
    ancestor chain of the observation's code)."""
    matrix = OccurrenceMatrix(space)
    dense, columns = matrix.dense()
    for record in space.observations:
        for position, dimension in enumerate(space.dimensions):
            hierarchy = space.hierarchies[dimension]
            code = record.codes[position]
            block_bits = sum(
                int(dense[record.index, i])
                for i, (d, _) in enumerate(columns)
                if d == dimension
            )
            assert block_bits == hierarchy.level(code) + 1


@given(observation_spaces(max_observations=12))
@settings(max_examples=20, deadline=None)
def test_cm_matches_reference_predicate(space):
    matrix = OccurrenceMatrix(space)
    for position, dimension in enumerate(space.dimensions):
        cm = matrix.containment_matrix(dimension)
        for a in range(len(space)):
            for b in range(len(space)):
                assert cm[a, b] == space.dimension_contains(a, b, position)


@given(observation_spaces(max_observations=12))
@settings(max_examples=20, deadline=None)
def test_backends_identical(space):
    np_counts = OccurrenceMatrix(space, backend="numpy").compute_ocm().counts
    py_counts = OccurrenceMatrix(space, backend="python").compute_ocm().counts
    assert np.array_equal(np_counts, py_counts)


@given(observation_spaces(max_observations=12))
@settings(max_examples=20, deadline=None)
def test_ocm_diagonal_is_one(space):
    if len(space) == 0:
        return
    ocm = OccurrenceMatrix(space).compute_ocm().ocm()
    assert np.allclose(np.diag(ocm), 1.0)


@given(observation_spaces(max_observations=10))
@settings(max_examples=20, deadline=None)
def test_counts_bounded_by_dimension_count(space):
    result = OccurrenceMatrix(space).compute_ocm()
    assert result.counts.min() >= 0 if result.counts.size else True
    if result.counts.size:
        assert result.counts.max() <= len(space.dimensions)
