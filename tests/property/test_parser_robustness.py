"""Robustness properties: parsers fail cleanly, never with random errors.

For arbitrary input text every parser must either succeed or raise its
documented error type — no ``IndexError``/``KeyError``/``RecursionError``
escapes.  This is the property a service exposing these parsers relies
on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError, RuleSyntaxError, SPARQLError, TermError
from repro.rdf.ntriples import parse_ntriples
from repro.rdf.trig import parse_trig
from repro.rdf.turtle import parse_turtle
from repro.rules import parse_rules
from repro.sparql import parse_query

# A mix of plain unicode and syntax-adjacent fragments to hit deep paths.
fragments = st.sampled_from(
    [
        "@prefix ex: <http://e/> .",
        "ex:a ex:p ex:b .",
        "<http://e/a>",
        '"literal"',
        '"typed"^^<http://t>',
        "@en",
        "GRAPH",
        "{", "}", "(", ")", "[", "]", ";", ",", ".",
        "SELECT", "WHERE", "FILTER", "NOT EXISTS",
        "?v", "5", "5.5", "true",
        "[r: (?a ex:p ?b) -> (?a ex:q ?b)]",
        "->", "\\u0041", "\n", "  ",
    ]
)
soup = st.lists(st.one_of(fragments, st.text(max_size=12)), max_size=12).map(" ".join)


@given(soup)
@settings(max_examples=150, deadline=None)
def test_turtle_parser_fails_cleanly(text):
    try:
        parse_turtle(text)
    except (ParseError, TermError):
        pass


@given(soup)
@settings(max_examples=150, deadline=None)
def test_trig_parser_fails_cleanly(text):
    try:
        parse_trig(text)
    except (ParseError, TermError):
        pass


@given(soup)
@settings(max_examples=150, deadline=None)
def test_ntriples_parser_fails_cleanly(text):
    try:
        parse_ntriples(text)
    except (ParseError, TermError):
        pass


@given(soup)
@settings(max_examples=150, deadline=None)
def test_sparql_parser_fails_cleanly(text):
    try:
        parse_query(text)
    except (SPARQLError, TermError):
        pass


@given(soup)
@settings(max_examples=150, deadline=None)
def test_rules_parser_fails_cleanly(text):
    try:
        parse_rules(text)
    except (RuleSyntaxError, TermError):
        pass
