"""Property-based tests for relationship-computation invariants.

These are the core guarantees of the paper's algorithms:

* all lossless methods produce identical relationship sets,
* full and partial containment are disjoint,
* dimension-level full containment is a preorder (reflexive+transitive),
* complementarity is symmetric and transitive (vector equality),
* the clustering method only ever under-approximates,
* skyline-from-relationships matches the direct skyline.
"""

from hypothesis import given, settings

from repro.core.baseline import compute_baseline
from repro.core.cluster_method import compute_clustering
from repro.core.cubemask import compute_cubemask
from repro.core.skyline import skyline, skyline_from_relationships

from tests.property.strategies import observation_spaces


@given(observation_spaces())
@settings(max_examples=30, deadline=None)
def test_baseline_equals_cubemask(space):
    assert compute_baseline(space) == compute_cubemask(space)


@given(observation_spaces(max_observations=15))
@settings(max_examples=20, deadline=None)
def test_backends_agree(space):
    assert compute_baseline(space, backend="numpy") == compute_baseline(space, backend="python")


@given(observation_spaces())
@settings(max_examples=30, deadline=None)
def test_full_partial_disjoint(space):
    result = compute_baseline(space)
    assert not (result.full & result.partial)


@given(observation_spaces())
@settings(max_examples=30, deadline=None)
def test_no_self_pairs(space):
    result = compute_baseline(space)
    assert all(a != b for a, b in result.full)
    assert all(a != b for a, b in result.partial)
    assert all(a != b for a, b in result.complementary)


@given(observation_spaces(max_observations=12))
@settings(max_examples=20, deadline=None)
def test_dim_full_is_preorder(space):
    n = len(space)
    for a in range(n):
        assert space.dim_full(a, a)
        for b in range(n):
            if not space.dim_full(a, b):
                continue
            for c in range(n):
                if space.dim_full(b, c):
                    assert space.dim_full(a, c)


@given(observation_spaces(max_observations=12))
@settings(max_examples=20, deadline=None)
def test_complementarity_symmetric_transitive(space):
    n = len(space)
    for a in range(n):
        for b in range(n):
            if space.is_complementary(a, b):
                assert space.is_complementary(b, a)
                for c in range(n):
                    if c not in (a, b) and space.is_complementary(b, c):
                        assert space.is_complementary(a, c)


@given(observation_spaces())
@settings(max_examples=30, deadline=None)
def test_partial_degrees_in_open_interval(space):
    result = compute_baseline(space)
    for pair in result.partial:
        degree = result.degree(*pair)
        assert degree is not None
        assert 0.0 < degree < 1.0


@given(observation_spaces(max_observations=20))
@settings(max_examples=15, deadline=None)
def test_clustering_under_approximates(space):
    if len(space) == 0:
        return
    truth = compute_baseline(space)
    found = compute_clustering(space, algorithm="kmeans", seed=0, min_sample=2)
    assert found.full <= truth.full
    assert found.partial <= truth.partial
    assert found.complementary <= truth.complementary


@given(observation_spaces(max_observations=15))
@settings(max_examples=15, deadline=None)
def test_skyline_consistency(space):
    relationships = compute_baseline(space)
    assert set(skyline(space)) == set(skyline_from_relationships(space, relationships))


@given(observation_spaces(max_observations=15))
@settings(max_examples=15, deadline=None)
def test_mutual_full_dimension_containment_is_complementarity(space):
    n = len(space)
    for a in range(n):
        for b in range(n):
            if a != b:
                mutual = space.dim_full(a, b) and space.dim_full(b, a)
                assert mutual == space.is_complementary(a, b)
