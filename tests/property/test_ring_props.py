"""Property-based tests for the cluster's consistent-hash ring.

The three guarantees the serve tier leans on (ISSUE: satellite 3):

* **determinism** — two rings built from the same nodes agree on every
  assignment, in any insertion order; this is what lets the router,
  supervisor and shards derive one topology with no coordination;
* **balance** — with the default 128 vnodes the max/min shard load
  ratio stays bounded for realistic key populations;
* **bounded movement** — adding a shard moves keys only *to* the new
  shard, removing one moves only *its* keys; no key ever hops between
  two surviving shards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing

node_names = st.integers(min_value=0, max_value=63).map(lambda i: f"shard-{i}")

node_sets = st.sets(node_names, min_size=1, max_size=8)

ring_keys = st.lists(
    st.text(
        alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
        min_size=0,
        max_size=40,
    ),
    min_size=0,
    max_size=60,
    unique=True,
)


@given(nodes=node_sets, keys=ring_keys)
@settings(max_examples=50, deadline=None)
def test_assignment_deterministic_and_order_independent(nodes, keys):
    forward = HashRing(sorted(nodes))
    backward = HashRing(sorted(nodes, reverse=True))
    for key in keys:
        owner = forward.node_for(key)
        assert owner in nodes
        assert backward.node_for(key) == owner


@given(nodes=node_sets, keys=ring_keys, count=st.integers(min_value=1, max_value=10))
@settings(max_examples=50, deadline=None)
def test_replica_walk_distinct_owner_first(nodes, keys, count):
    ring = HashRing(nodes)
    for key in keys:
        picked = ring.nodes_for(key, count)
        assert len(picked) == min(count, len(nodes))
        assert len(set(picked)) == len(picked)
        assert picked[0] == ring.node_for(key)
        assert set(picked) <= nodes


@given(nodes=node_sets, keys=ring_keys)
@settings(max_examples=50, deadline=None)
def test_assignment_partitions_keys(nodes, keys):
    ring = HashRing(nodes)
    assignment = ring.assignment(keys)
    assert set(assignment) == set(nodes)
    flat = [key for assigned in assignment.values() for key in assigned]
    assert sorted(flat) == sorted(keys)


@given(nodes=node_sets, keys=ring_keys, new=node_names)
@settings(max_examples=50, deadline=None)
def test_adding_a_node_moves_keys_only_to_it(nodes, keys, new):
    ring = HashRing(nodes)
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node(new)
    for key in keys:
        after = ring.node_for(key)
        assert after == before[key] or after == new


@given(nodes=st.sets(node_names, min_size=2, max_size=8), keys=ring_keys)
@settings(max_examples=50, deadline=None)
def test_removing_a_node_moves_only_its_keys(nodes, keys):
    victim = sorted(nodes)[0]
    ring = HashRing(nodes)
    before = {key: ring.node_for(key) for key in keys}
    ring.remove_node(victim)
    for key in keys:
        after = ring.node_for(key)
        if before[key] == victim:
            assert after != victim
        else:
            assert after == before[key]


@given(shards=st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_balance_ratio_bounded_with_default_vnodes(shards):
    ring = HashRing([f"shard-{i}" for i in range(shards)])
    keys = [f"http://test.example/ds|{i},{i % 3},{i % 7}" for i in range(256 * shards)]
    stats = ring.stats(keys)
    assert stats["min_load"] > 0
    # 128 vnodes keeps the spread well under pathological; the bound is
    # deliberately loose so the test pins the guarantee, not the RNG.
    assert stats["ratio"] < 3.0
