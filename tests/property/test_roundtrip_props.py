"""Property-based round-trip tests for the RDF serializations."""

from hypothesis import given, settings

from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.turtle import parse_turtle, serialize_turtle

from tests.property.strategies import simple_graphs


@given(simple_graphs())
@settings(max_examples=50)
def test_turtle_round_trip(graph):
    assert parse_turtle(serialize_turtle(graph)) == graph


@given(simple_graphs())
@settings(max_examples=50)
def test_ntriples_round_trip(graph):
    assert parse_ntriples(serialize_ntriples(graph)) == graph


@given(simple_graphs())
@settings(max_examples=25)
def test_turtle_ntriples_agree(graph):
    via_turtle = parse_turtle(serialize_turtle(graph))
    via_ntriples = parse_ntriples(serialize_ntriples(graph))
    assert via_turtle == via_ntriples


@given(simple_graphs())
@settings(max_examples=25)
def test_serialization_deterministic(graph):
    assert serialize_turtle(graph) == serialize_turtle(graph.copy())
    assert serialize_ntriples(graph) == serialize_ntriples(graph.copy())


@given(simple_graphs(max_triples=8), simple_graphs(max_triples=8), simple_graphs(max_triples=8))
@settings(max_examples=30)
def test_trig_and_nquads_round_trip(default_graph, g1, g2):
    from repro.rdf.dataset import RDFDataset
    from repro.rdf.nquads import parse_nquads, serialize_nquads
    from repro.rdf.terms import URIRef
    from repro.rdf.trig import parse_trig, serialize_trig

    dataset = RDFDataset()
    dataset.default.update(default_graph)
    dataset.graph(URIRef("http://prop.example/graph1")).update(g1)
    dataset.graph(URIRef("http://prop.example/graph2")).update(g2)
    assert parse_trig(serialize_trig(dataset)) == dataset
    assert parse_nquads(serialize_nquads(dataset)) == dataset
