"""Property-based tests for the rule engine against reference models."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import Graph
from repro.rdf.terms import URIRef
from repro.rules import RuleEngine, parse_rules


def node(i: int) -> URIRef:
    return URIRef(f"http://prop.example/n{i}")


EDGE = URIRef("http://prop.example/edge")

edge_sets = st.sets(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=0,
    max_size=12,
)


def graph_of(edges) -> Graph:
    g = Graph()
    for a, b in edges:
        g.add((node(a), EDGE, node(b)))
    return g


TRANSITIVE = parse_rules(
    f"[t: (?a <{EDGE}> ?b), (?b <{EDGE}> ?c) -> (?a <{EDGE}> ?c)]"
)


@given(edge_sets)
@settings(max_examples=40, deadline=None)
def test_transitive_closure_matches_networkx(edges):
    closed = RuleEngine(TRANSITIVE).run(graph_of(edges))
    ours = {(s, o) for s, _, o in closed.triples(None, EDGE, None)}
    digraph = nx.DiGraph(list(edges))
    expected = set()
    for start in digraph.nodes:
        for target in nx.descendants(digraph, start):
            expected.add((node(start), node(target)))
        if (start, start) in edges:
            expected.add((node(start), node(start)))
    # nx.descendants excludes self unless reachable via a cycle; the
    # closure of edges includes (x, x) whenever x lies on a cycle.
    for component in nx.strongly_connected_components(digraph):
        if len(component) > 1:
            for member in component:
                expected.add((node(member), node(member)))
    assert ours == expected


@given(edge_sets)
@settings(max_examples=30, deadline=None)
def test_closure_is_idempotent(edges):
    engine = RuleEngine(TRANSITIVE)
    once = engine.run(graph_of(edges))
    twice = engine.run(once)
    assert once == twice


@given(edge_sets)
@settings(max_examples=30, deadline=None)
def test_closure_monotone_in_input(edges):
    """Adding a triple never removes derived facts."""
    engine = RuleEngine(TRANSITIVE)
    base = graph_of(edges)
    closed_small = engine.run(base)
    extended = base.copy()
    extended.add((node(0), EDGE, node(6)))
    closed_big = engine.run(extended)
    assert all(t in closed_big for t in closed_small)


@given(edge_sets)
@settings(max_examples=25, deadline=None)
def test_guarded_rule_subset_of_unguarded(edges):
    flag = URIRef("http://prop.example/flag")
    guarded = parse_rules(
        f"[g: (?a <{EDGE}> ?b), notEqual(?a, ?b) -> (?a <{flag}> ?b)]"
    )
    unguarded = parse_rules(f"[u: (?a <{EDGE}> ?b) -> (?a <{flag}> ?b)]")
    graph = graph_of(edges)
    flags_guarded = {
        (s, o) for s, _, o in RuleEngine(guarded).run(graph).triples(None, flag, None)
    }
    flags_all = {
        (s, o) for s, _, o in RuleEngine(unguarded).run(graph).triples(None, flag, None)
    }
    assert flags_guarded == {(s, o) for s, o in flags_all if s != o}
