"""Property-based tests for the SPARQL engine against reference models.

The path-closure semantics are checked against :mod:`networkx`
transitive closures on random edge sets.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import Graph
from repro.rdf.terms import URIRef
from repro.sparql import query
from repro.sparql.ast import Var


def node(i: int) -> URIRef:
    return URIRef(f"http://prop.example/n{i}")


PRED = URIRef("http://prop.example/edge")

edge_sets = st.sets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=0,
    max_size=15,
)


def graph_of(edges) -> Graph:
    g = Graph()
    for a, b in edges:
        g.add((node(a), PRED, node(b)))
    return g


@given(edge_sets, st.integers(0, 7))
@settings(max_examples=40, deadline=None)
def test_star_closure_matches_networkx(edges, start):
    g = graph_of(edges)
    rows = query(
        g,
        f"SELECT ?x {{ <{node(start)}> <{PRED}>* ?x }}",
    )
    ours = {row[Var("x")] for row in rows}
    digraph = nx.DiGraph(list(edges))
    digraph.add_node(start)
    expected = {node(start)} | {node(t) for t in nx.descendants(digraph, start)}
    assert ours == expected


@given(edge_sets, st.integers(0, 7))
@settings(max_examples=40, deadline=None)
def test_plus_closure_matches_networkx(edges, start):
    g = graph_of(edges)
    rows = query(g, f"SELECT ?x {{ <{node(start)}> <{PRED}>+ ?x }}")
    ours = {row[Var("x")] for row in rows}
    digraph = nx.DiGraph(list(edges))
    digraph.add_node(start)
    expected = {node(t) for t in nx.descendants(digraph, start)}
    if (start, start) in edges or any(
        start in part and len(part) > 1
        for part in nx.strongly_connected_components(digraph)
    ):
        expected.add(node(start))
    assert ours == expected


@given(edge_sets, st.integers(0, 7))
@settings(max_examples=30, deadline=None)
def test_backward_closure_symmetric(edges, target):
    g = graph_of(edges)
    forward = {
        (row[Var("a")], row[Var("b")])
        for row in query(g, f"SELECT ?a ?b {{ ?a <{PRED}>* ?b }}")
    }
    backward = query(g, f"SELECT ?x {{ ?x <{PRED}>* <{node(target)}> }}")
    ours = {row[Var("x")] for row in backward}
    # Zero-length paths relate every term to itself, including a
    # constant endpoint that never occurs in the graph (SPARQL 1.1 ALP).
    expected = {a for a, b in forward if b == node(target)} | {node(target)}
    assert ours == expected


@given(edge_sets)
@settings(max_examples=30, deadline=None)
def test_bgp_join_matches_manual_product(edges):
    g = graph_of(edges)
    rows = query(g, f"SELECT ?a ?b ?c {{ ?a <{PRED}> ?b . ?b <{PRED}> ?c }}")
    ours = {(row[Var("a")], row[Var("b")], row[Var("c")]) for row in rows}
    expected = {
        (node(a), node(b), node(c))
        for a, b in edges
        for b2, c in edges
        if b == b2
    }
    assert ours == expected


@given(edge_sets)
@settings(max_examples=30, deadline=None)
def test_distinct_removes_duplicates(edges):
    g = graph_of(edges)
    plain = query(g, f"SELECT ?a {{ ?a <{PRED}> ?b }}")
    distinct = query(g, f"SELECT DISTINCT ?a {{ ?a <{PRED}> ?b }}")
    assert {row[Var("a")] for row in plain} == {row[Var("a")] for row in distinct}
    assert len(distinct) == len({row[Var("a")] for row in distinct})


@given(edge_sets)
@settings(max_examples=30, deadline=None)
def test_not_exists_complements_exists(edges):
    g = graph_of(edges)
    all_sources = {row[Var("a")] for row in query(g, f"SELECT ?a {{ ?a <{PRED}> ?b }}")}
    with_loop = {
        row[Var("a")]
        for row in query(
            g, f"SELECT ?a {{ ?a <{PRED}> ?b FILTER EXISTS {{ ?a <{PRED}> ?a }} }}"
        )
    }
    without_loop = {
        row[Var("a")]
        for row in query(
            g, f"SELECT ?a {{ ?a <{PRED}> ?b FILTER NOT EXISTS {{ ?a <{PRED}> ?a }} }}"
        )
    }
    assert with_loop | without_loop == all_sources
    assert with_loop & without_loop == set()
