"""Unit tests for the CSV-to-QB converter."""

import pytest

from repro.errors import CubeModelError
from repro.qb import Hierarchy
from repro.qb.csv2qb import ColumnSpec, csv_to_cubespace
from repro.rdf import EX


@pytest.fixture
def geo() -> Hierarchy:
    h = Hierarchy(EX["geo/WORLD"])
    h.add(EX["geo/GR"], h.root)
    h.add(EX["geo/GR-ATH"], EX["geo/GR"])
    return h


@pytest.fixture
def columns(geo):
    return [
        ColumnSpec("area", "dimension", EX.refArea, hierarchy=geo),
        ColumnSpec("population", "measure", EX.population, parser=int),
    ]


class TestCsvConversion:
    def test_basic_conversion(self, columns):
        text = "area,population\nGR,11000000\nGR-ATH,660000\n"
        space = csv_to_cubespace(text, columns, EX.ds)
        assert space.observation_count() == 2
        obs = sorted(space.observations(), key=lambda o: str(o.uri))
        assert obs[0].value(EX.refArea) == EX["geo/GR"]
        assert obs[0].measures[EX.population] == 11000000

    def test_header_order_insensitive(self, columns):
        text = "population,area\n100,GR\n"
        space = csv_to_cubespace(text, columns, EX.ds)
        assert next(space.observations()).measures[EX.population] == 100

    def test_extra_columns_ignored(self, columns):
        text = "area,notes,population\nGR,hello,5\n"
        space = csv_to_cubespace(text, columns, EX.ds)
        assert space.observation_count() == 1

    def test_empty_dimension_cell_means_unbound(self, columns):
        text = "area,population\n,7\n"
        space = csv_to_cubespace(text, columns, EX.ds)
        assert next(space.observations()).value(EX.refArea) is None

    def test_blank_rows_skipped(self, columns):
        text = "area,population\nGR,1\n,\nGR-ATH,2\n"
        space = csv_to_cubespace(text, columns, EX.ds)
        assert space.observation_count() == 2

    def test_unmatched_code_rejected(self, columns):
        with pytest.raises(CubeModelError):
            csv_to_cubespace("area,population\nDE,1\n", columns, EX.ds)

    def test_bad_measure_value_rejected(self, columns):
        with pytest.raises(CubeModelError) as info:
            csv_to_cubespace("area,population\nGR,lots\n", columns, EX.ds)
        assert "row 1" in str(info.value)

    def test_row_without_measures_rejected(self, columns):
        with pytest.raises(CubeModelError):
            csv_to_cubespace("area,population\nGR,\n", columns, EX.ds)

    def test_missing_header_rejected(self, columns):
        with pytest.raises(CubeModelError):
            csv_to_cubespace("area\nGR\n", columns, EX.ds)

    def test_empty_input_rejected(self, columns):
        with pytest.raises(CubeModelError):
            csv_to_cubespace("", columns, EX.ds)

    def test_dimension_column_requires_hierarchy(self):
        with pytest.raises(CubeModelError):
            ColumnSpec("area", "dimension", EX.refArea)

    def test_unknown_kind_rejected(self, geo):
        with pytest.raises(CubeModelError):
            ColumnSpec("area", "attribute", EX.refArea, hierarchy=geo)

    def test_into_existing_space(self, columns, geo):
        space = csv_to_cubespace("area,population\nGR,1\n", columns, EX.ds1)
        space = csv_to_cubespace(
            "area,population\nGR-ATH,2\n", columns, EX.ds2, space=space
        )
        assert len(space.datasets) == 2
