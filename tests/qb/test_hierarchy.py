"""Unit tests for the code-list hierarchy (Definition 2)."""

import pytest

from repro.errors import HierarchyError
from repro.qb.hierarchy import Hierarchy


@pytest.fixture
def geo() -> Hierarchy:
    h = Hierarchy("World")
    h.add("Europe", "World")
    h.add("Greece", "Europe")
    h.add("Italy", "Europe")
    h.add("Athens", "Greece")
    h.add("Rome", "Italy")
    return h


class TestConstruction:
    def test_root_level_zero(self, geo):
        assert geo.level("World") == 0
        assert geo.parent("World") is None

    def test_add_default_parent_is_root(self):
        h = Hierarchy("ALL")
        h.add("x")
        assert h.parent("x") == "ALL"

    def test_from_parent_mapping_any_order(self):
        h = Hierarchy("World", {"Athens": "Greece", "Greece": "Europe", "Europe": "World"})
        assert h.level("Athens") == 3

    def test_cycle_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy("root", {"a": "b", "b": "a"})

    def test_missing_parent_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy("root", {"a": "ghost"})

    def test_duplicate_same_parent_idempotent(self, geo):
        geo.add("Athens", "Greece")  # no error
        assert len(geo) == 6

    def test_duplicate_conflicting_parent_rejected(self, geo):
        with pytest.raises(HierarchyError):
            geo.add("Athens", "Italy")

    def test_unknown_parent_rejected(self, geo):
        with pytest.raises(HierarchyError):
            geo.add("Berlin", "Germany")

    def test_from_edges(self):
        h = Hierarchy.from_edges("r", [("a", "r"), ("b", "a")])
        assert h.level("b") == 2


class TestAncestry:
    def test_reflexive(self, geo):
        # Definition 2: ancestry is reflexive.
        assert geo.is_ancestor("Athens", "Athens")
        assert geo.is_ancestor("World", "World")

    def test_transitive(self, geo):
        assert geo.is_ancestor("World", "Athens")
        assert geo.is_ancestor("Europe", "Rome")

    def test_not_ancestor_across_branches(self, geo):
        assert not geo.is_ancestor("Greece", "Rome")
        assert not geo.is_ancestor("Athens", "Greece")  # not symmetric

    def test_ancestors_set(self, geo):
        assert geo.ancestors("Athens") == frozenset({"Athens", "Greece", "Europe", "World"})

    def test_strict_ancestors(self, geo):
        assert geo.strict_ancestors("Athens") == frozenset({"Greece", "Europe", "World"})

    def test_descendants(self, geo):
        assert geo.descendants("Europe") == frozenset(
            {"Europe", "Greece", "Italy", "Athens", "Rome"}
        )

    def test_unknown_code_raises(self, geo):
        with pytest.raises(HierarchyError):
            geo.is_ancestor("World", "Mars")
        with pytest.raises(HierarchyError):
            geo.ancestors("Mars")


class TestLevels:
    def test_levels(self, geo):
        assert geo.level("Europe") == 1
        assert geo.level("Athens") == 3
        assert geo.max_level == 3

    def test_codes_at_level(self, geo):
        assert geo.codes_at_level(2) == frozenset({"Greece", "Italy"})

    def test_leaves(self, geo):
        assert geo.leaves() == frozenset({"Athens", "Rome"})

    def test_path_to_root(self, geo):
        assert geo.path_to_root("Athens") == ["Athens", "Greece", "Europe", "World"]
        assert geo.path_to_root("World") == ["World"]

    def test_children(self, geo):
        assert geo.children("Europe") == frozenset({"Greece", "Italy"})
        assert geo.children("Athens") == frozenset()


class TestMerge:
    def test_merge_disjoint_subtrees(self, geo):
        other = Hierarchy("World")
        other.add("Asia", "World")
        other.add("Japan", "Asia")
        merged = geo.merge(other)
        assert merged.is_ancestor("World", "Japan")
        assert merged.is_ancestor("World", "Athens")

    def test_merge_overlapping_consistent(self, geo):
        other = Hierarchy("World")
        other.add("Europe", "World")
        other.add("Spain", "Europe")
        merged = geo.merge(other)
        assert merged.level("Spain") == 2

    def test_merge_conflicting_parent_rejected(self, geo):
        other = Hierarchy("World")
        other.add("Europe", "World")
        other.add("Greece", "World")  # conflicts: Greece under Europe in geo
        with pytest.raises(HierarchyError):
            geo.merge(other)

    def test_merge_different_roots_rejected(self, geo):
        with pytest.raises(HierarchyError):
            geo.merge(Hierarchy("Universe"))

    def test_iteration_and_contains(self, geo):
        assert "Athens" in geo
        assert "Mars" not in geo
        assert set(geo) == {"World", "Europe", "Greece", "Italy", "Athens", "Rome"}
