"""Round-trip and edge-case tests for the QB loader and writer."""

import pytest

from repro.errors import CubeModelError
from repro.qb import (
    CubeSpace,
    Dataset,
    DatasetSchema,
    Hierarchy,
    Observation,
    cubespace_to_graph,
    load_cubespace,
    relationships_to_graph,
)
from repro.qb.loader import load_hierarchy
from repro.core.results import RelationshipSet
from repro.rdf import CCREL, EX, Graph, QB, RDF, SKOS, parse_turtle
from repro.rdf.terms import Literal, URIRef


@pytest.fixture
def space() -> CubeSpace:
    geo = Hierarchy(EX.World)
    geo.add(EX.Greece, EX.World)
    geo.add(EX.Athens, EX.Greece)
    time = Hierarchy(EX.AllTime)
    time.add(EX.Y2001, EX.AllTime)
    space = CubeSpace()
    space.add_hierarchy(EX.refArea, geo)
    space.add_hierarchy(EX.refPeriod, time)
    schema = DatasetSchema(dimensions=(EX.refArea, EX.refPeriod), measures=(EX.population,))
    ds = Dataset(EX.d1, schema, label="demo")
    ds.add(Observation(EX.o1, EX.d1, {EX.refArea: EX.Athens, EX.refPeriod: EX.Y2001}, {EX.population: 5}))
    ds.add(Observation(EX.o2, EX.d1, {EX.refArea: EX.Greece}, {EX.population: 11}))
    space.add_dataset(ds)
    return space


class TestRoundTrip:
    def test_full_round_trip(self, space):
        graph = cubespace_to_graph(space)
        loaded = load_cubespace(graph)
        assert loaded.observation_count() == 2
        assert set(loaded.dimensions) == {EX.refArea, EX.refPeriod}
        assert loaded.hierarchies[EX.refArea].is_ancestor(EX.World, EX.Athens)
        obs = {o.uri: o for o in loaded.observations()}
        assert obs[EX.o1].measures[EX.population] == 5
        assert obs[EX.o2].value(EX.refPeriod) is None

    def test_label_round_trip(self, space):
        loaded = load_cubespace(cubespace_to_graph(space))
        assert loaded.datasets[EX.d1].label == "demo"

    def test_writer_emits_qb_shapes(self, space):
        graph = cubespace_to_graph(space)
        assert (EX.d1, RDF.type, QB.DataSet) in graph
        assert (EX.o1, RDF.type, QB.Observation) in graph
        assert (EX.o1, QB.dataSet, EX.d1) in graph
        assert (EX.Athens, SKOS.broader, EX.Greece) in graph


class TestLoaderEdgeCases:
    def test_dataset_without_structure_rejected(self):
        graph = parse_turtle(
            "@prefix qb: <http://purl.org/linked-data/cube#> . "
            "@prefix ex: <http://example.org/> . ex:d a qb:DataSet ."
        )
        with pytest.raises(CubeModelError):
            load_cubespace(graph)

    def test_observation_without_dataset_rejected(self, space):
        graph = cubespace_to_graph(space)
        graph.add((EX.orphan, RDF.type, QB.Observation))
        with pytest.raises(CubeModelError):
            load_cubespace(graph)

    def test_unknown_code_attached_under_root(self, space):
        graph = cubespace_to_graph(space)
        graph.add((EX.o3, RDF.type, QB.Observation))
        graph.add((EX.o3, QB.dataSet, EX.d1))
        graph.add((EX.o3, EX.refArea, EX.Mars))
        graph.add((EX.o3, EX.population, Literal(0)))
        loaded = load_cubespace(graph)
        hierarchy = loaded.hierarchies[EX.refArea]
        assert hierarchy.parent(EX.Mars) == EX.World

    def test_dimension_without_codelist_gets_flat_hierarchy(self):
        graph = parse_turtle(
            """
            @prefix qb: <http://purl.org/linked-data/cube#> .
            @prefix ex: <http://example.org/> .
            ex:d a qb:DataSet ; qb:structure ex:dsd .
            ex:dsd a qb:DataStructureDefinition ;
                qb:component [ qb:dimension ex:flat ] , [ qb:measure ex:m ] .
            ex:o a qb:Observation ; qb:dataSet ex:d ; ex:flat ex:v1 ; ex:m 3 .
            """
        )
        loaded = load_cubespace(graph)
        hierarchy = loaded.hierarchies[EX.flat]
        assert EX.v1 in hierarchy
        assert hierarchy.level(EX.v1) == 1

    def test_non_uri_dimension_value_rejected(self, space):
        graph = cubespace_to_graph(space)
        graph.add((EX.o9, RDF.type, QB.Observation))
        graph.add((EX.o9, QB.dataSet, EX.d1))
        graph.add((EX.o9, EX.refArea, Literal("Athens")))
        graph.add((EX.o9, EX.population, Literal(1)))
        with pytest.raises(CubeModelError):
            load_cubespace(graph)

    def test_narrower_only_hierarchy(self):
        """Some publishers ship skos:narrower instead of skos:broader."""
        graph = parse_turtle(
            """
            @prefix skos: <http://www.w3.org/2004/02/skos/core#> .
            @prefix ex: <http://example.org/> .
            ex:scheme skos:hasTopConcept ex:World .
            ex:World skos:inScheme ex:scheme ; skos:narrower ex:Greece .
            ex:Greece skos:inScheme ex:scheme ; skos:narrower ex:Athens .
            ex:Athens skos:inScheme ex:scheme .
            """
        )
        hierarchy = load_hierarchy(graph, EX.scheme)
        assert hierarchy.is_ancestor(EX.World, EX.Athens)
        assert hierarchy.level(EX.Athens) == 2

    def test_load_hierarchy_requires_top_concept(self):
        graph = parse_turtle(
            "@prefix skos: <http://www.w3.org/2004/02/skos/core#> . "
            "@prefix ex: <http://example.org/> . ex:c skos:inScheme ex:scheme ."
        )
        with pytest.raises(CubeModelError):
            load_hierarchy(graph, EX.scheme)

    def test_unknown_predicates_ignored(self, space):
        graph = cubespace_to_graph(space)
        graph.add((EX.o1, EX.comment, Literal("noise")))
        loaded = load_cubespace(graph)
        obs = {o.uri: o for o in loaded.observations()}
        assert EX.comment not in obs[EX.o1].measures


class TestAttributes:
    """Listing 1 of the paper attaches sdmx-attr:unitMeasure to an
    observation; attributes must round-trip through RDF."""

    def test_attribute_round_trip(self):
        from repro.rdf.namespaces import SDMX_ATTR

        geo = Hierarchy(EX.World)
        geo.add(EX.DE, EX.World)
        space = CubeSpace()
        space.add_hierarchy(EX.geo, geo)
        schema = DatasetSchema(
            dimensions=(EX.geo,),
            measures=(EX.population,),
            attributes=(SDMX_ATTR.unitMeasure,),
        )
        ds = Dataset(EX.d1, schema)
        ds.add(
            Observation(
                EX.obs1,
                EX.d1,
                {EX.geo: EX.DE},
                {EX.population: 82_350_000},
                {SDMX_ATTR.unitMeasure: EX.unit},
            )
        )
        space.add_dataset(ds)
        loaded = load_cubespace(cubespace_to_graph(space))
        observation = next(loaded.observations())
        assert observation.attributes[SDMX_ATTR.unitMeasure] == EX.unit
        assert loaded.datasets[EX.d1].schema.attributes == (SDMX_ATTR.unitMeasure,)


class TestRelationshipWriter:
    def test_full_and_complement_links(self):
        result = RelationshipSet(
            full=[(EX.a, EX.b)],
            complementary=[(EX.c, EX.d)],
        )
        graph = relationships_to_graph(result)
        assert (EX.a, CCREL.fullyContains, EX.b) in graph
        assert (EX.c, CCREL.complements, EX.d) in graph
        assert (EX.d, CCREL.complements, EX.c) in graph

    def test_partial_with_reification(self):
        result = RelationshipSet()
        result.add_partial(EX.a, EX.b, frozenset({EX.refArea}), 0.5)
        graph = relationships_to_graph(result)
        assert (EX.a, CCREL.partiallyContains, EX.b) in graph
        nodes = list(graph.subjects(RDF.type, CCREL.PartialContainment))
        assert len(nodes) == 1
        node = nodes[0]
        assert (node, CCREL.onDimension, EX.refArea) in graph
        assert graph.value(node, CCREL.degree, None).to_python() == 0.5

    def test_partial_without_dimension_annotations(self):
        result = RelationshipSet()
        result.add_partial(EX.a, EX.b, frozenset({EX.refArea}), 0.5)
        graph = relationships_to_graph(result, annotate_partial_dimensions=False)
        assert not list(graph.triples(None, CCREL.onDimension, None))
