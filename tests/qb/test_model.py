"""Unit tests for the QB object model."""

import pytest

from repro.errors import CubeModelError
from repro.qb import CubeSpace, Dataset, DatasetSchema, Hierarchy, Observation
from repro.rdf import EX


@pytest.fixture
def geo() -> Hierarchy:
    h = Hierarchy(EX.World)
    h.add(EX.Greece, EX.World)
    h.add(EX.Athens, EX.Greece)
    return h


@pytest.fixture
def schema() -> DatasetSchema:
    return DatasetSchema(dimensions=(EX.refArea,), measures=(EX.population,))


class TestObservation:
    def test_basic(self):
        obs = Observation(EX.o1, EX.d1, {EX.refArea: EX.Athens}, {EX.population: 5})
        assert obs.value(EX.refArea) == EX.Athens
        assert obs.value(EX.refPeriod) is None
        assert obs.measure_set == frozenset({EX.population})

    def test_requires_measures(self):
        with pytest.raises(CubeModelError):
            Observation(EX.o1, EX.d1, {EX.refArea: EX.Athens}, {})

    def test_mappings_copied(self):
        dims = {EX.refArea: EX.Athens}
        obs = Observation(EX.o1, EX.d1, dims, {EX.population: 5})
        dims[EX.refArea] = EX.Greece
        assert obs.value(EX.refArea) == EX.Athens


class TestDatasetSchema:
    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(CubeModelError):
            DatasetSchema(dimensions=(EX.a, EX.a), measures=(EX.m,))

    def test_measures_required(self):
        with pytest.raises(CubeModelError):
            DatasetSchema(dimensions=(EX.a,), measures=())


class TestDataset:
    def test_add_and_iterate(self, schema):
        ds = Dataset(EX.d1, schema)
        ds.add(Observation(EX.o1, EX.d1, {EX.refArea: EX.Athens}, {EX.population: 5}))
        assert len(ds) == 1
        assert next(iter(ds)).uri == EX.o1

    def test_rejects_out_of_schema_dimension(self, schema):
        ds = Dataset(EX.d1, schema)
        with pytest.raises(CubeModelError):
            ds.add(Observation(EX.o1, EX.d1, {EX.sex: EX.Total}, {EX.population: 5}))

    def test_rejects_out_of_schema_measure(self, schema):
        ds = Dataset(EX.d1, schema)
        with pytest.raises(CubeModelError):
            ds.add(Observation(EX.o1, EX.d1, {}, {EX.gdp: 5}))


class TestCubeSpace:
    def test_requires_hierarchy_for_dimensions(self, schema):
        space = CubeSpace()
        with pytest.raises(CubeModelError):
            space.add_dataset(Dataset(EX.d1, schema))

    def test_add_dataset(self, geo, schema):
        space = CubeSpace()
        space.add_hierarchy(EX.refArea, geo)
        space.add_dataset(Dataset(EX.d1, schema))
        assert space.dimensions == (EX.refArea,)
        assert space.measures == (EX.population,)

    def test_duplicate_dataset_rejected(self, geo, schema):
        space = CubeSpace()
        space.add_hierarchy(EX.refArea, geo)
        space.add_dataset(Dataset(EX.d1, schema))
        with pytest.raises(CubeModelError):
            space.add_dataset(Dataset(EX.d1, schema))

    def test_add_hierarchy_merges(self, geo):
        space = CubeSpace()
        space.add_hierarchy(EX.refArea, geo)
        extra = Hierarchy(EX.World)
        extra.add(EX.Asia, EX.World)
        space.add_hierarchy(EX.refArea, extra)
        assert EX.Asia in space.hierarchies[EX.refArea]
        assert EX.Athens in space.hierarchies[EX.refArea]

    def test_validate_catches_unknown_code(self, geo, schema):
        space = CubeSpace()
        space.add_hierarchy(EX.refArea, geo)
        ds = Dataset(EX.d1, schema)
        ds.add(Observation(EX.o1, EX.d1, {EX.refArea: EX.Mars}, {EX.population: 1}))
        space.add_dataset(ds)
        with pytest.raises(CubeModelError):
            space.validate()

    def test_observation_count_and_iteration(self, geo, schema):
        space = CubeSpace()
        space.add_hierarchy(EX.refArea, geo)
        ds = Dataset(EX.d1, schema)
        ds.add(Observation(EX.o1, EX.d1, {EX.refArea: EX.Athens}, {EX.population: 1}))
        ds.add(Observation(EX.o2, EX.d1, {EX.refArea: EX.Greece}, {EX.population: 2}))
        space.add_dataset(ds)
        assert space.observation_count() == 2
        assert len(list(space.observations())) == 2

    def test_subspace(self, geo, schema):
        space = CubeSpace()
        space.add_hierarchy(EX.refArea, geo)
        ds = Dataset(EX.d1, schema)
        for i in range(5):
            ds.add(Observation(EX[f"o{i}"], EX.d1, {EX.refArea: EX.Athens}, {EX.population: i + 1}))
        space.add_dataset(ds)
        sub = space.subspace(3)
        assert sub.observation_count() == 3
        assert space.observation_count() == 5

    def test_merge_all(self, geo, schema):
        s1 = CubeSpace()
        s1.add_hierarchy(EX.refArea, geo)
        s1.add_dataset(Dataset(EX.d1, schema))
        s2 = CubeSpace()
        s2.add_hierarchy(EX.refArea, geo)
        s2.add_dataset(Dataset(EX.d2, schema))
        merged = CubeSpace.merge_all([s1, s2])
        assert set(merged.datasets) == {EX.d1, EX.d2}
