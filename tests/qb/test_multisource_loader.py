"""Unit tests for loading multi-source RDF datasets."""

import pytest

from repro.qb import cubespace_to_graph
from repro.qb.loader import load_cubespace_dataset
from repro.rdf import EX, RDFDataset, parse_trig
from repro.data.example import build_example_cubespace

TRIG = """
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix ex: <http://example.org/> .

ex:scheme a skos:ConceptScheme ; skos:hasTopConcept ex:ALL .
ex:ALL a skos:Concept ; skos:inScheme ex:scheme .
ex:x a skos:Concept ; skos:inScheme ex:scheme ; skos:broader ex:ALL .

GRAPH ex:sourceA {
    ex:dsA a qb:DataSet ; qb:structure ex:dsdA .
    ex:dsdA qb:component [ qb:dimension ex:dim ; qb:codeList ex:scheme ] ,
                         [ qb:measure ex:m1 ] .
    ex:oA a qb:Observation ; qb:dataSet ex:dsA ; ex:dim ex:x ; ex:m1 1 .
}

GRAPH ex:sourceB {
    ex:dsB a qb:DataSet ; qb:structure ex:dsdB .
    ex:dsdB qb:component [ qb:dimension ex:dim ; qb:codeList ex:scheme ] ,
                         [ qb:measure ex:m2 ] .
    ex:oB a qb:Observation ; qb:dataSet ex:dsB ; ex:dim ex:x ; ex:m2 2 .
}
"""


class TestLoadCubespaceDataset:
    def test_merges_sources(self):
        cube = load_cubespace_dataset(parse_trig(TRIG))
        assert set(cube.datasets) == {EX.dsA, EX.dsB}
        assert cube.observation_count() == 2
        assert cube.hierarchies[EX.dim].is_ancestor(EX.ALL, EX.x)

    def test_shared_codelist_from_default_graph(self):
        cube = load_cubespace_dataset(parse_trig(TRIG))
        # Both datasets resolved the scheme that lives in the default graph.
        for dataset in cube.datasets.values():
            assert dataset.schema.dimensions == (EX.dim,)

    def test_relationships_across_sources(self):
        from repro.core import Method, compute_relationships

        cube = load_cubespace_dataset(parse_trig(TRIG))
        result = compute_relationships(cube, Method.BASELINE)
        assert result.is_complementary(EX.oA, EX.oB)

    def test_single_graph_dataset(self):
        ds = RDFDataset()
        cubespace_to_graph(build_example_cubespace(), ds.graph(EX.onlySource))
        cube = load_cubespace_dataset(ds)
        assert cube.observation_count() == 10

    def test_default_graph_only(self):
        ds = RDFDataset()
        cubespace_to_graph(build_example_cubespace(), ds.default)
        cube = load_cubespace_dataset(ds)
        assert cube.observation_count() == 10

    def test_empty_dataset(self):
        cube = load_cubespace_dataset(RDFDataset())
        assert cube.observation_count() == 0
