"""Unit tests for qb:Slice support."""

import pytest

from repro.errors import CubeModelError
from repro.qb import CubeSpace, Dataset, DatasetSchema, Hierarchy, Observation, cubespace_to_graph, load_cubespace
from repro.qb.model import Slice
from repro.rdf import EX, QB, RDF


@pytest.fixture
def dataset_with_observations():
    geo = Hierarchy(EX.World)
    geo.add(EX.Greece, EX.World)
    geo.add(EX.Italy, EX.World)
    time = Hierarchy(EX.AllTime)
    time.add(EX.Y2001, EX.AllTime)
    time.add(EX.Y2002, EX.AllTime)
    space = CubeSpace()
    space.add_hierarchy(EX.refArea, geo)
    space.add_hierarchy(EX.refPeriod, time)
    schema = DatasetSchema(dimensions=(EX.refArea, EX.refPeriod), measures=(EX.population,))
    ds = Dataset(EX.d1, schema)
    ds.add(Observation(EX.o1, EX.d1, {EX.refArea: EX.Greece, EX.refPeriod: EX.Y2001}, {EX.population: 1}))
    ds.add(Observation(EX.o2, EX.d1, {EX.refArea: EX.Greece, EX.refPeriod: EX.Y2002}, {EX.population: 2}))
    ds.add(Observation(EX.o3, EX.d1, {EX.refArea: EX.Italy, EX.refPeriod: EX.Y2001}, {EX.population: 3}))
    space.add_dataset(ds)
    return space, ds


class TestSliceModel:
    def test_add_valid_slice(self, dataset_with_observations):
        _, ds = dataset_with_observations
        ds.add_slice(Slice(EX.greeceSlice, {EX.refArea: EX.Greece}, (EX.o1, EX.o2)))
        assert len(ds.slices) == 1
        members = ds.slice_members(EX.greeceSlice)
        assert [m.uri for m in members] == [EX.o1, EX.o2]

    def test_member_disagreeing_with_key_rejected(self, dataset_with_observations):
        _, ds = dataset_with_observations
        with pytest.raises(CubeModelError):
            ds.add_slice(Slice(EX.bad, {EX.refArea: EX.Greece}, (EX.o3,)))

    def test_unknown_member_rejected(self, dataset_with_observations):
        _, ds = dataset_with_observations
        with pytest.raises(CubeModelError):
            ds.add_slice(Slice(EX.bad, {EX.refArea: EX.Greece}, (EX.ghost,)))

    def test_fixed_dimension_outside_schema_rejected(self, dataset_with_observations):
        _, ds = dataset_with_observations
        with pytest.raises(CubeModelError):
            ds.add_slice(Slice(EX.bad, {EX.sex: EX.Total}, ()))

    def test_unknown_slice_lookup(self, dataset_with_observations):
        _, ds = dataset_with_observations
        with pytest.raises(CubeModelError):
            ds.slice_members(EX.nothere)


class TestSliceRdf:
    def test_writer_emits_slice_shapes(self, dataset_with_observations):
        space, ds = dataset_with_observations
        ds.add_slice(Slice(EX.greeceSlice, {EX.refArea: EX.Greece}, (EX.o1, EX.o2), label="Greece"))
        graph = cubespace_to_graph(space)
        assert (EX.d1, QB.slice, EX.greeceSlice) in graph
        assert (EX.greeceSlice, RDF.type, QB.Slice) in graph
        assert (EX.greeceSlice, EX.refArea, EX.Greece) in graph
        assert (EX.greeceSlice, QB.observation, EX.o1) in graph
        keys = list(graph.objects(EX.greeceSlice, QB.sliceStructure))
        assert len(keys) == 1
        assert (keys[0], QB.componentProperty, EX.refArea) in graph

    def test_round_trip(self, dataset_with_observations):
        space, ds = dataset_with_observations
        ds.add_slice(Slice(EX.greeceSlice, {EX.refArea: EX.Greece}, (EX.o1, EX.o2), label="Greece"))
        reloaded = load_cubespace(cubespace_to_graph(space))
        loaded_ds = reloaded.datasets[EX.d1]
        assert len(loaded_ds.slices) == 1
        loaded_slice = loaded_ds.slices[0]
        assert loaded_slice.uri == EX.greeceSlice
        assert dict(loaded_slice.fixed) == {EX.refArea: EX.Greece}
        assert loaded_slice.observations == (EX.o1, EX.o2)
        assert loaded_slice.label == "Greece"

    def test_dataset_without_slices_round_trips(self, dataset_with_observations):
        space, _ = dataset_with_observations
        reloaded = load_cubespace(cubespace_to_graph(space))
        assert reloaded.datasets[EX.d1].slices == []
