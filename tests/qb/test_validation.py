"""Unit tests for the QB integrity-constraint validator."""

import pytest

from repro.data.example import build_example_cubespace
from repro.qb import cubespace_to_graph
from repro.qb.validation import is_well_formed, validate_graph
from repro.rdf import EX, Graph, Literal, QB, RDF, parse_turtle


@pytest.fixture
def valid_graph() -> Graph:
    return cubespace_to_graph(build_example_cubespace())


def constraints(violations):
    return {v.constraint for v in violations}


class TestValidGraphs:
    def test_example_is_well_formed(self, valid_graph):
        assert validate_graph(valid_graph) == []
        assert is_well_formed(valid_graph)

    def test_generated_corpus_is_well_formed(self):
        from repro.data.realworld import build_realworld_cubespace

        graph = cubespace_to_graph(build_realworld_cubespace(scale=0.001, seed=2))
        assert is_well_formed(graph)

    def test_empty_graph_is_well_formed(self):
        assert is_well_formed(Graph())


class TestIC1DatasetLink:
    def test_observation_without_dataset(self, valid_graph):
        valid_graph.add((EX.orphan, RDF.type, QB.Observation))
        assert "IC-1" in constraints(validate_graph(valid_graph))

    def test_observation_with_two_datasets(self, valid_graph):
        obs = next(iter(valid_graph.subjects(RDF.type, QB.Observation)))
        valid_graph.add((obs, QB.dataSet, EX.anotherDataset))
        assert "IC-1" in constraints(validate_graph(valid_graph))

    def test_untyped_resource_with_dataset_link(self, valid_graph):
        valid_graph.add((EX.sneaky, QB.dataSet, EX.whatever))
        assert "IC-1" in constraints(validate_graph(valid_graph))

    def test_dataset_link_to_undeclared_dataset(self, valid_graph):
        valid_graph.add((EX.lost, RDF.type, QB.Observation))
        valid_graph.add((EX.lost, QB.dataSet, EX.ghostDataset))
        assert "IC-1" in constraints(validate_graph(valid_graph))


class TestIC2IC3Structure:
    def test_dataset_without_structure(self):
        graph = parse_turtle(
            "@prefix qb: <http://purl.org/linked-data/cube#> . "
            "@prefix ex: <http://example.org/> . ex:d a qb:DataSet ."
        )
        assert "IC-2" in constraints(validate_graph(graph))

    def test_dataset_with_two_structures(self, valid_graph):
        dataset = next(iter(valid_graph.subjects(RDF.type, QB.DataSet)))
        valid_graph.add((dataset, QB.structure, EX.secondDsd))
        assert "IC-2" in constraints(validate_graph(valid_graph))

    def test_dsd_without_measures(self):
        graph = parse_turtle(
            """
            @prefix qb: <http://purl.org/linked-data/cube#> .
            @prefix ex: <http://example.org/> .
            ex:d a qb:DataSet ; qb:structure ex:dsd .
            ex:dsd qb:component [ qb:dimension ex:geo ] .
            """
        )
        assert "IC-3" in constraints(validate_graph(graph))


class TestIC11IC14Completeness:
    def test_missing_dimension_value(self, valid_graph):
        obs = sorted(valid_graph.subjects(RDF.type, QB.Observation), key=str)[0]
        dimension = None
        for _, p, _ in valid_graph.triples(obs, None, None):
            if p.local_name() == "refArea":
                dimension = p
                break
        assert dimension is not None
        value = valid_graph.value(obs, dimension, None)
        valid_graph.discard((obs, dimension, value))
        assert "IC-11" in constraints(validate_graph(valid_graph))

    def test_missing_measure_value(self, valid_graph):
        obs = sorted(valid_graph.subjects(RDF.type, QB.Observation), key=str)[0]
        measure = None
        for _, p, o in valid_graph.triples(obs, None, None):
            if isinstance(o, Literal):
                measure = p
        assert measure is not None
        value = valid_graph.value(obs, measure, None)
        valid_graph.discard((obs, measure, value))
        assert "IC-14" in constraints(validate_graph(valid_graph))


class TestIC12Duplicates:
    def test_duplicate_observation_detected(self, valid_graph):
        obs = sorted(valid_graph.subjects(RDF.type, QB.Observation), key=str)[0]
        clone = EX.duplicateObs
        for _, p, o in valid_graph.triples(obs, None, None):
            valid_graph.add((clone, p, o))
        violations = validate_graph(valid_graph)
        assert "IC-12" in constraints(violations)

    def test_distinct_observations_pass(self, valid_graph):
        assert "IC-12" not in constraints(validate_graph(valid_graph))


class TestIC19CodeLists:
    def test_code_outside_list(self, valid_graph):
        obs = sorted(valid_graph.subjects(RDF.type, QB.Observation), key=str)[0]
        dimension = None
        for _, p, o in valid_graph.triples(obs, None, None):
            if p.local_name() == "refArea":
                dimension = p
                old = o
        valid_graph.discard((obs, dimension, old))
        valid_graph.add((obs, dimension, EX.Atlantis))
        assert "IC-19" in constraints(validate_graph(valid_graph))

    def test_literal_dimension_value(self, valid_graph):
        obs = sorted(valid_graph.subjects(RDF.type, QB.Observation), key=str)[0]
        dimension = None
        for _, p, o in valid_graph.triples(obs, None, None):
            if p.local_name() == "refPeriod":
                dimension = p
                old = o
        valid_graph.discard((obs, dimension, old))
        valid_graph.add((obs, dimension, Literal("2001")))
        assert "IC-19" in constraints(validate_graph(valid_graph))


class TestReporting:
    def test_violation_str_includes_constraint(self, valid_graph):
        valid_graph.add((EX.orphan, RDF.type, QB.Observation))
        violation = validate_graph(valid_graph)[0]
        assert "IC-1" in str(violation)

    def test_all_violations_reported_at_once(self, valid_graph):
        valid_graph.add((EX.orphan1, RDF.type, QB.Observation))
        valid_graph.add((EX.orphan2, RDF.type, QB.Observation))
        violations = validate_graph(valid_graph)
        assert len([v for v in violations if v.constraint == "IC-1"]) == 2
