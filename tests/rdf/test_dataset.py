"""Unit tests for RDF datasets (named graphs), N-Quads and TriG."""

import pytest

from repro.errors import ParseError, RDFError
from repro.rdf import (
    EX,
    Graph,
    Literal,
    RDFDataset,
    parse_nquads,
    parse_trig,
    serialize_nquads,
    serialize_trig,
)
from repro.rdf.terms import BNode, URIRef


@pytest.fixture
def dataset() -> RDFDataset:
    ds = RDFDataset()
    ds.add((EX.meta, EX.about, EX.corpus, None))
    ds.add((EX.a, EX.p, EX.b, EX.g1))
    ds.add((EX.a, EX.q, Literal(5), EX.g1))
    ds.add((EX.c, EX.p, EX.d, EX.g2))
    return ds


class TestRDFDataset:
    def test_default_and_named_graphs(self, dataset):
        assert len(dataset.default) == 1
        assert len(dataset.graph(EX.g1)) == 2
        assert dataset.names() == [EX.g1, EX.g2]
        assert len(dataset) == 4

    def test_contains(self, dataset):
        assert (EX.a, EX.p, EX.b, EX.g1) in dataset
        assert (EX.a, EX.p, EX.b, EX.g2) not in dataset
        assert (EX.meta, EX.about, EX.corpus, None) in dataset
        assert (EX.a, EX.p, EX.b, EX.ghost) not in dataset

    def test_quads_wildcard_graph(self, dataset):
        all_p = list(dataset.quads(None, EX.p, None))
        assert len(all_p) == 2
        only_g1 = list(dataset.quads(None, None, None, name=EX.g1))
        assert len(only_g1) == 2
        only_default = list(dataset.quads(None, None, None, name=None))
        assert len(only_default) == 1

    def test_union_graph(self, dataset):
        union = dataset.union_graph()
        assert len(union) == 4
        assert (EX.a, EX.p, EX.b) in union
        # union is a copy
        union.add((EX.new, EX.p, EX.o))
        assert len(dataset) == 4

    def test_discard(self, dataset):
        assert dataset.discard((EX.a, EX.p, EX.b, EX.g1)) is True
        assert dataset.discard((EX.a, EX.p, EX.b, EX.g1)) is False
        assert dataset.discard((EX.zz, EX.p, EX.b, EX.ghost)) is False

    def test_graph_create_flag(self, dataset):
        with pytest.raises(RDFError):
            dataset.graph(EX.nothere, create=False)
        fresh = dataset.graph(EX.nothere)  # create=True default
        assert isinstance(fresh, Graph)

    def test_graph_name_must_be_uri(self, dataset):
        with pytest.raises(RDFError):
            dataset.graph(BNode())  # type: ignore[arg-type]

    def test_equality_ignores_empty_graphs(self, dataset):
        other = RDFDataset()
        other.update(dataset.quads())
        other.graph(EX.empty)  # materialise an empty graph
        assert dataset == other


class TestNQuads:
    def test_round_trip(self, dataset):
        text = serialize_nquads(dataset)
        assert parse_nquads(text) == dataset

    def test_default_graph_lines_have_no_graph_term(self, dataset):
        text = serialize_nquads(dataset)
        line = next(l for l in text.splitlines() if "meta" in l)
        assert line.count("<") == 3

    def test_parse_mixed(self):
        ds = parse_nquads(
            '<http://e/s> <http://e/p> "v" <http://e/g> .\n'
            "<http://e/s> <http://e/p> <http://e/o> .\n"
        )
        assert len(ds.default) == 1
        assert len(ds.graph(URIRef("http://e/g"))) == 1

    def test_bad_line(self):
        with pytest.raises(ParseError):
            parse_nquads("<http://e/s> <http://e/p> .")


class TestTriG:
    def test_parse_both_block_styles(self):
        ds = parse_trig(
            """
            @prefix ex: <http://example.org/> .
            GRAPH ex:g1 { ex:a ex:p ex:b . }
            ex:g2 { ex:c ex:p ex:d . }
            """
        )
        assert ds.names() == [EX.g1, EX.g2]

    def test_default_graph_triples(self):
        ds = parse_trig(
            "@prefix ex: <http://example.org/> . ex:a ex:p ex:b ."
        )
        assert len(ds.default) == 1

    def test_final_dot_optional_before_brace(self):
        ds = parse_trig(
            "@prefix ex: <http://example.org/> . GRAPH ex:g { ex:a ex:p ex:b }"
        )
        assert len(ds.graph(EX.g)) == 1

    def test_turtle_features_inside_blocks(self):
        ds = parse_trig(
            """
            @prefix ex: <http://example.org/> .
            GRAPH ex:g { ex:a ex:p ex:b ; ex:q 1, 2 . }
            """
        )
        assert len(ds.graph(EX.g)) == 3

    def test_round_trip(self, dataset):
        assert parse_trig(serialize_trig(dataset)) == dataset

    def test_round_trip_without_default_graph(self):
        ds = RDFDataset()
        ds.add((EX.a, EX.p, EX.b, EX.g1))
        assert parse_trig(serialize_trig(ds)) == ds

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_trig("@prefix ex: <http://example.org/> . GRAPH ex:g { ex:a ex:p ex:b .")

    def test_literal_graph_name_rejected(self):
        with pytest.raises(ParseError):
            parse_trig('@prefix ex: <http://example.org/> . GRAPH "g" { ex:a ex:p ex:b . }')
