"""Unit tests for the indexed triple store."""

import pytest

from repro.errors import RDFError
from repro.rdf import EX, Graph, Literal, RDF, URIRef
from repro.rdf.terms import BNode


@pytest.fixture
def small_graph() -> Graph:
    g = Graph()
    g.add((EX.a, EX.p, EX.b))
    g.add((EX.a, EX.p, EX.c))
    g.add((EX.a, EX.q, Literal(1)))
    g.add((EX.b, EX.p, EX.c))
    return g


class TestMutation:
    def test_add_returns_true_for_new(self):
        g = Graph()
        assert g.add((EX.a, EX.p, EX.b)) is True
        assert g.add((EX.a, EX.p, EX.b)) is False
        assert len(g) == 1

    def test_update_counts_new(self, small_graph):
        added = small_graph.update([(EX.a, EX.p, EX.b), (EX.x, EX.p, EX.y)])
        assert added == 1
        assert len(small_graph) == 5

    def test_discard(self, small_graph):
        assert small_graph.discard((EX.a, EX.p, EX.b)) is True
        assert small_graph.discard((EX.a, EX.p, EX.b)) is False
        assert (EX.a, EX.p, EX.b) not in small_graph
        assert len(small_graph) == 3

    def test_discard_cleans_indexes(self):
        g = Graph([(EX.a, EX.p, EX.b)])
        g.discard((EX.a, EX.p, EX.b))
        assert list(g.triples(EX.a, None, None)) == []
        assert list(g.triples(None, EX.p, None)) == []
        assert list(g.triples(None, None, EX.b)) == []

    def test_clear(self, small_graph):
        small_graph.clear()
        assert len(small_graph) == 0
        assert not small_graph

    def test_invalid_subject_rejected(self):
        with pytest.raises(RDFError):
            Graph().add((Literal("x"), EX.p, EX.b))  # type: ignore[arg-type]

    def test_invalid_predicate_rejected(self):
        with pytest.raises(RDFError):
            Graph().add((EX.a, BNode(), EX.b))  # type: ignore[arg-type]


class TestPatterns:
    @pytest.mark.parametrize(
        "pattern,expected_count",
        [
            ((None, None, None), 4),
            (("s", None, None), 3),
            (("s", "p", None), 2),
            (("s", "p", "o"), 1),
            ((None, "p", None), 3),
            ((None, "p", "o"), 1),
            ((None, None, "o"), 1),
            (("s", None, "o"), 1),
        ],
    )
    def test_all_pattern_shapes(self, small_graph, pattern, expected_count):
        s = EX.a if pattern[0] else None
        p = EX.p if pattern[1] else None
        o = EX.b if pattern[2] else None
        assert len(list(small_graph.triples(s, p, o))) == expected_count

    def test_no_match(self, small_graph):
        assert list(small_graph.triples(EX.zzz, None, None)) == []
        assert list(small_graph.triples(None, EX.zzz, None)) == []

    def test_subjects_deduplicated(self, small_graph):
        assert sorted(small_graph.subjects(EX.p, None)) == [EX.a, EX.b]

    def test_objects(self, small_graph):
        assert sorted(small_graph.objects(EX.a, EX.p)) == [EX.b, EX.c]

    def test_predicates(self, small_graph):
        assert sorted(small_graph.predicates(EX.a, None)) == [EX.p, EX.q]

    def test_value(self, small_graph):
        assert small_graph.value(EX.a, EX.q, None) == Literal(1)
        assert small_graph.value(None, EX.q, Literal(1)) == EX.a
        assert small_graph.value(EX.zzz, EX.q, None) is None

    def test_value_requires_one_wildcard(self, small_graph):
        with pytest.raises(RDFError):
            small_graph.value(EX.a, None, None)


class TestSetOps:
    def test_union(self, small_graph):
        other = Graph([(EX.x, EX.p, EX.y)])
        merged = small_graph | other
        assert len(merged) == 5
        assert len(small_graph) == 4  # unchanged

    def test_difference(self, small_graph):
        other = Graph([(EX.a, EX.p, EX.b)])
        assert len(small_graph - other) == 3

    def test_intersection(self, small_graph):
        other = Graph([(EX.a, EX.p, EX.b), (EX.zz, EX.p, EX.b)])
        assert len(small_graph & other) == 1

    def test_equality_order_independent(self):
        g1 = Graph([(EX.a, EX.p, EX.b), (EX.b, EX.p, EX.c)])
        g2 = Graph([(EX.b, EX.p, EX.c), (EX.a, EX.p, EX.b)])
        assert g1 == g2

    def test_copy_is_independent(self, small_graph):
        copy = small_graph.copy()
        copy.add((EX.new, EX.p, EX.o))
        assert len(copy) == len(small_graph) + 1


class TestTraversal:
    def test_transitive_objects(self):
        g = Graph([(EX.a, EX.p, EX.b), (EX.b, EX.p, EX.c), (EX.x, EX.p, EX.y)])
        reachable = set(g.transitive_objects(EX.a, EX.p))
        assert reachable == {EX.a, EX.b, EX.c}

    def test_transitive_subjects(self):
        g = Graph([(EX.a, EX.p, EX.b), (EX.b, EX.p, EX.c)])
        assert set(g.transitive_subjects(EX.c, EX.p)) == {EX.a, EX.b, EX.c}

    def test_transitive_handles_cycles(self):
        g = Graph([(EX.a, EX.p, EX.b), (EX.b, EX.p, EX.a)])
        assert set(g.transitive_objects(EX.a, EX.p)) == {EX.a, EX.b}

    def test_type_lookup(self, small_graph):
        small_graph.add((EX.a, RDF.type, EX.Thing))
        assert set(small_graph.subjects(RDF.type, EX.Thing)) == {EX.a}


class TestParseSerializeConvenience:
    def test_turtle_round_trip(self, small_graph):
        text = small_graph.serialize()
        assert Graph().parse(text) == small_graph

    def test_ntriples_round_trip(self, small_graph):
        text = small_graph.serialize(format="nt")
        assert Graph().parse(text, format="nt") == small_graph

    def test_parse_returns_self(self):
        g = Graph()
        assert g.parse("<http://e/a> <http://e/p> <http://e/b> .", format="nt") is g
        assert len(g) == 1

    def test_unknown_format_rejected(self, small_graph):
        with pytest.raises(RDFError):
            small_graph.serialize(format="rdfxml")
        with pytest.raises(RDFError):
            Graph().parse("", format="jsonld")
