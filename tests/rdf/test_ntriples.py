"""Unit tests for the N-Triples parser/serializer."""

import io

import pytest

from repro.errors import ParseError
from repro.rdf import EX, Graph, Literal, URIRef
from repro.rdf.ntriples import iter_ntriples, parse_ntriples, serialize_ntriples
from repro.rdf.terms import BNode


class TestParsing:
    def test_simple_triple(self):
        g = parse_ntriples('<http://e/a> <http://e/p> <http://e/b> .')
        assert (URIRef("http://e/a"), URIRef("http://e/p"), URIRef("http://e/b")) in g

    def test_literal_plain(self):
        g = parse_ntriples('<http://e/a> <http://e/p> "hello" .')
        assert next(iter(g))[2] == Literal("hello")

    def test_literal_typed(self):
        g = parse_ntriples(
            '<http://e/a> <http://e/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert next(iter(g))[2].to_python() == 5

    def test_literal_lang(self):
        g = parse_ntriples('<http://e/a> <http://e/p> "bonjour"@fr .')
        assert next(iter(g))[2].language == "fr"

    def test_bnode_subject_and_object(self):
        g = parse_ntriples("_:x <http://e/p> _:y .")
        s, _, o = next(iter(g))
        assert s == BNode("x") and o == BNode("y")

    def test_escaped_literal(self):
        g = parse_ntriples('<http://e/a> <http://e/p> "line1\\nline2\\t\\"q\\"" .')
        assert next(iter(g))[2].lexical == 'line1\nline2\t"q"'

    def test_comments_and_blanks_skipped(self):
        text = "\n# a comment\n\n<http://e/a> <http://e/p> <http://e/b> .\n"
        assert len(parse_ntriples(text)) == 1

    def test_trailing_comment_allowed(self):
        g = parse_ntriples('<http://e/a> <http://e/p> <http://e/b> . # note')
        assert len(g) == 1

    def test_invalid_line_raises_with_line_number(self):
        with pytest.raises(ParseError) as info:
            parse_ntriples("<http://e/a> <http://e/p> .")
        assert info.value.line == 1

    def test_iter_streams_from_iterable(self):
        lines = ['<http://e/a> <http://e/p> <http://e/b> .'] * 3
        assert len(list(iter_ntriples(iter(lines)))) == 3

    def test_parse_into_existing_graph(self):
        g = Graph([(EX.x, EX.p, EX.y)])
        parse_ntriples('<http://e/a> <http://e/p> <http://e/b> .', graph=g)
        assert len(g) == 2


class TestSerialization:
    def test_round_trip(self):
        g = Graph()
        g.add((EX.a, EX.p, EX.b))
        g.add((EX.a, EX.q, Literal("x\ny", language="en")))
        g.add((BNode("n"), EX.p, Literal(3)))
        assert parse_ntriples(serialize_ntriples(g)) == g

    def test_sorted_deterministic(self):
        g1 = Graph([(EX.b, EX.p, EX.c), (EX.a, EX.p, EX.b)])
        g2 = Graph([(EX.a, EX.p, EX.b), (EX.b, EX.p, EX.c)])
        assert serialize_ntriples(g1) == serialize_ntriples(g2)

    def test_write_to_stream(self):
        g = Graph([(EX.a, EX.p, EX.b)])
        buffer = io.StringIO()
        assert serialize_ntriples(g, out=buffer) is None
        assert parse_ntriples(buffer.getvalue()) == g

    def test_empty_graph(self):
        assert serialize_ntriples(Graph()) == ""
