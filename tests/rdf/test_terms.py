"""Unit tests for the RDF term model."""

import pytest
from decimal import Decimal

from repro.errors import TermError
from repro.rdf.terms import (
    BNode,
    Literal,
    Namespace,
    URIRef,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    unescape_string,
)


class TestURIRef:
    def test_behaves_like_string(self):
        uri = URIRef("http://example.org/a")
        assert uri == "http://example.org/a"
        assert uri.startswith("http://")

    def test_n3(self):
        assert URIRef("http://example.org/a").n3() == "<http://example.org/a>"

    def test_empty_rejected(self):
        with pytest.raises(TermError):
            URIRef("")

    def test_forbidden_characters_rejected(self):
        with pytest.raises(TermError):
            URIRef("http://example.org/has space")
        with pytest.raises(TermError):
            URIRef("http://example.org/<bad>")

    def test_local_name_hash(self):
        assert URIRef("http://example.org/ns#Population").local_name() == "Population"

    def test_local_name_slash(self):
        assert URIRef("http://example.org/code/GR").local_name() == "GR"

    def test_local_name_trailing_slash_falls_back(self):
        assert URIRef("http://example.org/code/").local_name() == "code"

    def test_equality_and_hash(self):
        a = URIRef("http://example.org/x")
        b = URIRef("http://example.org/x")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestBNode:
    def test_fresh_labels_unique(self):
        assert BNode() != BNode()

    def test_explicit_label(self):
        assert str(BNode("b42")) == "b42"

    def test_n3(self):
        assert BNode("x1").n3() == "_:x1"

    def test_invalid_label_rejected(self):
        with pytest.raises(TermError):
            BNode("has space")


class TestLiteral:
    def test_plain(self):
        lit = Literal("hello")
        assert lit.lexical == "hello"
        assert lit.datatype is None
        assert lit.n3() == '"hello"'

    def test_int_inference(self):
        lit = Literal(42)
        assert str(lit.datatype) == XSD_INTEGER
        assert lit.to_python() == 42

    def test_float_inference(self):
        lit = Literal(2.5)
        assert str(lit.datatype) == XSD_DOUBLE
        assert lit.to_python() == 2.5

    def test_bool_inference(self):
        assert Literal(True).lexical == "true"
        assert str(Literal(False).datatype) == XSD_BOOLEAN
        assert Literal(True).to_python() is True

    def test_decimal_inference(self):
        lit = Literal(Decimal("1.50"))
        assert str(lit.datatype) == XSD_DECIMAL
        assert lit.to_python() == Decimal("1.50")

    def test_language_tag(self):
        lit = Literal("bonjour", language="fr")
        assert lit.n3() == '"bonjour"@fr'
        assert lit.to_python() == "bonjour"

    def test_language_and_datatype_conflict(self):
        with pytest.raises(TermError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_bad_language_tag(self):
        with pytest.raises(TermError):
            Literal("x", language="not a tag")

    def test_escaping_round_trip(self):
        lit = Literal('say "hi"\nplease\t\\ok')
        n3 = lit.n3()
        assert unescape_string(n3[1:-1]) == lit.lexical

    def test_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"

    def test_equality_includes_datatype(self):
        assert Literal("1") != Literal("1", datatype=XSD_INTEGER)
        assert Literal("1", datatype=XSD_INTEGER) == Literal(1)

    def test_bad_integer_to_python(self):
        with pytest.raises(TermError):
            Literal("abc", datatype=XSD_INTEGER).to_python()


class TestOrdering:
    def test_kind_order(self):
        uri = URIRef("http://z.example/")
        bnode = BNode("a")
        literal = Literal("a")
        assert uri < bnode < literal

    def test_uris_sort_lexicographically(self):
        a = URIRef("http://example.org/a")
        b = URIRef("http://example.org/b")
        assert a < b
        assert sorted([b, a]) == [a, b]


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://example.org/")
        assert ns.population == URIRef("http://example.org/population")

    def test_item_access(self):
        ns = Namespace("http://example.org/")
        assert ns["ref-area"] == URIRef("http://example.org/ref-area")

    def test_term_method(self):
        ns = Namespace("http://example.org/")
        assert ns.term("term") == URIRef("http://example.org/term")


class TestUnescape:
    def test_unicode_escapes(self):
        assert unescape_string("\\u0041") == "A"
        assert unescape_string("\\U0001F600") == "\U0001F600"

    def test_unknown_escape_rejected(self):
        with pytest.raises(TermError):
            unescape_string("\\q")

    def test_dangling_backslash_rejected(self):
        with pytest.raises(TermError):
            unescape_string("abc\\")
