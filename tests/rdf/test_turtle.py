"""Unit tests for the Turtle parser/serializer."""

import pytest

from repro.errors import ParseError
from repro.rdf import EX, Graph, Literal, RDF, XSD, parse_turtle, serialize_turtle
from repro.rdf.terms import BNode, URIRef


class TestDirectives:
    def test_prefix(self):
        g = parse_turtle("@prefix e: <http://e/> . e:a e:p e:b .")
        assert (URIRef("http://e/a"), URIRef("http://e/p"), URIRef("http://e/b")) in g

    def test_sparql_style_prefix(self):
        g = parse_turtle("PREFIX e: <http://e/>\ne:a e:p e:b .")
        assert len(g) == 1

    def test_base_resolution(self):
        g = parse_turtle("@base <http://e/> . <a> <p> <b> .")
        assert (URIRef("http://e/a"), URIRef("http://e/p"), URIRef("http://e/b")) in g

    def test_undefined_prefix_rejected(self):
        with pytest.raises(ParseError):
            parse_turtle("zzz:a zzz:p zzz:b .")

    def test_default_prefixes_not_preloaded(self):
        # The parser must not silently inherit library namespaces.
        with pytest.raises(ParseError):
            parse_turtle("qb:a qb:p qb:b .")


class TestStatements:
    def test_a_keyword(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x a e:Thing .")
        assert (URIRef("http://e/x"), RDF.type, URIRef("http://e/Thing")) in g

    def test_predicate_list(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p e:a ; e:q e:b .")
        assert len(g) == 2

    def test_object_list(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p e:a , e:b , e:c .")
        assert len(g) == 3

    def test_trailing_semicolon(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p e:a ; .")
        assert len(g) == 1

    def test_anonymous_bnode(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p [ e:q e:y ] .")
        assert len(g) == 2
        inner = [t for t in g if isinstance(t[0], BNode)]
        assert len(inner) == 1

    def test_empty_bnode(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p [] .")
        assert len(g) == 1

    def test_collection(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p ( e:a e:b ) .")
        firsts = {o for _, p, o in g if p == RDF.first}
        assert firsts == {URIRef("http://e/a"), URIRef("http://e/b")}
        assert any(o == RDF.nil for _, p, o in g if p == RDF.rest)

    def test_empty_collection_is_nil(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p () .")
        assert (URIRef("http://e/x"), URIRef("http://e/p"), RDF.nil) in g

    def test_labelled_bnode(self):
        g = parse_turtle("@prefix e: <http://e/> . _:n e:p e:x .")
        assert next(iter(g))[0] == BNode("n")

    def test_comments(self):
        g = parse_turtle("# header\n@prefix e: <http://e/> . # inline\ne:a e:p e:b .")
        assert len(g) == 1


class TestLiterals:
    def test_bare_numbers(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:a 42 ; e:b 3.14 ; e:c 1e6 .")
        values = {p.local_name(): o for _, p, o in g}
        assert values["a"].to_python() == 42
        assert str(values["b"].datatype) == str(XSD.decimal)
        assert str(values["c"].datatype) == str(XSD.double)

    def test_booleans(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p true , false .")
        assert {o.to_python() for _, _, o in g} == {True, False}

    def test_typed_literal_with_pname_datatype(self):
        g = parse_turtle(
            "@prefix e: <http://e/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> . "
            'e:x e:p "7"^^xsd:integer .'
        )
        assert next(iter(g))[2].to_python() == 7

    def test_long_string(self):
        g = parse_turtle('@prefix e: <http://e/> . e:x e:p """multi\nline""" .')
        assert next(iter(g))[2].lexical == "multi\nline"

    def test_language_literal(self):
        g = parse_turtle('@prefix e: <http://e/> . e:x e:p "bonjour"@fr .')
        assert next(iter(g))[2].language == "fr"

    def test_negative_number(self):
        g = parse_turtle("@prefix e: <http://e/> . e:x e:p -5 .")
        assert next(iter(g))[2].to_python() == -5


class TestErrors:
    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix e: <http://e/> . e:a e:p e:b")

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            parse_turtle('@prefix e: <http://e/> . "lit" e:p e:b .')

    def test_literal_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_turtle('@prefix e: <http://e/> . e:a "lit" e:b .')

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_turtle("@prefix e: <http://e/> .\n\ne:a e:p ?? .")
        assert info.value.line == 3


class TestSerialization:
    def test_round_trip_mixed(self):
        g = Graph()
        g.add((EX.obs, RDF.type, EX.Observation))
        g.add((EX.obs, EX.geo, EX.DE))
        # 'count' collides with str.count, so attribute access would
        # return the method; Namespace.term is the escape hatch.
        g.add((EX.obs, EX.term("count"), Literal(7)))
        g.add((EX.obs, EX.rate, Literal(2.5)))
        g.add((EX.obs, EX.label, Literal("Seven", language="en")))
        g.add((BNode("n1"), EX.p, EX.obs))
        assert parse_turtle(serialize_turtle(g)) == g

    def test_only_used_prefixes_declared(self):
        g = Graph([(EX.a, EX.p, EX.b)])
        text = serialize_turtle(g)
        assert "@prefix ex:" in text
        assert "@prefix skos:" not in text

    def test_deterministic(self):
        g1 = Graph([(EX.b, EX.p, EX.c), (EX.a, EX.p, EX.b)])
        g2 = Graph([(EX.a, EX.p, EX.b), (EX.b, EX.p, EX.c)])
        assert serialize_turtle(g1) == serialize_turtle(g2)

    def test_empty_graph(self):
        assert serialize_turtle(Graph()) == ""

    def test_numeric_literals_bare(self):
        g = Graph([(EX.a, EX.p, Literal(5))])
        assert " 5 ." in serialize_turtle(g) or " 5 ;" in serialize_turtle(g)
