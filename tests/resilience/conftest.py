"""Shared fixtures for the resilience suite.

Fault injectors are process-wide state; the autouse fixture guarantees
no test leaks one into the next (or into the rest of the run).
"""

import pytest

from repro.resilience.faults import clear_injector


@pytest.fixture(autouse=True)
def no_leaked_injector(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clear_injector()
    yield
    clear_injector()


@pytest.fixture()
def seeded_store(tmp_path):
    """A small committed segment store (4 full + 4 partial pairs)."""
    from repro.resilience.chaos import build_seed_store
    from repro.storage import SegmentStore

    path = tmp_path / "links.rseg"
    build_seed_store(path)
    store = SegmentStore.open(path)
    yield store
    store.close()
