"""The storage circuit breaker: triggers, state machine, HTTP mapping."""

import json
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.errors import CircuitOpenError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(**kwargs):
    clock = FakeClock()
    defaults = dict(window=8, failure_threshold=0.5, min_samples=4, reset_timeout=5.0)
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, **defaults), clock


class TestTriggers:
    def test_stays_closed_below_min_samples(self):
        breaker, _ = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_opens_on_failure_rate(self):
        breaker, _ = make_breaker()
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_healthy_traffic_never_trips(self):
        breaker, _ = make_breaker()
        for _ in range(50):
            breaker.record_success(latency=0.001)
        assert breaker.state == CLOSED

    def test_slow_successes_trip_latency_trigger(self):
        breaker, _ = make_breaker(latency_threshold=0.1, latency_fraction=0.5)
        for _ in range(4):
            breaker.record_success(latency=5.0)  # "working" at 5 s/read
        assert breaker.state == OPEN

    def test_latency_trigger_off_by_default(self):
        breaker, _ = make_breaker()
        for _ in range(8):
            breaker.record_success(latency=60.0)
        assert breaker.state == CLOSED


class TestStateMachine:
    def trip(self, breaker):
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_refuses_until_reset_timeout(self):
        breaker, clock = make_breaker()
        self.trip(breaker)
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe

    def test_half_open_admits_limited_probes(self):
        breaker, clock = make_breaker(half_open_probes=1)
        self.trip(breaker)
        clock.advance(5.1)
        assert breaker.allow()
        assert not breaker.allow()  # second concurrent call is refused

    def test_successful_probe_closes_and_clears_window(self):
        breaker, clock = make_breaker()
        self.trip(breaker)
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats()["samples"] == 0  # stale window discarded

    def test_failed_probe_reopens_and_restarts_timer(self):
        breaker, clock = make_breaker()
        self.trip(breaker)
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(2.0)
        assert breaker.state == OPEN  # timer restarted at the probe failure
        clock.advance(3.5)
        assert breaker.state == HALF_OPEN

    def test_retry_after_shrinks_as_reset_nears(self):
        breaker, clock = make_breaker()
        self.trip(breaker)
        first = breaker.retry_after()
        clock.advance(3.0)
        assert breaker.retry_after() < first


class TestCallWrapper:
    def test_call_records_outcomes_and_raises_when_open(self):
        breaker, _ = make_breaker()

        def boom():
            raise OSError("EIO")

        for _ in range(4):
            with pytest.raises(OSError):
                breaker.call(boom)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(boom)
        assert excinfo.value.retry_after > 0

    def test_call_passes_through_value(self):
        breaker, _ = make_breaker()
        assert breaker.call(lambda x: x * 2, 21) == 42
        assert breaker.stats()["samples"] == 1


class TestHTTP503:
    def test_open_breaker_maps_to_503_with_retry_after(self, tmp_path):
        from repro.resilience.chaos import build_seed_store
        from repro.resilience.faults import install_injector
        from repro.service import QueryEngine, start_server
        from repro.storage import LazyRelationshipIndex, SegmentStore

        build_seed_store(tmp_path / "links.rseg")
        store = SegmentStore.open(tmp_path / "links.rseg")
        store.breaker = CircuitBreaker(
            window=4, min_samples=2, failure_threshold=0.5, reset_timeout=60.0
        )
        result = store.relationship_set()
        engine = QueryEngine(result, index=LazyRelationshipIndex(result, None))
        server = start_server(engine)
        host, port = server.server_address
        install_injector("segment.read:error:times=inf")
        uri = quote("urn:chaos:seed:0:a", safe="")
        try:
            statuses = []
            for _ in range(3):
                try:
                    urllib.request.urlopen(
                        f"http://{host}:{port}/observations/{uri}/containers"
                    )
                except urllib.error.HTTPError as exc:
                    statuses.append(exc.code)
                    if exc.code == 503:
                        assert int(exc.headers["Retry-After"]) >= 1
                        assert "breaker" in json.load(exc)["error"]
            # Injected read errors surface as 400s until the breaker
            # trips; from then on the server fails fast with 503.
            assert statuses[-1] == 503
            assert store.breaker.state == OPEN
            # The observability endpoints must survive the outage:
            # liveness degrades instead of 503ing (no restart churn),
            # and /metrics still scrapes (registry-only) — that's when
            # operators need it most.
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                assert response.status == 200
                assert json.load(response)["status"] == "degraded"
            with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
                assert response.status == 200
                assert b"repro_breaker_state 2" in response.read()
        finally:
            server.shutdown()
            server.server_close()
            store.close()
