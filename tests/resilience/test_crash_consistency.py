"""Randomized SIGKILL crash trials: no silent loss, no unrecoverable state.

A small sample per CI run; ``benchmarks/bench_chaos.py`` drives the
full ≥200-point acceptance run.  Scale the sample with
``REPRO_CRASH_POINTS`` (e.g. in the chaos-smoke CI job).
"""

import os

import pytest

from repro.resilience.chaos import CRASH_POINTS, crash_trial, run_crash_trials, trial_spec

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash trials fork the writer"
)

POINTS = int(os.environ.get("REPRO_CRASH_POINTS", "25"))


class TestTrialSpecs:
    def test_specs_are_deterministic_in_seed(self):
        assert trial_spec(7) == trial_spec(7)
        specs = {trial_spec(seed)[0] for seed in range(64)}
        assert len(specs) > 5  # seeds spread over sites and depths

    def test_specs_draw_from_every_crash_point(self):
        sites = {trial_spec(seed)[0].rsplit(":after", 1)[0] for seed in range(200)}
        assert sites == {f"{site}:{mode}" for site, mode in CRASH_POINTS}


class TestCrashRecovery:
    def test_single_torn_append_trial(self, tmp_path):
        # seed chosen so the drawn fault is a torn wal.append
        seed = next(s for s in range(100) if trial_spec(s)[0].startswith("wal.append:torn"))
        outcome = crash_trial(tmp_path, seed=seed)
        assert outcome["crashed"]

    def test_randomized_trials_all_recover(self, tmp_path):
        report = run_crash_trials(tmp_path, points=POINTS, seed=2026)
        assert report["points"] == POINTS
        assert report["crashed"] + report["clean"] == POINTS
        # The run must actually exercise crashes, not luck into clean
        # completions — otherwise the assertion above proves nothing.
        assert report["crashed"] > 0
        assert sum(report["by_crash_point"].values()) == POINTS
