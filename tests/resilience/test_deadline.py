"""Per-request deadlines: the contextvar, the checkpoints, the 504."""

import json
import time
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.errors import DeadlineExceededError
from repro.resilience.deadline import (
    Deadline,
    bind_deadline,
    check_deadline,
    current_deadline,
    remaining_ms,
)
from repro.resilience.faults import install_injector


class TestDeadline:
    def test_positive_budget_required(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5)

    def test_fresh_deadline_passes_check(self):
        Deadline(60_000).check("test")

    def test_expired_deadline_raises_with_site(self):
        deadline = Deadline(0.001)
        time.sleep(0.005)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("segment.read")
        assert excinfo.value.site == "segment.read"
        assert excinfo.value.overrun_ms > 0

    def test_remaining_counts_down(self):
        deadline = Deadline(10_000)
        first = deadline.remaining()
        time.sleep(0.01)
        assert deadline.remaining() < first
        assert not deadline.expired


class TestBinding:
    def test_check_is_noop_when_unbound(self):
        assert current_deadline() is None
        check_deadline("anywhere")  # must not raise

    def test_bound_deadline_reaches_checkpoints(self):
        with bind_deadline(Deadline(0.001)):
            time.sleep(0.005)
            with pytest.raises(DeadlineExceededError):
                check_deadline("engine.query")
        check_deadline("engine.query")  # unbound again: no-op

    def test_binding_none_clears_inherited_deadline(self):
        with bind_deadline(Deadline(0.001)):
            time.sleep(0.005)
            with bind_deadline(None):  # background work opts out
                check_deadline("background")
            with pytest.raises(DeadlineExceededError):
                check_deadline("request")

    def test_remaining_ms_reflects_binding(self):
        assert remaining_ms() is None
        with bind_deadline(Deadline(5_000)):
            assert 0 < remaining_ms() <= 5_000


class TestHTTP504:
    @pytest.fixture()
    def served_store(self, tmp_path):
        from repro.resilience.chaos import build_seed_store
        from repro.service import QueryEngine, start_server
        from repro.storage import LazyRelationshipIndex, SegmentStore

        build_seed_store(tmp_path / "links.rseg")
        store = SegmentStore.open(tmp_path / "links.rseg")
        result = store.relationship_set()
        engine = QueryEngine(
            result, index=LazyRelationshipIndex(result, None), storage_info=store.describe
        )
        server = start_server(engine)
        host, port = server.server_address
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        store.close()

    def test_deadline_header_expires_into_504(self, served_store):
        # Slow storage (injected 150 ms per segment read) burns the
        # 20 ms budget; the next checkpoint after the read answers 504.
        install_injector("segment.read:delay:seconds=0.15:times=inf")
        uri = quote("urn:chaos:seed:0:a", safe="")
        request = urllib.request.Request(
            f"{served_store}/observations/{uri}/containers",
            headers={"X-Deadline-Ms": "20"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 504
        assert "deadline" in json.load(excinfo.value)["error"].lower()

    def test_generous_deadline_succeeds(self, served_store):
        uri = quote("urn:chaos:seed:0:a", safe="")
        request = urllib.request.Request(
            f"{served_store}/observations/{uri}/containers",
            headers={"X-Deadline-Ms": "30000"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200

    def test_malformed_deadline_header_is_400(self, served_store):
        request = urllib.request.Request(
            f"{served_store}/healthz", headers={"X-Deadline-Ms": "soon"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
