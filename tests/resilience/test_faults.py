"""The fault-injection seam: spec grammar, determinism, site dispatch."""

import os
import subprocess
import sys

import pytest

from repro.errors import ComputationError
from repro.resilience.faults import (
    KILL_EXIT_CODE,
    FaultInjector,
    InjectedFault,
    SiteFault,
    clear_injector,
    get_injector,
    inject,
    install_injector,
    parse_chaos_spec,
)


class TestChaosSpec:
    def test_single_clause(self):
        injector = parse_chaos_spec("segment.read:error")
        assert len(injector.faults) == 1
        fault = injector.faults[0]
        assert (fault.site, fault.mode, fault.times) == ("segment.read", "error", 1)

    def test_options_parse(self):
        injector = parse_chaos_spec(
            "wal.append:torn:after=3:times=2,seed=9,segment.read:delay:seconds=0.25:p=0.5:times=inf"
        )
        assert injector.seed == 9
        torn, delay = injector.faults
        assert (torn.after, torn.times) == (3, 2)
        assert delay.times is None
        assert delay.seconds == 0.25
        assert delay.probability == 0.5

    @pytest.mark.parametrize(
        "bad",
        [
            "segment.read",  # no mode
            "segment.read:explode",  # unknown mode
            "segment.read:error:times",  # option without value
            "segment.read:error:frequency=2",  # unknown option
            "segment.read:error:p=1.5",  # probability out of range
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_chaos_spec(bad)


class TestInjector:
    def test_error_mode_raises_retryable_error(self):
        injector = FaultInjector([SiteFault("segment.read", "error")])
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("segment.read")
        assert isinstance(excinfo.value, ComputationError)
        # times=1 by default: the second hit passes clean
        assert injector.fire("segment.read") is None

    def test_after_skips_initial_hits(self):
        injector = FaultInjector([SiteFault("wal.append", "error", after=2)])
        assert injector.fire("wal.append") is None
        assert injector.fire("wal.append") is None
        with pytest.raises(InjectedFault):
            injector.fire("wal.append")

    def test_unlimited_times(self):
        injector = FaultInjector([SiteFault("x", "error", times=None)])
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector.fire("x")

    def test_wildcard_site(self):
        injector = FaultInjector([SiteFault("*", "error", times=None)])
        with pytest.raises(InjectedFault):
            injector.fire("segment.read")
        with pytest.raises(InjectedFault):
            injector.fire("anything.else")

    def test_probability_is_deterministic_in_seed(self):
        def firings(seed):
            injector = FaultInjector(
                [SiteFault("s", "error", times=None, probability=0.5)], seed=seed
            )
            out = []
            for _ in range(32):
                try:
                    injector.fire("s")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        assert firings(3) == firings(3)
        assert firings(3) != firings(4)  # astronomically unlikely to collide
        assert any(firings(3)) and not all(firings(3))

    def test_torn_returned_only_to_torn_capable_site(self):
        injector = FaultInjector([SiteFault("wal.append", "torn", times=None)])
        action = injector.fire("wal.append", torn_capable=True)
        assert action is not None and action.mode == "torn"
        with pytest.raises(InjectedFault):  # degrades to error elsewhere
            injector.fire("wal.append", torn_capable=False)

    def test_counts_report_firings(self):
        injector = FaultInjector([SiteFault("a", "error", times=2)])
        for _ in range(3):
            try:
                injector.fire("a")
            except InjectedFault:
                pass
        assert injector.counts() == {"a:error": 2}


class TestProcessWideInstall:
    def test_inject_is_noop_without_injector(self):
        assert inject("segment.read") is None

    def test_install_from_spec_string(self):
        install_injector("segment.read:error")
        with pytest.raises(InjectedFault):
            inject("segment.read")

    def test_clear_uninstalls(self):
        install_injector("segment.read:error")
        clear_injector()
        assert inject("segment.read") is None

    def test_env_var_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "segment.read:error")
        clear_injector()  # re-arm env discovery
        assert get_injector() is not None
        with pytest.raises(InjectedFault):
            inject("segment.read")

    def test_explicit_install_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "segment.read:error")
        clear_injector()
        install_injector(None)  # explicit "no chaos"
        assert inject("segment.read") is None

    def test_kill_mode_hard_exits(self):
        # A kill fault must end the process with the distinctive code —
        # proven in a scratch subprocess, not in the test runner.
        code = (
            "from repro.resilience.faults import install_injector, inject\n"
            "install_injector('boom:kill')\n"
            "inject('boom')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode == KILL_EXIT_CODE
        assert b"survived" not in proc.stdout


class TestWiredSites:
    def test_segment_read_fault_surfaces_from_load(self, seeded_store):
        install_injector("segment.read:error")
        with pytest.raises(InjectedFault):
            seeded_store.load()
        # transient (times=1): the retry succeeds
        assert len(seeded_store.load().full) == 4

    def test_worker_start_site_fires(self):
        from repro.core.parallel import _initializer

        install_injector("worker.start:error")
        with pytest.raises(InjectedFault):
            _initializer("nonexistent", {})
