"""Cross-process interleavings: repair vs live readers, scrub vs compact.

Two families of race the storage protocol must survive:

* **Atomic-replace vs zero-copy readers** — torn-tail WAL repair and
  compaction both rewrite files with ``os.replace`` while a concurrent
  reader may hold the *old* inode mmap'd.  POSIX keeps the unlinked
  inode alive for the mapping, so the reader's bytes must stay intact.
* **Writer flock ordering** — a mutating scrub and a compaction both
  take the store's writer ``flock``; whichever loses must fail loudly
  (:class:`StorageError`) instead of interleaving manifest commits.
"""

import mmap

import pytest

from repro.core.results import RelationshipDelta
from repro.errors import StorageError
from repro.rdf.terms import URIRef
from repro.resilience.scrub import scrub_store
from repro.storage import SegmentStore


def first_segment(store):
    return store.path / store.manifest["segments"][0]["name"]


PAIR = (URIRef("urn:race:container"), URIRef("urn:race:contained"))


class TestRepairWithConcurrentReader:
    def test_torn_tail_repair_leaves_mmap_reader_intact(self, seeded_store):
        seeded_store.append_delta(RelationshipDelta(added_full={PAIR}))
        wal_path = seeded_store.wal.path
        seeded_store.close()  # the writer "crashes"...
        with open(wal_path, "a", encoding="utf-8") as handle:
            handle.write('deadbeef {"type": "delta"')  # ...mid-append

        # A reader from before the crash still holds the segment mmap'd.
        with open(first_segment(seeded_store), "rb") as seg_handle:
            reader = mmap.mmap(seg_handle.fileno(), 0, access=mmap.ACCESS_READ)
            before = bytes(reader)

            store = SegmentStore.open(seeded_store.path)
            loaded = store.load(apply_wal=True)  # repairs the tail in passing
            # The acked append survived; only the torn line was dropped.
            assert PAIR in loaded.full
            assert len(loaded.full) == 5
            records, repaired = store.wal.records(repair=False)
            assert len(records) == 1 and not repaired  # tail already clean

            # The concurrent reader's mapping never changed underneath it.
            assert bytes(reader) == before
            reader.close()
            store.close()

    def test_compact_leaves_mmap_reader_on_old_inode(self, seeded_store):
        with open(first_segment(seeded_store), "rb") as seg_handle:
            reader = mmap.mmap(seg_handle.fileno(), 0, access=mmap.ACCESS_READ)
            before = bytes(reader)

            seeded_store.append_delta(RelationshipDelta(added_full={PAIR}))
            seeded_store.compact()  # rewrites segments, bumps generation

            # New readers see the new generation...
            assert PAIR in seeded_store.load().full
            # ...while the old mapping still reads the unlinked inode.
            assert bytes(reader) == before
            reader.close()


class TestScrubCompactFlockOrdering:
    def test_compact_refused_while_another_writer_holds_lock(self, seeded_store):
        other = SegmentStore.open(seeded_store.path)
        seeded_store.acquire_writer_lock()
        try:
            with pytest.raises(StorageError, match="locked by another writer"):
                other.compact()
        finally:
            seeded_store.release_writer_lock()
            other.close()

    def test_mutating_scrub_refused_while_writer_holds_lock(self, seeded_store):
        other = SegmentStore.open(seeded_store.path)
        seeded_store.acquire_writer_lock()
        try:
            with pytest.raises(StorageError, match="locked by another writer"):
                scrub_store(other, repair=True)
            # A pure audit takes no lock, so it proceeds concurrently.
            assert scrub_store(other, repair=False)["ok"]
        finally:
            seeded_store.release_writer_lock()
            other.close()

    def test_scrub_on_lock_holder_keeps_the_lock(self, seeded_store):
        # A serving process scrubbing its own store must not drop the
        # writer lock it already holds (that would let a concurrent
        # compactor slip in mid-serve).
        seeded_store.acquire_writer_lock()
        try:
            assert scrub_store(seeded_store)["ok"]
            assert seeded_store._lock_handle is not None
        finally:
            seeded_store.release_writer_lock()

    def test_lock_release_unblocks_the_loser(self, seeded_store):
        other = SegmentStore.open(seeded_store.path)
        seeded_store.acquire_writer_lock()
        seeded_store.release_writer_lock()
        try:
            assert "segments" in other.compact()
        finally:
            other.close()
