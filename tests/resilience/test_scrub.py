"""The scrubber: verify, quarantine, rebuild, report."""

import shutil

from repro.resilience.scrub import QUARANTINE_SUFFIX, scrub_store
from repro.storage import SegmentStore


def corrupt(path) -> None:
    """Flip one mid-file byte — classic at-rest bit rot."""
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


def segment_paths(store):
    return [store.path / entry["name"] for entry in store.manifest["segments"]]


class TestVerification:
    def test_healthy_store_reports_ok(self, seeded_store):
        report = scrub_store(seeded_store)
        assert report["ok"]
        assert report["verified"] == report["segments"] == 1
        assert not report["quarantined"] and not report["irreparable"]
        assert report["wal"] == {"records": 0, "torn_tail": False}

    def test_accepts_a_path_too(self, seeded_store):
        assert scrub_store(seeded_store.path)["ok"]

    def test_deep_scrub_catches_count_mismatch(self, seeded_store):
        entry = seeded_store.manifest["segments"][0]
        entry["full"] += 1  # manifest promises a pair the file lacks
        report = scrub_store(seeded_store, repair=False, deep=True)
        assert not report["ok"]

    def test_shallow_scrub_trusts_crc(self, seeded_store):
        entry = seeded_store.manifest["segments"][0]
        entry["full"] += 1
        assert scrub_store(seeded_store, repair=False, deep=False)["ok"]


class TestCheckOnly:
    def test_audit_reports_without_touching_disk(self, seeded_store):
        path = segment_paths(seeded_store)[0]
        corrupt(path)
        before = path.read_bytes()
        report = scrub_store(seeded_store, repair=False)
        assert not report["ok"]
        assert report["quarantined"] == [path.name]
        assert path.read_bytes() == before  # nothing moved or rewritten
        assert not path.with_name(path.name + QUARANTINE_SUFFIX).exists()


class TestQuarantineAndRepair:
    def test_corrupt_segment_is_quarantined(self, seeded_store):
        path = segment_paths(seeded_store)[0]
        corrupt(path)
        report = scrub_store(seeded_store, repair=True)
        assert not report["ok"]
        assert not path.exists()
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()

    def test_irreparable_loss_is_recorded_and_store_stays_loadable(self, seeded_store):
        path = segment_paths(seeded_store)[0]
        corrupt(path)
        report = scrub_store(seeded_store, repair=True)
        assert report["irreparable"][0]["name"] == path.name
        assert report["irreparable"][0]["full"] == 4
        # The loss is durable in the manifest, not just in the report...
        reopened = SegmentStore.open(seeded_store.path)
        assert reopened.manifest["quarantined"][0]["name"] == path.name
        # ...and the store serves its surviving partitions (none here)
        # instead of erroring on every load.
        assert len(reopened.load().full) == 0

    def test_rebuild_from_prior_generation_copy(self, seeded_store):
        # A crash between manifest commit and cleanup leaves the prior
        # generation's segment files on disk; the scrubber re-adopts a
        # copy whose partition counts match the damaged entry.
        path = segment_paths(seeded_store)[0]
        leftover = path.with_name("seg-00000-99999.rseg")
        shutil.copyfile(path, leftover)
        corrupt(path)
        report = scrub_store(seeded_store, repair=True)
        assert report["rebuilt"] == [path.name]
        assert not report["irreparable"]
        assert path.exists()
        # Quarantined evidence kept, data fully recovered, CRC rewritten
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()
        reopened = SegmentStore.open(seeded_store.path)
        assert len(reopened.load().full) == 4
        assert scrub_store(reopened, repair=False)["ok"]

    def test_missing_segment_file_detected(self, seeded_store):
        path = segment_paths(seeded_store)[0]
        path.unlink()
        report = scrub_store(seeded_store, repair=True)
        assert report["quarantined"] == [path.name]
        assert report["irreparable"]


class TestWalScrub:
    def test_torn_tail_reported_and_repaired(self, seeded_store):
        from repro.core.results import RelationshipDelta
        from repro.rdf.terms import URIRef

        seeded_store.append_delta(
            RelationshipDelta(added_full={(URIRef("urn:a"), URIRef("urn:b"))})
        )
        wal_path = seeded_store.wal.path
        seeded_store.close()  # release the flock append_delta took
        with open(wal_path, "a", encoding="utf-8") as handle:
            handle.write("deadbeef {\"type\": \"delta\"")  # torn mid-record
        store = SegmentStore.open(seeded_store.path)
        report = scrub_store(store, repair=True)
        assert report["wal"]["torn_tail"]
        assert report["wal"]["records"] == 1  # the acked record survived
        assert not report["ok"]  # crash damage is reported, not hidden
        assert scrub_store(store)["ok"]  # ...and is gone after repair
        store.close()


class TestBackgroundScrubber:
    def test_periodic_scrub_updates_report(self, seeded_store):
        import time

        from repro.resilience.scrub import BackgroundScrubber

        scrubber = BackgroundScrubber(seeded_store, interval=0.05).start()
        try:
            for _ in range(100):
                if scrubber.last_report is not None:
                    break
                time.sleep(0.02)
            assert scrubber.last_report is not None
            assert scrubber.last_report["ok"]
        finally:
            scrubber.stop()
