"""Load shedding, the socket timeout, and graceful shutdown."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import compute_baseline
from repro.errors import OverloadedError
from repro.resilience.shed import LoadShedder
from repro.service import QueryEngine, start_server

from tests.conftest import make_random_space


def make_server(**server_kwargs):
    space = make_random_space(12, seed=42)
    engine = QueryEngine(compute_baseline(space), space)
    server = start_server(engine, **server_kwargs)
    host, port = server.server_address
    return server, f"http://{host}:{port}"


class TestLoadShedder:
    def test_admits_within_bound(self):
        shedder = LoadShedder(max_inflight=2)
        shedder.acquire()
        shedder.acquire()
        assert shedder.stats()["inflight"] == 2
        shedder.release()
        shedder.release()
        assert shedder.stats()["inflight"] == 0

    def test_sheds_when_queue_full(self):
        shedder = LoadShedder(max_inflight=1, max_queued=0)
        shedder.acquire()
        with pytest.raises(OverloadedError) as excinfo:
            shedder.acquire()
        assert excinfo.value.retry_after > 0

    def test_queued_request_gets_freed_slot(self):
        shedder = LoadShedder(max_inflight=1, max_queued=1, queue_timeout=5.0)
        shedder.acquire()
        admitted = threading.Event()

        def waiter():
            shedder.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not admitted.wait(0.05)  # genuinely parked
        shedder.release()
        assert admitted.wait(2.0)
        thread.join(timeout=2.0)

    def test_queued_request_times_out(self):
        shedder = LoadShedder(max_inflight=1, max_queued=1, queue_timeout=0.05)
        shedder.acquire()
        with pytest.raises(OverloadedError):
            shedder.acquire()

    def test_closed_shedder_refuses_everything(self):
        shedder = LoadShedder(max_inflight=8)
        shedder.close()
        with pytest.raises(OverloadedError):
            shedder.acquire()

    def test_drain_waits_for_inflight(self):
        shedder = LoadShedder(max_inflight=2)
        shedder.acquire()
        shedder.close()
        assert not shedder.drain(timeout=0.05)  # one still running
        shedder.release()
        assert shedder.drain(timeout=2.0)

    def test_admitted_context_releases_on_error(self):
        shedder = LoadShedder(max_inflight=1)
        with pytest.raises(RuntimeError):
            with shedder.admitted():
                raise RuntimeError("handler blew up")
        assert shedder.stats()["inflight"] == 0


class TestHTTPShedding:
    def test_saturated_server_sheds_with_503_and_retry_after(self):
        shedder = LoadShedder(max_inflight=1, max_queued=0)
        server, base = make_server(shedder=shedder)
        try:
            shedder.acquire()  # occupy the only slot, deterministically
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/healthz")
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            assert "queue" in json.load(excinfo.value)["error"]
            shedder.release()
            with urllib.request.urlopen(f"{base}/healthz") as response:
                assert response.status == 200  # slot freed: back to normal
        finally:
            server.shutdown()
            server.server_close()


class TestSocketTimeout:
    def test_stalled_client_is_disconnected(self):
        # Regression: a client that connects and goes silent used to
        # hold a handler thread forever.  With the per-connection
        # timeout the server must hang up on its own.
        server, base = make_server(request_timeout=0.3)
        host, port = server.server_address
        try:
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")  # ...and stall mid-headers
                sock.settimeout(5.0)
                deadline_data = sock.recv(65536)  # EOF once the server times out
                assert deadline_data == b"" or b"HTTP/1.1" in deadline_data
        finally:
            server.shutdown()
            server.server_close()

    def test_handler_timeout_comes_from_server_config(self):
        server, base = make_server(request_timeout=7.5)
        try:
            assert server.request_timeout == 7.5
        finally:
            server.shutdown()
            server.server_close()


class TestGracefulShutdown:
    def test_drains_then_refuses(self):
        server, base = make_server()
        with urllib.request.urlopen(f"{base}/healthz") as response:
            assert response.status == 200
        assert server.graceful_shutdown(drain_timeout=5.0) is True
        host, port = server.server_address
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_inflight_request_finishes_before_stop(self):
        from repro.resilience.faults import clear_injector, install_injector

        server, base = make_server()
        install_injector("http.handler:delay:seconds=0.3")
        outcome = {}

        def slow_request():
            with urllib.request.urlopen(f"{base}/healthz") as response:
                outcome["status"] = response.status

        thread = threading.Thread(target=slow_request, daemon=True)
        thread.start()
        import time

        time.sleep(0.1)  # let the request get admitted and hit the delay
        try:
            assert server.graceful_shutdown(drain_timeout=5.0) is True
            thread.join(timeout=5.0)
            assert outcome.get("status") == 200  # finished, not dropped
        finally:
            clear_injector()
