"""Unit tests for rule builtins."""

import pytest

from repro.errors import RuleEvaluationError
from repro.rdf import Literal, URIRef
from repro.rules.builtins import BUILTINS, register_builtin


class TestBuiltins:
    def test_equal_not_equal(self):
        a, b = URIRef("http://e/a"), URIRef("http://e/b")
        assert BUILTINS["equal"](a, a)
        assert not BUILTINS["equal"](a, b)
        assert BUILTINS["notEqual"](a, b)
        assert not BUILTINS["notEqual"](a, a)

    def test_numeric_comparisons(self):
        assert BUILTINS["lessThan"](Literal(1), Literal(2))
        assert BUILTINS["greaterThan"](Literal(3), Literal(2))
        assert BUILTINS["le"](Literal(2), Literal(2))
        assert BUILTINS["ge"](Literal(2), Literal(2))

    def test_numeric_on_string_literal_with_number(self):
        assert BUILTINS["lessThan"](Literal("1"), Literal("2.5"))

    def test_numeric_on_uri_errors(self):
        with pytest.raises(RuleEvaluationError):
            BUILTINS["lessThan"](URIRef("http://e/a"), Literal(1))

    def test_numeric_on_text_errors(self):
        with pytest.raises(RuleEvaluationError):
            BUILTINS["lessThan"](Literal("abc"), Literal(1))

    def test_is_literal(self):
        assert BUILTINS["isLiteral"](Literal("x"))
        assert not BUILTINS["isLiteral"](URIRef("http://e/a"))

    def test_register_custom(self):
        register_builtin("alwaysTrue", lambda *args: True)
        try:
            assert BUILTINS["alwaysTrue"]()
        finally:
            del BUILTINS["alwaysTrue"]
