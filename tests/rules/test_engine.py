"""Unit tests for the forward-chaining engine."""

import pytest

from repro.errors import RuleEvaluationError
from repro.rdf import EX, Graph, Literal, parse_turtle
from repro.rdf.namespaces import SKOS
from repro.rules import RuleEngine, parse_rules


@pytest.fixture
def broader_chain() -> Graph:
    return parse_turtle(
        """
        @prefix ex: <http://example.org/> .
        @prefix skos: <http://www.w3.org/2004/02/skos/core#> .
        ex:Athens skos:broader ex:Greece .
        ex:Greece skos:broader ex:Europe .
        ex:Europe skos:broader ex:World .
        """
    )


class TestForwardChaining:
    def test_transitive_closure(self, broader_chain):
        engine = RuleEngine(
            parse_rules("[t: (?a skos:broader ?b), (?b skos:broader ?c) -> (?a skos:broader ?c)]")
        )
        closed = engine.run(broader_chain)
        assert (EX.Athens, SKOS.broader, EX.World) in closed
        assert len(closed) == 6  # 3 base + 3 derived

    def test_input_untouched_by_default(self, broader_chain):
        engine = RuleEngine(
            parse_rules("[t: (?a skos:broader ?b), (?b skos:broader ?c) -> (?a skos:broader ?c)]")
        )
        engine.run(broader_chain)
        assert len(broader_chain) == 3

    def test_in_place(self, broader_chain):
        engine = RuleEngine(
            parse_rules("[t: (?a skos:broader ?b), (?b skos:broader ?c) -> (?a skos:broader ?c)]")
        )
        engine.run(broader_chain, in_place=True)
        assert len(broader_chain) == 6

    def test_inferred_only(self, broader_chain):
        engine = RuleEngine(
            parse_rules("[t: (?a skos:broader ?b), (?b skos:broader ?c) -> (?a skos:broader ?c)]")
        )
        derived = engine.inferred(broader_chain)
        assert len(derived) == 3
        assert (EX.Athens, SKOS.broader, EX.Greece) not in derived

    def test_builtin_guard(self, broader_chain):
        engine = RuleEngine(
            parse_rules(
                "[g: (?a skos:broader ?b), notEqual(?a, ex:Greece) -> (?a ex:flagged ?b)]"
            )
        )
        derived = engine.inferred(broader_chain)
        flagged = {s for s, _, _ in derived}
        assert flagged == {EX.Athens, EX.Europe}

    def test_multiple_head_atoms(self, broader_chain):
        engine = RuleEngine(
            parse_rules("[h: (?a skos:broader ?b) -> (?a ex:child ?b), (?b ex:parentOf ?a)]")
        )
        derived = engine.inferred(broader_chain)
        assert len(derived) == 6

    def test_chained_rules(self, broader_chain):
        engine = RuleEngine(
            parse_rules(
                "[r1: (?a skos:broader ?b) -> (?a ex:anc ?b)]\n"
                "[r2: (?a ex:anc ?b), (?b ex:anc ?c) -> (?a ex:anc ?c)]"
            )
        )
        derived = engine.inferred(broader_chain)
        assert (EX.Athens, EX.anc, EX.World) in derived

    def test_no_rules_is_identity(self, broader_chain):
        assert RuleEngine([]).run(broader_chain) == broader_chain

    def test_empty_graph(self):
        engine = RuleEngine(parse_rules("[t: (?a ex:p ?b) -> (?b ex:p ?a)]"))
        assert len(engine.run(Graph())) == 0

    def test_fixpoint_iteration_count(self, broader_chain):
        engine = RuleEngine(
            parse_rules("[t: (?a skos:broader ?b), (?b skos:broader ?c) -> (?a skos:broader ?c)]")
        )
        engine.run(broader_chain)
        assert engine.last_iterations >= 2

    def test_literals_in_derived_triples(self):
        g = parse_turtle("@prefix ex: <http://example.org/> . ex:a ex:p ex:b .")
        engine = RuleEngine(parse_rules('[r: (?a ex:p ?b) -> (?a ex:status "linked")]'))
        derived = engine.inferred(g)
        assert (EX.a, EX.status, Literal("linked")) in derived


class TestEngineErrors:
    def test_unknown_builtin_rejected_at_construction(self):
        rules = parse_rules("[r: (?a ex:p ?b), noSuchBuiltin(?a) -> (?a ex:q ?b)]")
        with pytest.raises(RuleEvaluationError):
            RuleEngine(rules)

    def test_unbound_builtin_variable(self):
        # ?c never appears in a triple atom; Rule itself is safe (head
        # uses only bound vars) but the guard cannot be evaluated.
        rules = parse_rules("[r: (?a ex:p ?b), notEqual(?a, ?c) -> (?a ex:q ?b)]")
        g = parse_turtle("@prefix ex: <http://example.org/> . ex:a ex:p ex:b .")
        with pytest.raises(RuleEvaluationError):
            RuleEngine(rules).run(g)

    def test_literal_subject_in_head_rejected(self):
        rules = parse_rules("[r: (?a ex:p ?b) -> (?b ex:q ?a)]")
        g = parse_turtle('@prefix ex: <http://example.org/> . ex:a ex:p "lit" .')
        with pytest.raises(RuleEvaluationError):
            RuleEngine(rules).run(g)

    def test_max_iterations_guard(self):
        # Mint fresh URIs forever?  Not expressible here (no skolem
        # builtin), so simulate with a tiny limit on a 2-step closure.
        g = parse_turtle(
            """
            @prefix ex: <http://example.org/> .
            ex:n1 ex:next ex:n2 . ex:n2 ex:next ex:n3 . ex:n3 ex:next ex:n4 .
            ex:n4 ex:next ex:n5 . ex:n5 ex:next ex:n6 .
            """
        )
        rules = parse_rules("[t: (?a ex:next ?b), (?b ex:next ?c) -> (?a ex:next ?c)]")
        engine = RuleEngine(rules, max_iterations=1)
        with pytest.raises(RuleEvaluationError):
            engine.run(g)
