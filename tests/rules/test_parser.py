"""Unit tests for the rule-language parser."""

import pytest

from repro.errors import RuleSyntaxError
from repro.rdf import RDF, URIRef
from repro.rdf.terms import Literal
from repro.rules import parse_rules
from repro.rules.ast import Atom, BuiltinCall, RuleVar


class TestRuleParsing:
    def test_named_rule(self):
        rules = parse_rules("[r1: (?a ex:p ?b) -> (?a ex:q ?b)]")
        assert rules[0].name == "r1"
        assert len(rules[0].body) == 1
        assert len(rules[0].head) == 1

    def test_anonymous_rule_gets_name(self):
        rules = parse_rules("[(?a ex:p ?b) -> (?a ex:q ?b)]")
        assert rules[0].name.startswith("rule")

    def test_multiple_rules(self):
        rules = parse_rules(
            "[a1: (?x ex:p ?y) -> (?x ex:q ?y)]\n[a2: (?x ex:q ?y) -> (?x ex:r ?y)]"
        )
        assert [r.name for r in rules] == ["a1", "a2"]

    def test_commas_optional(self):
        with_commas = parse_rules("[r: (?a ex:p ?b), (?b ex:p ?c) -> (?a ex:p ?c)]")
        without = parse_rules("[r: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")
        assert with_commas[0].body == without[0].body

    def test_builtin_call(self):
        rules = parse_rules("[r: (?a ex:p ?b), notEqual(?a, ?b) -> (?a ex:q ?b)]")
        guard = rules[0].body[1]
        assert isinstance(guard, BuiltinCall)
        assert guard.name == "notEqual"
        assert guard.args == (RuleVar("a"), RuleVar("b"))

    def test_a_keyword(self):
        rules = parse_rules("[r: (?x a ex:Thing) -> (?x ex:checked ex:Thing)]")
        assert rules[0].body[0].predicate == RDF.type

    def test_full_iri(self):
        rules = parse_rules("[r: (?x <http://e/p> ?y) -> (?x <http://e/q> ?y)]")
        assert rules[0].body[0].predicate == URIRef("http://e/p")

    def test_custom_prefix(self):
        rules = parse_rules("@prefix my: <http://my/> .\n[r: (?x my:p ?y) -> (?x my:q ?y)]")
        assert rules[0].head[0].predicate == URIRef("http://my/q")

    def test_literals_in_rules(self):
        rules = parse_rules('[r: (?x ex:status "ok") -> (?x ex:level 2)]')
        assert rules[0].body[0].obj == Literal("ok")
        assert rules[0].head[0].obj.to_python() == 2

    def test_multiple_head_atoms(self):
        rules = parse_rules("[r: (?x ex:p ?y) -> (?x ex:q ?y), (?y ex:r ?x)]")
        assert len(rules[0].head) == 2

    def test_comments(self):
        rules = parse_rules("# comment\n[r: (?x ex:p ?y) -> (?x ex:q ?y)] // trailing\n")
        assert len(rules) == 1


class TestRuleErrors:
    def test_unsafe_head_variable(self):
        with pytest.raises(RuleSyntaxError):
            parse_rules("[r: (?x ex:p ?y) -> (?x ex:q ?z)]")

    def test_builtin_in_head_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rules("[r: (?x ex:p ?y) -> notEqual(?x, ?y)]")

    def test_garbage_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rules("this is not a rule")

    def test_undefined_prefix(self):
        with pytest.raises(RuleSyntaxError):
            parse_rules("[r: (?x nosuch:p ?y) -> (?x nosuch:q ?y)]")

    def test_error_reports_line(self):
        with pytest.raises(RuleSyntaxError) as info:
            parse_rules("\n\n[r: (?x ex:p %%) -> (?x ex:q ?y)]")
        assert "line 3" in str(info.value)
