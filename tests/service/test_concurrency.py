"""Concurrent serve-while-update: readers must never observe a torn
index or a stale cache entry after a generation bump.

One writer thread alternates incremental inserts and removals of a
*twin* of a probe observation while reader threads hammer the engine.
Complementarity of the twin flips atomically with each write, so every
read must see exactly one of the two legal states — any torn index
(twin half-linked) or stale post-bump cache entry shows up as an
illegal combination.  ``pytest-timeout``'s marker guards the suite
against deadlocks in the readers–writer lock.
"""

import threading

import pytest

from repro.core import compute_baseline
from repro.rdf.terms import URIRef
from repro.service import QueryEngine, start_server

from tests.conftest import make_random_space

pytestmark = pytest.mark.timeout(120)

TWIN = URIRef("http://test.example/twin")


def build_engine(n=25, seed=90, cache_size=256):
    space = make_random_space(n, seed=seed)
    result = compute_baseline(space, collect_partial_dimensions=True)
    return QueryEngine(result, space, cache_size=cache_size), space


class TestServeWhileUpdate:
    def test_readers_never_see_torn_state(self):
        engine, space = build_engine()
        probe = space.observations[0]
        twin_tuple = (
            TWIN,
            probe.dataset,
            dict(zip(space.dimensions, probe.codes)),
            probe.measures,
        )
        errors: list[str] = []
        stop = threading.Event()
        cycles = 60

        def writer():
            try:
                for _ in range(cycles):
                    engine.insert([twin_tuple])
                    engine.remove([TWIN])
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"writer: {exc!r}")
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    generation = engine.generation
                    complements = engine.complements(probe.uri)
                    related = engine.related(probe.uri, k=10_000)
                    related_uris = {entry["uri"] for entry in related}
                    twin_complement = TWIN in complements
                    twin_related = TWIN in related_uris
                    # The two views were taken at different instants, so
                    # they may straddle one write — but each view alone
                    # must be a legal snapshot, and when no write happened
                    # in between they must agree.
                    if engine.generation == generation and twin_complement != twin_related:
                        errors.append(
                            f"torn view at generation {generation}: "
                            f"complements={twin_complement} related={twin_related}"
                        )
                        return
                    # sanity: baseline relationships never disappear
                    if not related_uris:
                        errors.append("probe lost all relationships")
                        return
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"reader: {exc!r}")

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join()
        for thread in readers:
            thread.join()
        assert not errors, errors
        # After the final remove the twin is fully gone.
        assert TWIN not in engine.complements(probe.uri)
        assert engine.generation == 2 * cycles

    def test_cache_never_serves_pre_bump_entry(self):
        """Single-threaded interleaving: a cached answer read after a
        write must reflect that write (generation stamping)."""
        engine, space = build_engine(seed=91)
        probe = space.observations[0]
        twin_tuple = (
            TWIN,
            probe.dataset,
            dict(zip(space.dimensions, probe.codes)),
            probe.measures,
        )
        for _ in range(10):
            assert TWIN not in engine.complements(probe.uri)
            engine.insert([twin_tuple])
            assert TWIN in engine.complements(probe.uri), "stale cache after insert"
            engine.remove([TWIN])
            assert TWIN not in engine.complements(probe.uri), "stale cache after remove"

    def test_concurrent_http_reads_during_writes(self):
        """The full stack: HTTP readers against a live server while the
        engine is mutated underneath."""
        import json
        import urllib.request
        from urllib.parse import quote

        engine, space = build_engine(seed=92)
        probe = space.observations[0]
        server = start_server(engine)
        host, port = server.server_address
        base = f"http://{host}:{port}"
        encoded = quote(str(probe.uri), safe="")
        twin_tuple = (
            TWIN,
            probe.dataset,
            dict(zip(space.dimensions, probe.codes)),
            probe.measures,
        )
        errors: list[str] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    with urllib.request.urlopen(
                        f"{base}/observations/{encoded}/complements"
                    ) as response:
                        body = json.load(response)
                    if str(TWIN) in body["complements"] and len(body["complements"]) < 1:
                        errors.append("inconsistent complement list")
                        return
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"http reader: {exc!r}")

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(30):
                engine.insert([twin_tuple])
                engine.remove([TWIN])
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            server.shutdown()
            server.server_close()
        assert not errors, errors
