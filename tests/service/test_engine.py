"""Unit tests for the LRU-cached query engine (and its primitives)."""

import pytest

from repro.core import compute_baseline
from repro.errors import ServiceError, UnknownObservationError
from repro.rdf.terms import URIRef
from repro.service import LRUCache, QueryEngine, RWLock

from tests.conftest import make_random_space


def make_engine(n=40, seed=70, cache_size=1024):
    space = make_random_space(n, seed=seed)
    result = compute_baseline(space, collect_partial_dimensions=True)
    return QueryEngine(result, space, cache_size=cache_size), space, result


def newcomer_tuple(space, record, uri):
    return (
        URIRef(uri),
        record.dataset,
        dict(zip(space.dimensions, record.codes)),
        record.measures,
    )


class TestLRUCache:
    def test_put_get_and_hit_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a", 0) is LRUCache.MISS
        cache.put("a", 0, 42)
        assert cache.get("a", 0) == 42
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == 1  # refresh a
        cache.put("c", 0, 3)  # evicts b
        assert cache.get("b", 0) is LRUCache.MISS
        assert cache.get("a", 0) == 1
        assert cache.evictions == 1

    def test_generation_mismatch_is_miss_and_evicts(self):
        cache = LRUCache(4)
        cache.put("a", 0, 1)
        assert cache.get("a", 1) is LRUCache.MISS
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_zero_size_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 0, 1)
        assert cache.get("a", 0) is LRUCache.MISS
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestRWLock:
    def test_read_reentrant_across_threads(self):
        import threading

        lock = RWLock()
        entered = threading.Event()
        with lock.read_locked():
            other = threading.Thread(target=lambda: (lock.acquire_read(), entered.set(), lock.release_read()))
            other.start()
            other.join(timeout=5)
            assert entered.is_set(), "second reader should not block"

    def test_writer_excludes_reader(self):
        import threading

        lock = RWLock()
        lock.acquire_write()
        got_read = threading.Event()
        reader = threading.Thread(target=lambda: (lock.acquire_read(), got_read.set(), lock.release_read()))
        reader.start()
        assert not got_read.wait(timeout=0.2), "reader must wait for the writer"
        lock.release_write()
        assert got_read.wait(timeout=5)
        reader.join(timeout=5)


class TestPointLookups:
    def test_containers_match_result(self):
        engine, space, result = make_engine()
        for record in space.observations[:10]:
            assert set(engine.containers(record.uri)) == {
                a for a, b in result.full if b == record.uri
            }
            assert set(engine.contained(record.uri)) == {
                b for a, b in result.full if a == record.uri
            }

    def test_sorted_deterministic(self):
        engine, space, _ = make_engine()
        uri = space.observations[0].uri
        assert list(engine.containers(uri)) == sorted(engine.containers(uri), key=str)

    def test_unknown_uri_raises_404_error(self):
        engine, _, _ = make_engine()
        with pytest.raises(UnknownObservationError):
            engine.containers(URIRef("http://test.example/ghost"))

    def test_summary_counts(self):
        engine, space, result = make_engine()
        uri = space.observations[0].uri
        summary = engine.summary(uri)
        assert summary["containers"] == len([1 for a, b in result.full if b == uri])
        assert summary["dataset"] == space.observations[0].dataset


class TestRelated:
    def test_scores_descending_and_bounded(self):
        engine, space, _ = make_engine()
        for record in space.observations[:10]:
            entries = engine.related(record.uri, k=5)
            assert len(entries) <= 5
            scores = [entry["score"] for entry in entries]
            assert scores == sorted(scores, reverse=True)

    def test_full_relation_outranks_partial(self):
        engine, space, result = make_engine()
        container, contained = next(iter(result.full))
        entries = engine.related(contained, k=10_000)
        by_uri = {entry["uri"]: entry for entry in entries}
        assert by_uri[container]["score"] == 1.0
        assert by_uri[container]["relation"].startswith("full")


class TestTransitive:
    def test_walk_reaches_grandparents(self):
        engine, space, result = make_engine()
        # build uri -> direct containers map to cross-check BFS
        containers = {}
        for a, b in result.full:
            containers.setdefault(b, set()).add(a)
        uri, direct = next(iter(containers.items()))
        walk = dict(engine.transitive_containers(uri))
        assert direct <= set(walk)
        for parent in direct:
            assert walk[parent] == 1
            for grand in containers.get(parent, ()):  # depth-2 unless also direct
                assert grand in walk

    def test_max_depth_limits(self):
        engine, space, result = make_engine()
        uri = next(b for a, b in result.full)
        depth1 = engine.transitive_containers(uri, max_depth=1)
        assert all(depth == 1 for _, depth in depth1)
        assert {u for u, _ in depth1} == set(engine.containers(uri))

    def test_cycle_terminates(self):
        """Mutual containment (equal codes, shared measure) must not loop."""
        engine, space, _ = make_engine(n=10, seed=71)
        record = space.observations[0]
        engine.insert([newcomer_tuple(space, record, "http://test.example/twin")])
        walk = engine.transitive_containers(record.uri)
        assert len(walk) == len({u for u, _ in walk})


class TestFilters:
    def test_dataset_filter(self):
        engine, space, _ = make_engine()
        dataset = space.observations[0].dataset
        assert set(engine.find(dataset=dataset)) == {
            r.uri for r in space.observations if r.dataset == dataset
        }

    def test_dimension_filter_keeps_bound_observations(self):
        engine, space, _ = make_engine()
        dimension = space.dimensions[0]
        expected = {
            r.uri
            for r in space.observations
            if space.level_signature(r.index)[0] > 0
        }
        assert set(engine.find(dimension=dimension)) == expected

    def test_limit(self):
        engine, _, _ = make_engine()
        assert len(engine.find(limit=3)) == 3

    def test_unknown_dimension_is_service_error(self):
        engine, _, _ = make_engine()
        with pytest.raises(ServiceError):
            engine.find(dimension=URIRef("http://test.example/no-such-dim"))

    def test_dimension_filter_without_space_rejected(self):
        _, space, result = make_engine()
        bare = QueryEngine(result)  # store only
        with pytest.raises(ServiceError):
            bare.find(dimension=space.dimensions[0])


class TestCacheBehaviour:
    def test_repeated_query_hits_cache(self):
        engine, space, _ = make_engine()
        uri = space.observations[0].uri
        first = engine.related(uri, k=5)
        assert engine.cache.hits == 0
        second = engine.related(uri, k=5)
        assert engine.cache.hits == 1
        assert first == second

    def test_insert_bumps_generation_and_invalidates(self):
        engine, space, _ = make_engine(n=10, seed=72)
        record = space.observations[0]
        uri = record.uri
        before = engine.complements(uri)
        assert engine.generation == 0
        engine.insert([newcomer_tuple(space, record, "http://test.example/twin")])
        assert engine.generation == 1
        after = engine.complements(uri)
        assert URIRef("http://test.example/twin") in after
        assert set(before) <= set(after)

    def test_remove_invalidates(self):
        engine, space, _ = make_engine(n=10, seed=73)
        record = space.observations[0]
        engine.insert([newcomer_tuple(space, record, "http://test.example/twin")])
        assert URIRef("http://test.example/twin") in engine.complements(record.uri)
        engine.remove([URIRef("http://test.example/twin")])
        assert URIRef("http://test.example/twin") not in engine.complements(record.uri)
        with pytest.raises(UnknownObservationError):
            engine.remove([URIRef("http://test.example/twin")])

    def test_cache_disabled_still_correct(self):
        engine, space, result = make_engine(cache_size=0)
        uri = space.observations[0].uri
        assert engine.related(uri, 5) == engine.related(uri, 5)
        assert engine.cache.hits == 0

    def test_cache_size_bound_respected(self):
        engine, space, _ = make_engine(cache_size=4)
        for record in space.observations[:20]:
            engine.containers(record.uri)
        assert len(engine.cache) <= 4

    def test_insert_without_space_rejected(self):
        _, space, result = make_engine()
        bare = QueryEngine(result)
        with pytest.raises(ServiceError):
            bare.insert([])

    def test_engine_matches_fresh_engine_after_writes(self):
        """Incremental index + cache must agree with a from-scratch engine."""
        engine, space, result = make_engine(n=30, seed=74)
        record = space.observations[3]
        engine.insert(
            [
                newcomer_tuple(space, record, "http://test.example/new-a"),
                newcomer_tuple(space, space.observations[7], "http://test.example/new-b"),
            ]
        )
        engine.remove([space.observations[5].uri])
        fresh = QueryEngine(engine.result, engine.space)
        for uri in list(engine.index.observations())[:15]:
            assert engine.containers(uri) == fresh.containers(uri)
            assert engine.related(uri, 8) == fresh.related(uri, 8)
            assert engine.top_partial(uri, 5) == fresh.top_partial(uri, 5)


class TestPersistenceFailureRollback:
    """A failed WAL append must not leave the served state diverged."""

    @staticmethod
    def snapshot(engine):
        return (
            set(engine.result.full),
            set(engine.result.partial),
            set(engine.result.complementary),
            dict(engine.result.partial_map),
            dict(engine.result.degrees),
            [record.uri for record in engine.space.observations],
            engine.generation,
        )

    def make_failing_engine(self, n=10, seed=75):
        engine, space, result = make_engine(n=n, seed=seed)

        def sink(delta):
            raise OSError("disk full")

        engine.delta_sink = sink
        return engine, space

    def test_failed_insert_rolls_back(self):
        engine, space = self.make_failing_engine()
        before = self.snapshot(engine)
        record = space.observations[0]
        with pytest.raises(ServiceError, match="write-ahead log append failed"):
            engine.insert([newcomer_tuple(space, record, "http://test.example/lost")])
        assert self.snapshot(engine) == before
        assert engine.wal_appends == 0
        with pytest.raises(UnknownObservationError):
            engine.complements(URIRef("http://test.example/lost"))

    def test_failed_remove_rolls_back(self):
        engine, space = self.make_failing_engine(n=20, seed=76)
        before = self.snapshot(engine)
        with pytest.raises(ServiceError, match="write-ahead log append failed"):
            engine.remove([space.observations[0].uri])
        assert self.snapshot(engine) == before
        # the observation is still served, metadata included
        engine.summary(space.observations[0].uri)

    def test_engine_still_writable_after_sink_recovers(self):
        engine, space = self.make_failing_engine()
        record = space.observations[0]
        with pytest.raises(ServiceError):
            engine.insert([newcomer_tuple(space, record, "http://test.example/retry")])
        engine.delta_sink = lambda delta: None  # sink recovered
        engine.insert([newcomer_tuple(space, record, "http://test.example/retry")])
        assert URIRef("http://test.example/retry") in engine.complements(record.uri)
        fresh = QueryEngine(engine.result, engine.space)
        for uri in list(engine.index.observations())[:10]:
            assert engine.containers(uri) == fresh.containers(uri)
