"""Unit tests for the relationship adjacency index."""

import pytest

from repro.core import compute_baseline, remove_observations, update_relationships
from repro.data.example import build_example_space
from repro.service import RelationshipIndex

from tests.conftest import make_random_space


@pytest.fixture(scope="module")
def space():
    return make_random_space(50, seed=60)


@pytest.fixture(scope="module")
def result(space):
    return compute_baseline(space, collect_partial_dimensions=True)


@pytest.fixture()
def index(space, result):
    return RelationshipIndex(result, space)


class TestAdjacency:
    def test_full_containment_both_directions(self, index, result):
        for container, contained in result.full:
            assert contained in index.fully_contains(container)
            assert container in index.fully_within(contained)

    def test_partial_containment_both_directions(self, index, result):
        for container, contained in result.partial:
            assert contained in index.partially_contains(container)
            assert container in index.partially_within(contained)

    def test_complements_symmetric(self, index, result):
        for a, b in result.complementary:
            assert b in index.complements_of(a)
            assert a in index.complements_of(b)

    def test_lookup_matches_pair_scan(self, index, result, space):
        """Adjacency answers exactly the brute-force pair scan."""
        for record in space.observations[:10]:
            uri = record.uri
            assert index.fully_within(uri) == {a for a, b in result.full if b == uri}
            assert index.fully_contains(uri) == {b for a, b in result.full if a == uri}
            assert index.complements_of(uri) == {
                (b if a == uri else a) for a, b in result.complementary if uri in (a, b)
            }

    def test_unknown_uri_yields_empty(self, index):
        from repro.rdf.terms import URIRef

        ghost = URIRef("http://test.example/ghost")
        assert index.fully_within(ghost) == frozenset()
        assert index.top_partial(ghost) == []
        assert ghost not in index


class TestGroupings:
    def test_dataset_grouping_partitions_space(self, index, space):
        members = set()
        for dataset, uris in index.datasets.items():
            members |= uris
            for uri in uris:
                assert index.dataset_of(uri) == dataset
        assert members == {record.uri for record in space.observations}

    def test_cube_grouping_matches_level_signatures(self, index, space):
        for record in space.observations:
            signature = space.level_signature(record.index)
            assert record.uri in index.cube_members(signature)
            assert index.signature_of(record.uri) == signature

    def test_observations_iterates_registered(self, index, space):
        assert set(index.observations()) == {record.uri for record in space.observations}


class TestTopPartial:
    def test_sorted_by_degree_desc(self, index, result):
        for record_uri in list(index.observations())[:10]:
            entries = index.top_partial(record_uri, k=100)
            degrees = [degree for _, degree, _ in entries]
            assert degrees == sorted(degrees, reverse=True)

    def test_k_bounds_answer(self, index):
        uri = next(iter(index.observations()))
        assert len(index.top_partial(uri, k=3)) <= 3
        assert index.top_partial(uri, k=0) == []

    def test_direction_filter(self, index, result):
        uri = next(a for a, b in result.partial)
        contains = index.top_partial(uri, k=1000, direction="contains")
        within = index.top_partial(uri, k=1000, direction="within")
        assert all(way == "contains" for _, _, way in contains)
        assert all(way == "within" for _, _, way in within)
        assert {other for other, _, _ in contains} == index.partially_contains(uri)
        assert {other for other, _, _ in within} == index.partially_within(uri)

    def test_bad_direction_raises(self, index):
        uri = next(iter(index.observations()))
        with pytest.raises(ValueError):
            index.top_partial(uri, direction="sideways")


class TestIncrementalMaintenance:
    """apply_delta must leave the index identical to a rebuild."""

    @staticmethod
    def _snapshot(index, uris):
        return {
            uri: (
                index.fully_within(uri),
                index.fully_contains(uri),
                index.partially_within(uri),
                index.partially_contains(uri),
                index.complements_of(uri),
                tuple(index.top_partial(uri, k=10_000)),
            )
            for uri in uris
        }

    def test_insert_delta_equals_rebuild(self):
        space = make_random_space(40, seed=61)
        base_space = space.select(range(30))
        result = compute_baseline(base_space)
        index = RelationshipIndex(result, base_space)
        newcomers = [
            (r.uri, r.dataset, dict(zip(space.dimensions, r.codes)), r.measures)
            for r in space.observations[30:]
        ]
        _, delta = update_relationships(base_space, result, newcomers, return_delta=True)
        for record in base_space.observations[30:]:
            index.register(
                record.uri, record.dataset, base_space.level_signature(record.index)
            )
        index.apply_delta(delta)
        rebuilt = RelationshipIndex(result, base_space)
        uris = [r.uri for r in base_space.observations]
        assert self._snapshot(index, uris) == self._snapshot(rebuilt, uris)

    def test_remove_delta_equals_rebuild(self):
        space = make_random_space(30, seed=62)
        result = compute_baseline(space)
        index = RelationshipIndex(result, space)
        victims = [space.observations[i].uri for i in (2, 11, 29)]
        new_space, result, delta = remove_observations(
            space, result, victims, return_delta=True
        )
        for uri in victims:
            index.unregister(uri)
        index.apply_delta(delta)
        rebuilt = RelationshipIndex(result, new_space)
        uris = [r.uri for r in new_space.observations]
        assert self._snapshot(index, uris) == self._snapshot(rebuilt, uris)
        for uri in victims:
            assert index.fully_within(uri) == frozenset()
            assert index.complements_of(uri) == frozenset()
            assert index.dataset_of(uri) is None

    def test_stats(self, index, result, space):
        stats = index.stats()
        assert stats["full_pairs"] == len(result.full)
        assert stats["partial_pairs"] == len(result.partial)
        assert stats["observations"] == len(space)
        assert stats["datasets"] >= 1


class TestWithoutSpace:
    """An index over a bare store still answers point lookups."""

    def test_adjacency_only(self):
        space = build_example_space()
        result = compute_baseline(space)
        index = RelationshipIndex(result)
        a, b = next(iter(result.full))
        assert b in index.fully_contains(a)
        assert index.dataset_of(a) is None
        assert set(index.observations())  # pair endpoints are known
