"""The fixed-size handler pool and keep-alive fairness.

``repro serve --threads N`` swaps thread-per-connection for a bounded
pool.  The risk that design change introduces — and what these tests
pin — is *starvation*: an idle persistent connection must never hold a
pool worker hostage while other clients queue.  ``pooled_handle``
parks idle keep-alive connections in short ``select`` slices and gives
the worker back the moment anything is waiting.
"""

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import compute_baseline
from repro.service import QueryEngine, start_server

from tests.conftest import make_random_space


def make_server(**server_kwargs):
    space = make_random_space(12, seed=42)
    engine = QueryEngine(compute_baseline(space), space)
    server = start_server(engine, **server_kwargs)
    host, port = server.server_address
    return server, host, port


def fetch(conn: http.client.HTTPConnection, path: str = "/healthz") -> dict:
    """One request on a persistent connection, reconnecting if the
    server yielded (closed) it between requests."""
    for attempt in (0, 1):
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return json.loads(response.read())
        except (http.client.RemoteDisconnected, http.client.BadStatusLine,
                ConnectionResetError, BrokenPipeError):
            conn.close()
            if attempt:
                raise


class TestHandlerPool:
    def test_pooled_server_answers(self):
        server, host, port = make_server(threads=2)
        try:
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                assert json.load(response)["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()

    def test_many_clients_few_workers(self):
        """8 concurrent keep-alive clients drain through a 2-worker pool."""
        server, host, port = make_server(threads=2)
        errors: list[BaseException] = []

        def client():
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                for _ in range(5):
                    body = fetch(conn)
                    assert body["status"] == "ok"
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)
            finally:
                conn.close()

        threads = [threading.Thread(target=client) for _ in range(8)]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        elapsed = time.monotonic() - started
        try:
            assert not errors, errors[:3]
            # Starvation would park clients for keepalive_idle (5s) each;
            # fair yielding finishes the whole drain far sooner.
            assert elapsed < 10.0
        finally:
            server.shutdown()
            server.server_close()

    def test_idle_keepalive_connection_yields_its_worker(self):
        """With ONE worker, an idle persistent connection must not block
        a second client (the starvation regression)."""
        server, host, port = make_server(threads=1)
        idle = http.client.HTTPConnection(host, port, timeout=10)
        other = http.client.HTTPConnection(host, port, timeout=10)
        try:
            assert fetch(idle)["status"] == "ok"  # worker now parked on `idle`
            started = time.monotonic()
            assert fetch(other)["status"] == "ok"
            assert time.monotonic() - started < 2.0  # yielded, not timed out
            assert fetch(idle)["status"] == "ok"  # first client reconnects fine
        finally:
            idle.close()
            other.close()
            server.shutdown()
            server.server_close()

    def test_stalled_client_does_not_wedge_the_pool(self):
        server, host, port = make_server(threads=1, request_timeout=0.3)
        stalled = socket.create_connection((host, port))
        try:
            started = time.monotonic()
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=10
            ) as response:
                assert response.status == 200
            assert time.monotonic() - started < 5.0
        finally:
            stalled.close()
            server.shutdown()
            server.server_close()


class TestServeExtras:
    def test_healthz_reports_role_and_bound_port(self):
        server, host, port = make_server(threads=2)
        try:
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                body = json.load(response)
            assert body["role"] == "serve"
            assert body["port"] == port  # port 0 at bind time, real port here
        finally:
            server.shutdown()
            server.server_close()

    def test_read_only_server_refuses_writes(self):
        server, host, port = make_server(threads=1, read_only=True, role="shard-0")
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/observations",
                data=b"{}",
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 405
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                assert json.load(response)["role"] == "shard-0"
        finally:
            server.shutdown()
            server.server_close()
