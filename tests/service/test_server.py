"""Live HTTP round-trips against the serving layer.

A real :class:`RelationshipServer` runs on an ephemeral port on a
background thread; the tests talk to it over sockets exactly like an
external client.
"""

import json
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.core import compute_baseline
from repro.service import QueryEngine, start_server

from tests.conftest import make_random_space


@pytest.fixture(scope="module")
def served():
    space = make_random_space(30, seed=80)
    result = compute_baseline(space, collect_partial_dimensions=True)
    engine = QueryEngine(result, space)
    server = start_server(engine)
    host, port = server.server_address
    yield f"http://{host}:{port}", engine, space
    server.shutdown()
    server.server_close()


def get_json(base: str, path: str):
    with urllib.request.urlopen(base + path) as response:
        return response.status, json.load(response)


def request_json(base: str, path: str, method: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def encode(uri) -> str:
    return quote(str(uri), safe="")


class TestReadEndpoints:
    def test_healthz(self, served):
        base, engine, space = served
        status, body = get_json(base, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["observations"] == len(space)

    def test_point_lookups_match_engine(self, served):
        base, engine, space = served
        for record in space.observations[:5]:
            _, body = get_json(base, f"/observations/{encode(record.uri)}/containers")
            assert body["containers"] == list(engine.containers(record.uri))
            _, body = get_json(base, f"/observations/{encode(record.uri)}/contained")
            assert body["contained"] == list(engine.contained(record.uri))
            _, body = get_json(base, f"/observations/{encode(record.uri)}/complements")
            assert body["complements"] == list(engine.complements(record.uri))

    def test_related_respects_k(self, served):
        base, engine, space = served
        uri = space.observations[0].uri
        _, body = get_json(base, f"/observations/{encode(uri)}/related?k=3")
        assert len(body["related"]) <= 3
        expected = [
            {"uri": str(e["uri"]), "score": float(e["score"]), "relation": e["relation"]}
            for e in engine.related(uri, 3)
        ]
        got = [
            {"uri": e["uri"], "score": float(e["score"]), "relation": e["relation"]}
            for e in body["related"]
        ]
        assert got == expected

    def test_partial_and_transitive(self, served):
        base, engine, space = served
        uri = space.observations[0].uri
        _, body = get_json(base, f"/observations/{encode(uri)}/partial?k=4")
        assert len(body["partial"]) <= 4
        for entry in body["partial"]:
            assert entry["direction"] in ("contains", "within")
        _, body = get_json(base, f"/observations/{encode(uri)}/transitive?direction=up")
        assert {e["uri"] for e in body["reachable"]} == {
            str(u) for u, _ in engine.transitive_containers(uri)
        }

    def test_observation_summary(self, served):
        base, engine, space = served
        uri = space.observations[2].uri
        _, body = get_json(base, f"/observations/{encode(uri)}")
        assert body["uri"] == str(uri)
        assert body["containers"] == len(engine.containers(uri))

    def test_list_with_dataset_filter(self, served):
        base, engine, space = served
        dataset = space.observations[0].dataset
        _, body = get_json(base, f"/observations?dataset={encode(dataset)}&limit=5")
        assert body["count"] <= 5
        members = {r.uri for r in space.observations if r.dataset == dataset}
        assert all(u in members for u in body["observations"])

    def test_metrics_exposition(self, served):
        base, engine, space = served
        get_json(base, "/healthz")
        with urllib.request.urlopen(base + "/metrics") as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            text = response.read().decode()
        assert 'repro_requests_total{endpoint="healthz",status="200"}' in text
        assert "repro_request_latency_seconds_bucket" in text
        assert "repro_cache_hit_ratio" in text
        assert "repro_index_generation" in text

    def test_stats(self, served):
        base, engine, _ = served
        _, body = get_json(base, "/stats")
        assert body["index"]["full_pairs"] == len(engine.result.full)


class TestErrors:
    def assert_status(self, base, path, expected, method="GET", payload=None):
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == expected
        return json.load(excinfo.value)

    def test_unknown_observation_is_404(self, served):
        base, _, _ = served
        body = self.assert_status(
            base, f"/observations/{encode('http://nope/x')}/containers", 404
        )
        assert "unknown observation" in body["error"]

    def test_unknown_route_is_404(self, served):
        base, _, _ = served
        self.assert_status(base, "/nope", 404)
        self.assert_status(base, "/observations/a/b/c/d", 404)

    def test_bad_k_is_400(self, served):
        base, _, space = served
        uri = space.observations[0].uri
        self.assert_status(base, f"/observations/{encode(uri)}/related?k=many", 400)

    def test_bad_transitive_direction_is_400(self, served):
        base, _, space = served
        uri = space.observations[0].uri
        self.assert_status(
            base, f"/observations/{encode(uri)}/transitive?direction=left", 400
        )

    def test_bad_insert_body_is_400(self, served):
        base, _, _ = served
        self.assert_status(base, "/observations", 400, method="POST", payload={"x": 1})
        self.assert_status(
            base, "/observations", 400, method="POST", payload={"observations": [{"uri": 5}]}
        )

    def test_method_not_allowed_is_405(self, served):
        base, _, space = served
        uri = space.observations[0].uri
        self.assert_status(base, f"/observations/{encode(uri)}", 405, method="POST")


class TestWriteEndpoints:
    @pytest.fixture()
    def writable(self):
        space = make_random_space(15, seed=81)
        result = compute_baseline(space, collect_partial_dimensions=True)
        engine = QueryEngine(result, space)
        server = start_server(engine)
        host, port = server.server_address
        yield f"http://{host}:{port}", engine, space
        server.shutdown()
        server.server_close()

    def test_insert_then_query_then_delete(self, writable):
        base, engine, space = writable
        record = space.observations[0]
        new_uri = "http://test.example/live"
        payload = {
            "observations": [
                {
                    "uri": new_uri,
                    "dataset": str(record.dataset),
                    "dimensions": {
                        str(d): str(c) for d, c in zip(space.dimensions, record.codes)
                    },
                    "measures": [str(m) for m in record.measures],
                }
            ]
        }
        status, body = request_json(base, "/observations", "POST", payload)
        assert status == 200
        assert body["inserted"] == 1
        assert body["generation"] == 1
        # the twin is now complementary with its template, over HTTP
        _, complements = get_json(base, f"/observations/{encode(new_uri)}/complements")
        assert str(record.uri) in complements["complements"]
        # health reflects the new observation count
        _, health = get_json(base, "/healthz")
        assert health["observations"] == len(engine.space) == 16
        status, body = request_json(base, f"/observations/{encode(new_uri)}", "DELETE")
        assert status == 200
        assert body["removed"] == 1 and body["generation"] == 2
        # gone again
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + f"/observations/{encode(new_uri)}/containers")
        assert excinfo.value.code == 404

    def test_insert_rejected_without_space(self):
        space = make_random_space(10, seed=82)
        result = compute_baseline(space)
        server = start_server(QueryEngine(result))  # store only, no space
        host, port = server.server_address
        base = f"http://{host}:{port}"
        try:
            request = urllib.request.Request(
                base + "/observations",
                data=json.dumps(
                    {"observations": [{"uri": "http://x/a", "dataset": "http://x/ds"}]}
                ).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 409
        finally:
            server.shutdown()
            server.server_close()
