"""The ISSUE's acceptance numbers, at test scale.

Runs the throughput benchmark's cached-vs-uncached measurement on a
small-but-dense corpus and asserts the >=10x criterion, plus a sanity
bound on point-lookup cost relative to a full pair scan.
"""

import sys
import time
from pathlib import Path

import pytest

from repro.core import compute_cubemask
from repro.data.synthetic import build_synthetic_space
from repro.service import QueryEngine

BENCHMARKS = Path(__file__).resolve().parent.parent.parent / "benchmarks"


def test_cached_speedup_at_least_10x():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import bench_service_throughput

        stats = bench_service_throughput.bench_cached_speedup(n=500, hot=64, rounds=5)
    finally:
        sys.path.remove(str(BENCHMARKS))
    assert stats["speedup"] >= 10, f"cached speedup only {stats['speedup']:.1f}x"
    assert stats["hit_rate"] > 0.5


def test_point_lookup_beats_pair_scan():
    """An indexed lookup must not degrade with the pair-set size the
    way a scan does: with ~100k indexed pairs, 1000 lookups finish in
    well under the time a single full scan of the pair list takes x100."""
    space = build_synthetic_space(1500, dimension_count=4, seed=5)
    result = compute_cubemask(space)
    engine = QueryEngine(result, space, cache_size=0)
    uris = [record.uri for record in space.observations[:1000]]
    started = time.perf_counter()
    for uri in uris:
        engine.containers(uri)
    indexed = time.perf_counter() - started

    # the O(pairs) alternative the index replaces, timed once
    probe = uris[0]
    started = time.perf_counter()
    scan = {a for a, b in result.full if b == probe}
    one_scan = time.perf_counter() - started
    assert set(engine.containers(probe)) == scan
    per_lookup = indexed / len(uris)
    assert per_lookup < max(one_scan, 1e-4), (
        f"indexed lookup {per_lookup * 1e6:.1f}us should beat a "
        f"single pair scan {one_scan * 1e6:.1f}us"
    )
