"""Unit tests for GROUP BY / aggregate evaluation."""

import pytest

from repro.errors import SPARQLEvaluationError
from repro.rdf import Graph, parse_turtle
from repro.sparql import query
from repro.sparql.ast import Var


@pytest.fixture
def cities() -> Graph:
    return parse_turtle(
        """
        @prefix ex: <http://example.org/> .
        ex:athens ex:country ex:GR ; ex:pop 660 .
        ex:ioannina ex:country ex:GR ; ex:pop 65 .
        ex:rome ex:country ex:IT ; ex:pop 2800 .
        ex:milan ex:country ex:IT ; ex:pop 1350 .
        ex:austin ex:country ex:US ; ex:pop 950 .
        """
    )


def by_country(rows, value_var):
    return {
        row[Var("c")].local_name(): row[Var(value_var)].to_python()
        for row in rows
    }


class TestGroupBy:
    def test_count_per_group(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s ex:country ?c } GROUP BY ?c",
        )
        assert by_country(rows, "n") == {"GR": 2, "IT": 2, "US": 1}

    def test_sum_avg(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?c (SUM(?p) AS ?total) (AVG(?p) AS ?mean) "
            "WHERE { ?s ex:country ?c ; ex:pop ?p } GROUP BY ?c",
        )
        totals = by_country(rows, "total")
        assert totals == {"GR": 725, "IT": 4150, "US": 950}
        means = by_country(rows, "mean")
        assert means["IT"] == pytest.approx(2075.0)

    def test_min_max(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?c (MIN(?p) AS ?low) (MAX(?p) AS ?high) "
            "WHERE { ?s ex:country ?c ; ex:pop ?p } GROUP BY ?c",
        )
        assert by_country(rows, "low")["GR"] == 65
        assert by_country(rows, "high")["GR"] == 660

    def test_bare_variable_must_be_grouped(self, cities):
        with pytest.raises(SPARQLEvaluationError):
            query(
                cities,
                "PREFIX ex: <http://example.org/> "
                "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ex:country ?c } GROUP BY ?c",
            )

    def test_group_key_in_output(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?c WHERE { ?s ex:country ?c } GROUP BY ?c",
        )
        assert len(rows) == 3


class TestImplicitGroup:
    def test_count_star(self, cities):
        rows = query(cities, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        assert rows[0][Var("n")].to_python() == 10

    def test_empty_match_still_yields_row(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> SELECT (COUNT(*) AS ?n) WHERE { ?s ex:nothing ?o }",
        )
        assert rows[0][Var("n")].to_python() == 0

    def test_sum_of_empty_is_zero(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> SELECT (SUM(?p) AS ?t) WHERE { ?s ex:nothing ?p }",
        )
        assert rows[0][Var("t")].to_python() == 0

    def test_avg_of_empty_unbound(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> SELECT (AVG(?p) AS ?m) WHERE { ?s ex:nothing ?p }",
        )
        assert Var("m") not in rows[0]


class TestDistinctAndSample:
    def test_count_distinct(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?s ex:country ?c }",
        )
        assert rows[0][Var("n")].to_python() == 3

    def test_sample_returns_some_value(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT (SAMPLE(?c) AS ?any) WHERE { ?s ex:country ?c }",
        )
        assert rows[0][Var("any")].local_name() in {"GR", "IT", "US"}

    def test_non_numeric_min_uses_term_order(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT (MIN(?c) AS ?first) WHERE { ?s ex:country ?c }",
        )
        assert rows[0][Var("first")].local_name() == "GR"


class TestExpressionAliases:
    def test_arithmetic_alias(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT (?p / 10 AS ?tens) WHERE { ex:athens ex:pop ?p }",
        )
        assert rows[0][Var("tens")].to_python() == 66

    def test_alias_mixed_with_bare_vars(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s (?p + 1 AS ?incremented) WHERE { ?s ex:pop ?p } ORDER BY ?s LIMIT 1",
        )
        assert rows[0][Var("incremented")].to_python() == 661

    def test_error_in_alias_leaves_unbound(self, cities):
        rows = query(
            cities,
            "PREFIX ex: <http://example.org/> "
            "SELECT (?c + 1 AS ?bad) WHERE { ?s ex:country ?c } LIMIT 1",
        )
        assert Var("bad") not in rows[0]
