"""Unit tests for CONSTRUCT queries."""

import pytest

from repro.errors import SPARQLSyntaxError
from repro.rdf import EX, Graph, parse_turtle
from repro.sparql import query
from repro.sparql.parser import parse_query


@pytest.fixture
def graph() -> Graph:
    return parse_turtle(
        """
        @prefix ex: <http://example.org/> .
        @prefix skos: <http://www.w3.org/2004/02/skos/core#> .
        ex:Athens skos:broader ex:Greece .
        ex:Greece skos:broader ex:Europe .
        ex:Athens ex:label "Athens" .
        """
    )


class TestConstruct:
    def test_simple_rewrite(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ?child ex:under ?parent } WHERE { ?child skos:broader ?parent }",
        )
        assert isinstance(built, Graph)
        assert (EX.Athens, EX.under, EX.Greece) in built
        assert (EX.Greece, EX.under, EX.Europe) in built
        assert len(built) == 2

    def test_multi_triple_template(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ?c ex:under ?p . ?p ex:over ?c } WHERE { ?c skos:broader ?p }",
        )
        assert len(built) == 4
        assert (EX.Greece, EX.over, EX.Athens) in built

    def test_constant_triples_in_template(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ex:report ex:about ?c } WHERE { ?c skos:broader ex:Greece }",
        )
        assert (EX.report, EX.about, EX.Athens) in built

    def test_with_property_path_in_where(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ?a ex:ancestor ?b } WHERE { ?a skos:broader+ ?b }",
        )
        assert (EX.Athens, EX.ancestor, EX.Europe) in built
        assert len(built) == 3

    def test_unbound_template_variable_skipped(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ?c ex:under ?p . ?c ex:named ?name } "
            "WHERE { ?c skos:broader ?p OPTIONAL { ?c ex:label ?name } }",
        )
        # Only Athens has a label; Greece's ex:named triple is skipped.
        assert (EX.Athens, EX.named, None.__class__) not in built  # type sanity
        named = list(built.triples(None, EX.named, None))
        assert len(named) == 1

    def test_literal_in_subject_position_skipped(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ?name ex:labelOf ?c } WHERE { ?c ex:label ?name }",
        )
        assert len(built) == 0

    def test_duplicates_collapse(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ex:x ex:constant ex:y } WHERE { ?c skos:broader ?p }",
        )
        assert len(built) == 1

    def test_where_keyword_optional(self, graph):
        built = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ?c ex:u ?p } { ?c skos:broader ?p }",
        )
        assert len(built) == 2

    def test_path_in_template_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("CONSTRUCT { ?a skos:broader+ ?b } WHERE { ?a ?p ?b }")

    def test_empty_template(self, graph):
        built = query(graph, "CONSTRUCT { } WHERE { ?s ?p ?o }")
        assert len(built) == 0
