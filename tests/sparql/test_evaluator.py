"""Unit tests for SPARQL evaluation: BGPs, filters, solution modifiers."""

import pytest

from repro.rdf import EX, Graph, Literal, parse_turtle
from repro.sparql import query
from repro.sparql.ast import Var


@pytest.fixture
def graph() -> Graph:
    return parse_turtle(
        """
        @prefix ex: <http://example.org/> .
        ex:alice a ex:Person ; ex:age 30 ; ex:knows ex:bob, ex:carol ; ex:name "Alice" .
        ex:bob a ex:Person ; ex:age 25 ; ex:knows ex:carol ; ex:name "Bob" .
        ex:carol a ex:Person ; ex:age 35 ; ex:name "Carol"@en .
        ex:dave a ex:Robot ; ex:name "Dave" .
        """
    )


def bindings(rows, name):
    return [row[Var(name)] for row in rows]


class TestBGP:
    def test_single_pattern(self, graph):
        rows = query(graph, "PREFIX ex: <http://example.org/> SELECT ?s { ?s a ex:Person }")
        assert len(rows) == 3

    def test_join_two_patterns(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?a ?b { ?a ex:knows ?b . ?b a ex:Person }",
        )
        assert len(rows) == 3

    def test_shared_variable_consistency(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?x { ?x ex:knows ?x }",
        )
        assert rows == []

    def test_variable_predicate(self, graph):
        rows = query(graph, "PREFIX ex: <http://example.org/> SELECT ?p { ex:dave ?p ?o }")
        assert len(rows) == 2

    def test_no_match(self, graph):
        rows = query(graph, "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:zzz ?o }")
        assert rows == []

    def test_ground_triple_as_guard(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ex:alice a ex:Person . ?s a ex:Robot }",
        )
        assert bindings(rows, "s") == [EX.dave]


class TestFilters:
    def test_numeric_comparison(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:age ?a FILTER(?a > 28) }",
        )
        assert sorted(bindings(rows, "s")) == [EX.alice, EX.carol]

    def test_inequality_on_uris(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?a ?b "
            "{ ?a a ex:Person . ?b a ex:Person FILTER(?a != ?b) }",
        )
        assert len(rows) == 6

    def test_arithmetic(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:age ?a FILTER(?a * 2 = 50) }",
        )
        assert bindings(rows, "s") == [EX.bob]

    def test_unbound_variable_filter_excludes(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s a ex:Person FILTER(?zzz = 1) }",
        )
        assert rows == []

    def test_bound(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s a ex:Person OPTIONAL { ?s ex:knows ?k } FILTER(!BOUND(?k)) }",
        )
        assert bindings(rows, "s") == [EX.carol]

    def test_not_exists(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s a ex:Person FILTER NOT EXISTS { ?s ex:knows ?k } }",
        )
        assert bindings(rows, "s") == [EX.carol]

    def test_exists(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s a ex:Person FILTER EXISTS { ?s ex:knows ex:carol } }",
        )
        assert sorted(bindings(rows, "s")) == [EX.alice, EX.bob]

    def test_nested_not_exists(self, graph):
        # People who know everyone they could know... double negation.
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s a ex:Person "
            "FILTER NOT EXISTS { ?o a ex:Person . FILTER(?o != ?s) "
            "FILTER NOT EXISTS { ?s ex:knows ?o } } }",
        )
        assert bindings(rows, "s") == [EX.alice]

    def test_regex(self, graph):
        rows = query(
            graph,
            'PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:name ?n FILTER REGEX(?n, "^[AB]") }',
        )
        assert len(rows) == 2

    def test_in(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s a ?t FILTER(?t IN (ex:Robot)) }",
        )
        assert bindings(rows, "s") == [EX.dave]

    def test_or_error_recovery(self, graph):
        # Left side errors (unbound), right side true -> solution kept.
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s a ex:Robot FILTER(?zz = 1 || 1 = 1) }",
        )
        assert len(rows) == 1


class TestOptionalUnionValues:
    def test_optional_extends_when_present(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s ?k "
            "{ ?s a ex:Person OPTIONAL { ?s ex:knows ?k } }",
        )
        with_k = [r for r in rows if Var("k") in r]
        without_k = [r for r in rows if Var("k") not in r]
        assert len(with_k) == 3 and len(without_k) == 1

    def test_union(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { { ?s a ex:Robot } UNION { ?s ex:age 30 } }",
        )
        assert sorted(bindings(rows, "s")) == [EX.alice, EX.dave]

    def test_values_restricts(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ VALUES ?s { ex:alice ex:dave } ?s a ex:Person }",
        )
        assert bindings(rows, "s") == [EX.alice]


class TestSolutionModifiers:
    def test_distinct(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT DISTINCT ?t { ?s a ?t }",
        )
        assert len(rows) == 2

    def test_order_by_numeric(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s ?a { ?s ex:age ?a } ORDER BY ?a",
        )
        assert bindings(rows, "s") == [EX.bob, EX.alice, EX.carol]

    def test_order_by_desc(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s ?a { ?s ex:age ?a } ORDER BY DESC(?a)",
        )
        assert bindings(rows, "s") == [EX.carol, EX.alice, EX.bob]

    def test_limit_offset(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s ?a { ?s ex:age ?a } ORDER BY ?a LIMIT 1 OFFSET 1",
        )
        assert bindings(rows, "s") == [EX.alice]

    def test_projection_drops_variables(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:age ?a }",
        )
        assert all(set(row) == {Var("s")} for row in rows)

    def test_ask_true_false(self, graph):
        assert query(graph, "PREFIX ex: <http://example.org/> ASK { ex:dave a ex:Robot }") is True
        assert query(graph, "PREFIX ex: <http://example.org/> ASK { ex:dave a ex:Person }") is False


class TestLiteralHandling:
    def test_typed_literal_match(self, graph):
        rows = query(graph, "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:age 30 }")
        assert bindings(rows, "s") == [EX.alice]

    def test_language_literal_match(self, graph):
        rows = query(
            graph,
            'PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:name "Carol"@en }',
        )
        assert bindings(rows, "s") == [EX.carol]

    def test_str_function(self, graph):
        rows = query(
            graph,
            'PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:name ?n FILTER(STR(?n) = "Carol") }',
        )
        assert bindings(rows, "s") == [EX.carol]
