"""Additional evaluator edge cases: modifier interplay, nesting, joins."""

import pytest

from repro.rdf import EX, parse_turtle
from repro.sparql import query
from repro.sparql.ast import Var


@pytest.fixture
def graph():
    return parse_turtle(
        """
        @prefix ex: <http://example.org/> .
        ex:a ex:score 3 ; ex:tag ex:T1 .
        ex:b ex:score 1 ; ex:tag ex:T1 ; ex:tag ex:T2 .
        ex:c ex:score 2 .
        ex:d ex:label "delta" .
        """
    )


class TestModifierInterplay:
    def test_order_then_distinct_then_limit(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT DISTINCT ?s { ?s ex:tag ?t } ORDER BY ?s LIMIT 1",
        )
        assert [r[Var("s")] for r in rows] == [EX.a]

    def test_order_by_unbound_sorts_first(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s ?t { ?s ex:score ?v OPTIONAL { ?s ex:tag ?t } } ORDER BY ?t ?s",
        )
        # ex:c has no tag -> unbound sorts before bound terms.
        assert rows[0][Var("s")] == EX.c

    def test_offset_beyond_results(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:score ?v } OFFSET 10",
        )
        assert rows == []

    def test_limit_zero(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:score ?v } LIMIT 0",
        )
        assert rows == []


class TestNesting:
    def test_optional_inside_optional(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s ?t ?l "
            "{ ?s ex:score ?v OPTIONAL { ?s ex:tag ?t OPTIONAL { ?s ex:label ?l } } }",
        )
        assert len(rows) == 4  # a, b(T1), b(T2), c

    def test_union_inside_optional(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s ?x "
            "{ ?s ex:score ?v OPTIONAL { { ?s ex:tag ?x } UNION { ?s ex:label ?x } } }",
        )
        assert any(Var("x") not in row for row in rows)  # ex:c keeps bare row

    def test_exists_referencing_outer_binding(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s ex:score ?v FILTER EXISTS { ?s ex:tag ex:T2 } }",
        )
        assert [r[Var("s")] for r in rows] == [EX.b]


class TestValuesJoins:
    def test_multi_row_values_join(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s ?v "
            "{ VALUES (?s) { (ex:a) (ex:c) (ex:missing) } ?s ex:score ?v }",
        )
        assert {r[Var("s")] for r in rows} == {EX.a, EX.c}

    def test_values_after_patterns_filters(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s ex:score ?v VALUES ?v { 1 2 } }",
        )
        assert {r[Var("s")] for r in rows} == {EX.b, EX.c}


class TestMixedTypeOrdering:
    def test_numbers_sort_before_other_literals(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> SELECT ?o { ?s ?p ?o "
            "FILTER(ISLITERAL(?o)) } ORDER BY ?o",
        )
        values = [r[Var("o")] for r in rows]
        numeric = [v for v in values if v.datatype is not None]
        assert values[: len(numeric)] == sorted(numeric, key=lambda t: t.to_python())
