"""Unit tests for BIND, MINUS, HAVING, IF and COALESCE."""

import pytest

from repro.errors import SPARQLEvaluationError
from repro.rdf import EX, Graph, parse_turtle
from repro.sparql import query
from repro.sparql.ast import Var


@pytest.fixture
def graph() -> Graph:
    return parse_turtle(
        """
        @prefix ex: <http://example.org/> .
        ex:a ex:pop 10 ; ex:kind ex:Small .
        ex:b ex:pop 200 ; ex:kind ex:Big .
        ex:c ex:pop 3000 .
        """
    )


class TestBind:
    def test_bind_computes_value(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s ?double { ?s ex:pop ?p BIND(?p * 2 AS ?double) } ORDER BY ?s",
        )
        assert rows[0][Var("double")].to_python() == 20

    def test_bind_usable_in_later_filter(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s { ?s ex:pop ?p BIND(?p * 2 AS ?d) FILTER(?d > 300) }",
        )
        assert sorted(r[Var("s")] for r in rows) == [EX.b, EX.c]

    def test_bind_error_leaves_unbound(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s ?bad { ?s ex:kind ?k BIND(?k + 1 AS ?bad) }",
        )
        assert all(Var("bad") not in row for row in rows)

    def test_rebinding_rejected(self, graph):
        with pytest.raises(SPARQLEvaluationError):
            query(
                graph,
                "PREFIX ex: <http://example.org/> "
                "SELECT ?s { ?s ex:pop ?p BIND(1 AS ?p) }",
            )


class TestMinus:
    def test_removes_compatible_solutions(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s { ?s ex:pop ?p MINUS { ?s ex:kind ex:Big } }",
        )
        assert sorted(r[Var("s")] for r in rows) == [EX.a, EX.c]

    def test_disjoint_domains_remove_nothing(self, graph):
        # MINUS with no shared variables never removes (SPARQL semantics).
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s { ?s ex:pop ?p MINUS { ?x ex:kind ex:Big } }",
        )
        assert len(rows) == 3

    def test_minus_vs_not_exists_on_shared(self, graph):
        via_minus = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s { ?s ex:pop ?p MINUS { ?s ex:kind ?k } }",
        )
        via_not_exists = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s { ?s ex:pop ?p FILTER NOT EXISTS { ?s ex:kind ?k } }",
        )
        assert {r[Var("s")] for r in via_minus} == {r[Var("s")] for r in via_not_exists}


class TestHaving:
    def test_having_filters_groups(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s (SUM(?p) AS ?t) WHERE { ?s ex:pop ?p } GROUP BY ?s HAVING(?t > 100)",
        )
        assert sorted(r[Var("s")] for r in rows) == [EX.b, EX.c]

    def test_having_with_count(self, graph):
        rows = query(
            graph,
            "SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s HAVING(?n >= 2)",
        )
        assert sorted(r[Var("s")] for r in rows) == [EX.a, EX.b]

    def test_multiple_having_conditions(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s (SUM(?p) AS ?t) WHERE { ?s ex:pop ?p } GROUP BY ?s "
            "HAVING(?t > 100) HAVING(?t < 1000)",
        )
        assert [r[Var("s")] for r in rows] == [EX.b]


class TestIfCoalesce:
    def test_if_branches(self, graph):
        rows = query(
            graph,
            'PREFIX ex: <http://example.org/> '
            'SELECT ?s (IF(?p > 100, "big", "small") AS ?size) { ?s ex:pop ?p } ORDER BY ?s',
        )
        sizes = [r[Var("size")].lexical for r in rows]
        assert sizes == ["small", "big", "big"]

    def test_if_is_lazy(self, graph):
        # The untaken branch (?k + 1 on a URI) must not raise.
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s (IF(1 = 1, ?p, ?p + ex:a) AS ?v) { ?s ex:pop ?p } ORDER BY ?s",
        )
        assert rows[0][Var("v")].to_python() == 10

    def test_coalesce_first_bound(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            'SELECT ?s (COALESCE(?k, "none") AS ?kind) '
            "{ ?s ex:pop ?p OPTIONAL { ?s ex:kind ?k } } ORDER BY ?s",
        )
        kinds = [r[Var("kind")] for r in rows]
        assert kinds[0] == EX.Small
        assert kinds[2].lexical == "none"

    def test_coalesce_all_error_unbound(self, graph):
        rows = query(
            graph,
            "PREFIX ex: <http://example.org/> "
            "SELECT ?s (COALESCE(?nope) AS ?v) { ?s ex:pop ?p } LIMIT 1",
        )
        assert Var("v") not in rows[0]
