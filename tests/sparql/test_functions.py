"""Unit tests for expression helpers: EBV, comparisons, builtins."""

import pytest

from repro.rdf import Literal, URIRef
from repro.rdf.terms import BNode, XSD_BOOLEAN, XSD_INTEGER
from repro.sparql.functions import (
    EvalError,
    call_builtin,
    compare_terms,
    ebv,
    numeric_value,
    FALSE,
    TRUE,
)


class TestEBV:
    def test_boolean_literals(self):
        assert ebv(TRUE) is True
        assert ebv(FALSE) is False

    def test_numbers(self):
        assert ebv(Literal(1)) is True
        assert ebv(Literal(0)) is False
        assert ebv(Literal(0.0)) is False

    def test_strings(self):
        assert ebv(Literal("x")) is True
        assert ebv(Literal("")) is False

    def test_uri_has_no_ebv(self):
        with pytest.raises(EvalError):
            ebv(URIRef("http://e/a"))


class TestComparisons:
    def test_numeric_cross_datatype(self):
        assert compare_terms("=", Literal(1), Literal("1.0", datatype="http://www.w3.org/2001/XMLSchema#double"))
        assert compare_terms("<", Literal(1), Literal(2.5))

    def test_uri_equality(self):
        a, b = URIRef("http://e/a"), URIRef("http://e/b")
        assert compare_terms("=", a, a)
        assert compare_terms("!=", a, b)

    def test_uri_ordering_is_error(self):
        with pytest.raises(EvalError):
            compare_terms("<", URIRef("http://e/a"), URIRef("http://e/b"))

    def test_string_ordering(self):
        assert compare_terms("<", Literal("apple"), Literal("banana"))

    def test_uri_never_equals_literal(self):
        assert not compare_terms("=", URIRef("http://e/a"), Literal("http://e/a"))

    def test_incomparable_datatypes_error(self):
        with pytest.raises(EvalError):
            compare_terms("=", Literal("x", datatype=XSD_BOOLEAN), Literal("x", datatype="http://e/custom"))

    def test_numeric_value_rejects_strings(self):
        with pytest.raises(EvalError):
            numeric_value(Literal("five"))


class TestBuiltins:
    def test_str(self):
        assert call_builtin("STR", [URIRef("http://e/a")]) == Literal("http://e/a")
        assert call_builtin("STR", [Literal(5)]) == Literal("5")

    def test_str_of_bnode_errors(self):
        with pytest.raises(EvalError):
            call_builtin("STR", [BNode("x")])

    def test_datatype(self):
        assert str(call_builtin("DATATYPE", [Literal(5)])) == XSD_INTEGER

    def test_lang(self):
        assert call_builtin("LANG", [Literal("x", language="en")]) == Literal("en")
        assert call_builtin("LANG", [Literal("x")]) == Literal("")

    def test_type_checks(self):
        assert call_builtin("ISIRI", [URIRef("http://e/")]) == TRUE
        assert call_builtin("ISBLANK", [BNode()]) == TRUE
        assert call_builtin("ISLITERAL", [Literal("x")]) == TRUE
        assert call_builtin("ISNUMERIC", [Literal(5)]) == TRUE
        assert call_builtin("ISNUMERIC", [Literal("5")]) == FALSE

    def test_sameterm_strict(self):
        assert call_builtin("SAMETERM", [Literal("1"), Literal("1")]) == TRUE
        assert call_builtin("SAMETERM", [Literal(1), Literal("1")]) == FALSE

    def test_regex_flags(self):
        assert call_builtin("REGEX", [Literal("Athens"), Literal("^ath"), Literal("i")]) == TRUE
        assert call_builtin("REGEX", [Literal("Athens"), Literal("^ath")]) == FALSE

    def test_string_predicates(self):
        assert call_builtin("STRSTARTS", [Literal("Athens"), Literal("Ath")]) == TRUE
        assert call_builtin("STRENDS", [Literal("Athens"), Literal("ens")]) == TRUE
        assert call_builtin("CONTAINS", [Literal("Athens"), Literal("the")]) == TRUE

    def test_strlen_abs(self):
        assert call_builtin("STRLEN", [Literal("abcd")]).to_python() == 4
        assert call_builtin("ABS", [Literal(-3)]).to_python() == 3

    def test_unknown_builtin(self):
        with pytest.raises(EvalError):
            call_builtin("NOSUCH", [])


class TestStringFunctions:
    def test_case_functions(self):
        assert call_builtin("UCASE", [Literal("Athens")]) == Literal("ATHENS")
        assert call_builtin("LCASE", [Literal("Athens")]) == Literal("athens")

    def test_concat(self):
        assert call_builtin("CONCAT", [Literal("a"), Literal("-"), Literal("b")]) == Literal("a-b")

    def test_strbefore_strafter(self):
        assert call_builtin("STRBEFORE", [Literal("geo/GR"), Literal("/")]) == Literal("geo")
        assert call_builtin("STRAFTER", [Literal("geo/GR"), Literal("/")]) == Literal("GR")
        assert call_builtin("STRBEFORE", [Literal("abc"), Literal("z")]) == Literal("")
        assert call_builtin("STRAFTER", [Literal("abc"), Literal("z")]) == Literal("")

    def test_substr_one_based(self):
        assert call_builtin("SUBSTR", [Literal("Athens"), Literal(2)]) == Literal("thens")
        assert call_builtin("SUBSTR", [Literal("Athens"), Literal(2), Literal(3)]) == Literal("the")

    def test_replace(self):
        assert call_builtin(
            "REPLACE", [Literal("a-b-c"), Literal("-"), Literal("+")]
        ) == Literal("a+b+c")
        assert call_builtin(
            "REPLACE", [Literal("Athens"), Literal("^ATH"), Literal("X"), Literal("i")]
        ) == Literal("Xens")

    def test_numeric_rounding(self):
        assert call_builtin("ROUND", [Literal(2.5)]).to_python() == 2.0
        assert call_builtin("FLOOR", [Literal(2.9)]).to_python() == 2.0
        assert call_builtin("CEIL", [Literal(2.1)]).to_python() == 3.0
        assert call_builtin("CEIL", [Literal(3)]).to_python() == 3

    def test_in_query(self):
        from repro.rdf import parse_turtle
        from repro.sparql import query
        from repro.sparql.ast import Var

        g = parse_turtle('@prefix ex: <http://example.org/> . ex:a ex:name "Athens" .')
        rows = query(
            g,
            "PREFIX ex: <http://example.org/> "
            "SELECT (UCASE(SUBSTR(?n, 1, 3)) AS ?code) { ?s ex:name ?n }",
        )
        assert rows[0][Var("code")] == Literal("ATH")
