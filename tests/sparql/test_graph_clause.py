"""Unit tests for SPARQL GRAPH patterns over RDF datasets."""

import pytest

from repro.rdf import EX, Graph, RDFDataset, parse_trig
from repro.sparql import query
from repro.sparql.ast import Var


@pytest.fixture
def dataset() -> RDFDataset:
    return parse_trig(
        """
        @prefix ex: <http://example.org/> .
        ex:g1 ex:publishedBy ex:Eurostat .
        ex:g2 ex:publishedBy ex:WorldBank .
        GRAPH ex:g1 { ex:a ex:p ex:b . ex:a ex:kind ex:K1 . }
        GRAPH ex:g2 { ex:c ex:p ex:d . }
        """
    )


class TestGraphClause:
    def test_variable_graph_enumerates(self, dataset):
        rows = query(dataset, "SELECT ?g ?s { GRAPH ?g { ?s ?p ?o } }")
        pairs = {(r[Var("g")], r[Var("s")]) for r in rows}
        assert (EX.g1, EX.a) in pairs
        assert (EX.g2, EX.c) in pairs

    def test_constant_graph(self, dataset):
        rows = query(
            dataset,
            "PREFIX ex: <http://example.org/> SELECT ?s { GRAPH ex:g1 { ?s ex:p ?o } }",
        )
        assert [r[Var("s")] for r in rows] == [EX.a]

    def test_unknown_graph_matches_nothing(self, dataset):
        rows = query(
            dataset,
            "PREFIX ex: <http://example.org/> SELECT ?s { GRAPH ex:nope { ?s ?p ?o } }",
        )
        assert rows == []

    def test_default_graph_patterns_dont_see_named(self, dataset):
        rows = query(dataset, "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:p ?o }")
        assert rows == []  # ex:p triples live only in named graphs

    def test_join_default_with_named(self, dataset):
        rows = query(
            dataset,
            "PREFIX ex: <http://example.org/> SELECT ?publisher ?s "
            "{ ?g ex:publishedBy ?publisher . GRAPH ?g { ?s ex:p ?o } }",
        )
        mapping = {r[Var("s")]: r[Var("publisher")] for r in rows}
        assert mapping == {EX.a: EX.Eurostat, EX.c: EX.WorldBank}

    def test_graph_variable_already_bound_is_respected(self, dataset):
        rows = query(
            dataset,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ VALUES ?g { ex:g2 } GRAPH ?g { ?s ?p ?o } }",
        )
        assert [r[Var("s")] for r in rows] == [EX.c]

    def test_plain_graph_has_no_named_graphs(self):
        g = Graph([(EX.a, EX.p, EX.b)])
        assert query(g, "SELECT ?s { GRAPH ?g { ?s ?p ?o } }") == []

    def test_filter_inside_graph_block(self, dataset):
        rows = query(
            dataset,
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ GRAPH ?g { ?s ex:p ?o FILTER(?o = ex:d) } }",
        )
        assert [r[Var("s")] for r in rows] == [EX.c]

    def test_aggregate_over_graphs(self, dataset):
        rows = query(
            dataset,
            "SELECT ?g (COUNT(*) AS ?n) { GRAPH ?g { ?s ?p ?o } } GROUP BY ?g",
        )
        counts = {r[Var("g")].local_name(): r[Var("n")].to_python() for r in rows}
        assert counts == {"g1": 2, "g2": 1}
