"""Unit tests for the BGP join-order optimizer."""

import pytest

from repro.rdf import Graph, parse_turtle
from repro.sparql import parse_query, query
from repro.sparql.ast import Filter, GroupPattern, TriplePattern, Var
from repro.sparql.optimizer import estimate_pattern, optimize_group


@pytest.fixture
def graph() -> Graph:
    # 1 rare triple, many common ones.
    text = ["@prefix ex: <http://example.org/> ."]
    text.append("ex:special ex:rare ex:unique .")
    for i in range(30):
        text.append(f"ex:n{i} ex:common ex:target .")
        text.append(f"ex:n{i} a ex:Node .")
    return parse_turtle("\n".join(text))


def patterns_of(group: GroupPattern):
    return [e for e in group.elements if isinstance(e, TriplePattern)]


class TestEstimates:
    def test_constant_predicate_counts(self, graph):
        q = parse_query("PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:common ?o }")
        pattern = q.where.elements[0]
        assert estimate_pattern(graph, pattern, set()) == 30.0

    def test_rare_pattern_cheaper(self, graph):
        q = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:common ?o . ?s ex:rare ?r }"
        )
        common, rare = patterns_of(q.where)
        assert estimate_pattern(graph, rare, set()) < estimate_pattern(graph, common, set())

    def test_bound_variable_discount(self, graph):
        q = parse_query("PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:common ?o }")
        pattern = q.where.elements[0]
        free = estimate_pattern(graph, pattern, set())
        bound = estimate_pattern(graph, pattern, {Var("s")})
        assert bound < free

    def test_paths_estimated_pessimistically(self, graph):
        q = parse_query("PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:common* ?o }")
        path_pattern = q.where.elements[0]
        q2 = parse_query("PREFIX ex: <http://example.org/> SELECT ?s { ?s ex:common ?o }")
        plain = q2.where.elements[0]
        assert estimate_pattern(graph, path_pattern, set()) > estimate_pattern(graph, plain, set())


class TestReordering:
    def test_selective_pattern_moves_first(self, graph):
        q = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s { ?s a ex:Node . ?s ex:rare ?r }"
        )
        optimized = optimize_group(graph, q.where)
        ordered = patterns_of(optimized)
        assert ordered[0].predicate.local_name() == "rare"

    def test_connectivity_preferred_over_raw_cost(self, graph):
        # After binding ?s via the rare pattern, the connected common
        # pattern should come before a disconnected cheap one.
        q = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s ex:common ?o . ?x ex:rare ?y . ?s a ex:Node }"
        )
        optimized = optimize_group(graph, q.where)
        ordered = patterns_of(optimized)
        assert ordered[0].predicate.local_name() == "rare"
        # remaining two stay connected through ?s
        assert {p.predicate.local_name() for p in ordered[1:]} == {"common", "type"}

    def test_filters_act_as_barriers(self, graph):
        q = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s ex:common ?o FILTER(?o = ex:target) ?s ex:rare ?r }"
        )
        optimized = optimize_group(graph, q.where)
        kinds = [type(e).__name__ for e in optimized.elements]
        assert kinds == ["TriplePattern", "Filter", "TriplePattern"]

    def test_nested_groups_optimized(self, graph):
        q = parse_query(
            "PREFIX ex: <http://example.org/> SELECT ?s "
            "{ ?s ex:rare ?r OPTIONAL { ?s a ex:Node . ?s ex:common ?o } }"
        )
        optimized = optimize_group(graph, q.where)
        assert len(optimized.elements) == 2


class TestSemanticsPreserved:
    QUERIES = [
        "SELECT ?s { ?s a ex:Node . ?s ex:common ?o }",
        "SELECT ?s ?r { ?s ex:common ?o . ?x ex:rare ?r . ?s a ex:Node }",
        "SELECT ?s { ?s ex:common ?o FILTER NOT EXISTS { ?s ex:rare ?r } }",
        "SELECT ?s { { ?s ex:rare ?o } UNION { ?s ex:common ?o } }",
        "SELECT ?s { ?s a ex:Node OPTIONAL { ?s ex:rare ?r } FILTER(!BOUND(?r)) }",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_optimized_equals_naive(self, graph, text):
        full = "PREFIX ex: <http://example.org/> " + text

        def canonical(rows):
            return sorted(
                tuple(sorted((v.name, t) for v, t in row.items())) for row in rows
            )

        assert canonical(query(graph, full, optimize=True)) == canonical(
            query(graph, full, optimize=False)
        )
