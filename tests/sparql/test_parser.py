"""Unit tests for the SPARQL parser."""

import pytest

from repro.errors import SPARQLSyntaxError
from repro.rdf import RDF, URIRef
from repro.sparql.ast import (
    AskQuery,
    BinaryExpr,
    Exists,
    Filter,
    GroupPattern,
    OptionalPattern,
    PathAlternative,
    PathLink,
    PathMod,
    PathSequence,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    Var,
)
from repro.sparql.parser import parse_query


class TestSelectClause:
    def test_variables(self):
        q = parse_query("SELECT ?a ?b WHERE { ?a ?p ?b }")
        assert isinstance(q, SelectQuery)
        assert q.variables == (Var("a"), Var("b"))

    def test_star(self):
        q = parse_query("SELECT * WHERE { ?a ?p ?b }")
        assert q.variables == ()

    def test_distinct(self):
        q = parse_query("SELECT DISTINCT ?a WHERE { ?a ?p ?b }")
        assert q.distinct is True

    def test_where_keyword_optional(self):
        q = parse_query("SELECT ?a { ?a ?p ?b }")
        assert len(q.where.elements) == 1

    def test_limit_offset(self):
        q = parse_query("SELECT ?a WHERE { ?a ?p ?b } LIMIT 10 OFFSET 5")
        assert q.limit == 10 and q.offset == 5

    def test_order_by(self):
        q = parse_query("SELECT ?a WHERE { ?a ?p ?b } ORDER BY DESC(?a) ?b")
        assert q.order_by[0].descending is True
        assert q.order_by[1].descending is False

    def test_ask(self):
        q = parse_query("ASK { ?a ?p ?b }")
        assert isinstance(q, AskQuery)

    def test_no_variables_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT WHERE { ?a ?p ?b }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?a WHERE { ?a ?p ?b } garbage")


class TestPatterns:
    def test_triple_with_a(self):
        q = parse_query("SELECT ?s { ?s a <http://e/T> }")
        pattern = q.where.elements[0]
        assert pattern.predicate == RDF.type

    def test_prefixed_names(self):
        q = parse_query("PREFIX e: <http://e/> SELECT ?s { ?s e:p e:o }")
        pattern = q.where.elements[0]
        assert pattern.predicate == URIRef("http://e/p")
        assert pattern.obj == URIRef("http://e/o")

    def test_predicate_object_lists(self):
        q = parse_query("PREFIX e: <http://e/> SELECT ?s { ?s e:p e:a , e:b ; e:q e:c }")
        assert len(q.where.elements) == 3

    def test_default_prefixes_available(self):
        q = parse_query("SELECT ?s { ?s a qb:Observation }")
        assert q.where.elements[0].obj == URIRef("http://purl.org/linked-data/cube#Observation")

    def test_optional(self):
        q = parse_query("SELECT ?s { ?s ?p ?o OPTIONAL { ?s ?q ?r } }")
        assert isinstance(q.where.elements[1], OptionalPattern)

    def test_union(self):
        q = parse_query("SELECT ?s { { ?s ?p ?a } UNION { ?s ?p ?b } UNION { ?s ?p ?c } }")
        union = q.where.elements[0]
        assert isinstance(union, UnionPattern)
        assert len(union.branches) == 3

    def test_nested_group(self):
        q = parse_query("SELECT ?s { { ?s ?p ?o } }")
        assert isinstance(q.where.elements[0], GroupPattern)

    def test_values_single_var(self):
        q = parse_query("PREFIX e: <http://e/> SELECT ?s { VALUES ?s { e:a e:b } ?s ?p ?o }")
        values = q.where.elements[0]
        assert isinstance(values, ValuesPattern)
        assert len(values.rows) == 2

    def test_values_multi_var_with_undef(self):
        q = parse_query(
            "PREFIX e: <http://e/> SELECT ?a ?b { VALUES (?a ?b) { (e:x UNDEF) } }"
        )
        values = q.where.elements[0]
        assert values.rows[0][1] is None

    def test_unterminated_group(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s { ?s ?p ?o ")


class TestFilters:
    def test_comparison(self):
        q = parse_query("SELECT ?s { ?s ?p ?o FILTER(?o != ?s) }")
        flt = q.where.elements[1]
        assert isinstance(flt, Filter)
        assert isinstance(flt.expression, BinaryExpr)
        assert flt.expression.op == "!="

    def test_not_exists(self):
        q = parse_query("SELECT ?s { ?s ?p ?o FILTER NOT EXISTS { ?s ?q ?r } }")
        exists = q.where.elements[1]
        assert isinstance(exists, Exists) and exists.negated

    def test_exists(self):
        q = parse_query("SELECT ?s { ?s ?p ?o FILTER EXISTS { ?s ?q ?r } }")
        exists = q.where.elements[1]
        assert isinstance(exists, Exists) and not exists.negated

    def test_builtin_without_parens_wrapper(self):
        q = parse_query("SELECT ?s { ?s ?p ?o FILTER BOUND(?o) }")
        assert isinstance(q.where.elements[1], Filter)

    def test_logical_precedence(self):
        q = parse_query("SELECT ?s { ?s ?p ?o FILTER(?a = 1 || ?b = 2 && ?c = 3) }")
        expr = q.where.elements[1].expression
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_in_expression(self):
        q = parse_query("PREFIX e: <http://e/> SELECT ?s { ?s ?p ?o FILTER(?o IN (e:a, e:b)) }")
        expr = q.where.elements[1].expression
        assert len(expr.haystack) == 2 and not expr.negated

    def test_not_in_expression(self):
        q = parse_query("PREFIX e: <http://e/> SELECT ?s { ?s ?p ?o FILTER(?o NOT IN (e:a)) }")
        assert q.where.elements[1].expression.negated

    def test_nested_not_exists_in_expression(self):
        q = parse_query(
            "SELECT ?s { ?s ?p ?o FILTER(!BOUND(?o) || NOT EXISTS { ?s ?q ?r }) }"
        )
        assert isinstance(q.where.elements[1], Filter)


class TestPaths:
    def _predicate(self, text):
        q = parse_query(f"PREFIX e: <http://e/> SELECT ?s {{ ?s {text} ?o }}")
        return q.where.elements[0].predicate

    def test_plain_iri_is_term(self):
        assert self._predicate("e:p") == URIRef("http://e/p")

    def test_sequence(self):
        path = self._predicate("e:p/e:q")
        assert isinstance(path, PathSequence)
        assert len(path.steps) == 2

    def test_alternative(self):
        path = self._predicate("e:p|e:q")
        assert isinstance(path, PathAlternative)

    def test_star(self):
        path = self._predicate("e:p*")
        assert isinstance(path, PathMod) and path.modifier == "*"

    def test_plus_and_question(self):
        assert self._predicate("e:p+").modifier == "+"
        assert self._predicate("e:p?").modifier == "?"

    def test_inverse(self):
        path = self._predicate("^e:p")
        assert path.__class__.__name__ == "PathInverse"

    def test_grouped_path(self):
        path = self._predicate("(e:p/e:q)*")
        assert isinstance(path, PathMod)
        assert isinstance(path.path, PathSequence)

    def test_mixed_precedence(self):
        # '/' binds tighter than '|'
        path = self._predicate("e:a/e:b|e:c")
        assert isinstance(path, PathAlternative)
        assert isinstance(path.options[0], PathSequence)

    def test_a_in_path(self):
        path = self._predicate("a/e:p")
        assert isinstance(path, PathSequence)
        assert path.steps[0] == PathLink(RDF.type)
