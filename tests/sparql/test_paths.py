"""Unit tests for property-path evaluation."""

import pytest

from repro.rdf import EX, Graph, parse_turtle
from repro.sparql import query
from repro.sparql.ast import Var


@pytest.fixture
def chain() -> Graph:
    """Athens -> Greece -> Europe -> World plus one sibling branch."""
    return parse_turtle(
        """
        @prefix ex: <http://example.org/> .
        @prefix skos: <http://www.w3.org/2004/02/skos/core#> .
        ex:Athens skos:broader ex:Greece .
        ex:Greece skos:broader ex:Europe .
        ex:Europe skos:broader ex:World .
        ex:Rome skos:broader ex:Italy .
        ex:Italy skos:broader ex:Europe .
        ex:Athens ex:label "Athens" .
        """
    )


def values(rows, name="x"):
    return sorted(row[Var(name)] for row in rows)


class TestBasicPaths:
    def test_sequence(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ex:Athens skos:broader/skos:broader ?x }",
        )
        assert values(rows) == [EX.Europe]

    def test_alternative(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ex:Athens skos:broader|ex:label ?x }",
        )
        assert len(rows) == 2

    def test_inverse(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ex:Europe ^skos:broader ?x }",
        )
        assert values(rows) == [EX.Greece, EX.Italy]

    def test_inverse_of_sequence_equivalence(self, chain):
        forward = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ?x skos:broader/skos:broader ex:World }",
        )
        assert values(forward) == [EX.Greece, EX.Italy]


class TestClosures:
    def test_star_includes_self(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ex:Athens skos:broader* ?x }",
        )
        assert values(rows) == [EX.Athens, EX.Europe, EX.Greece, EX.World]

    def test_plus_excludes_self(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ex:Athens skos:broader+ ?x }",
        )
        assert values(rows) == [EX.Europe, EX.Greece, EX.World]

    def test_question_mark(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ex:Athens skos:broader? ?x }",
        )
        assert values(rows) == [EX.Athens, EX.Greece]

    def test_star_backward(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ?x skos:broader* ex:Europe }",
        )
        assert values(rows) == [EX.Athens, EX.Europe, EX.Greece, EX.Italy, EX.Rome]

    def test_star_handles_cycles(self):
        g = parse_turtle(
            """
            @prefix ex: <http://example.org/> .
            ex:a ex:p ex:b . ex:b ex:p ex:a .
            """
        )
        rows = query(g, "PREFIX ex: <http://example.org/> SELECT ?x { ex:a ex:p* ?x }")
        assert values(rows) == [EX.a, EX.b]

    def test_plus_reaches_origin_through_cycle(self):
        g = parse_turtle(
            """
            @prefix ex: <http://example.org/> .
            ex:a ex:p ex:b . ex:b ex:p ex:a .
            """
        )
        rows = query(g, "PREFIX ex: <http://example.org/> SELECT ?x { ex:a ex:p+ ?x }")
        assert values(rows) == [EX.a, EX.b]

    def test_grouped_sequence_star(self, chain):
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?x { ex:Athens (skos:broader/skos:broader)* ?x }",
        )
        assert values(rows) == [EX.Athens, EX.Europe]


class TestUnboundEnds:
    def test_both_ends_unbound_link(self, chain):
        rows = query(chain, "SELECT ?a ?b { ?a skos:broader ?b }")
        assert len(rows) == 5

    def test_both_ends_unbound_star_same_var(self, chain):
        # ?x broader* ?x must bind every node to itself only.
        rows = query(chain, "SELECT ?x { ?x skos:broader* ?x }")
        names = values(rows)
        assert EX.Athens in names and EX.World in names
        assert len(rows) == len(set(names))

    def test_strict_path_pattern_from_paper(self, chain):
        # The paper's partial-containment path: one or more broader steps.
        rows = query(
            chain,
            "PREFIX ex: <http://example.org/> SELECT ?a { ?a skos:broader/skos:broader* ex:World }",
        )
        assert values(rows, "a") == [EX.Athens, EX.Europe, EX.Greece, EX.Italy, EX.Rome]
