"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.errors import SPARQLSyntaxError
from repro.sparql.tokenizer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text) if t.kind != "eof"]


def values(text):
    return [t.value for t in tokenize(text) if t.kind != "eof"]


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = list(tokenize("select WHERE Filter"))
        assert all(t.kind == "keyword" for t in tokens[:3])

    def test_builtin_names_are_names(self):
        tokens = list(tokenize("BOUND REGEX"))
        assert tokens[0].kind == "name"
        assert tokens[1].kind == "name"

    def test_variables(self):
        tokens = list(tokenize("?x $y"))
        assert tokens[0].kind == "var" and tokens[0].value == "?x"
        assert tokens[1].kind == "var" and tokens[1].value == "$y"

    def test_iri_and_pname(self):
        assert kinds("<http://e/a> qb:obs") == ["iri", "pname"]

    def test_numbers(self):
        assert kinds("5 -2.5 1e10") == ["integer", "decimal", "double"]

    def test_strings_single_and_double_quotes(self):
        assert kinds('"abc" \'def\'') == ["string", "string"]

    def test_multi_char_operators(self):
        assert values("!= <= >= && || ^^") == ["!=", "<=", ">=", "&&", "||", "^^"]

    def test_path_operators(self):
        assert values("a/b|c* d+") == ["a", "/", "b", "|", "c", "*", "d", "+"]

    def test_comments_skipped(self):
        assert kinds("?x # a comment\n?y") == ["var", "var"]

    def test_bad_character(self):
        with pytest.raises(SPARQLSyntaxError):
            list(tokenize("SELECT @@@"))

    def test_positions_recorded(self):
        tokens = list(tokenize("SELECT ?x"))
        assert tokens[0].pos == 0
        assert tokens[1].pos == 7

    def test_langtag(self):
        assert kinds('"hi"@en') == ["string", "langtag"]
