"""Shared fixtures for the segment-store test suite."""

from __future__ import annotations

import pytest

from repro.core import compute_baseline
from repro.core.results import RelationshipSet
from repro.data.example import build_example_space
from repro.rdf.terms import URIRef

from tests.conftest import make_random_space


def assert_identical(a, b):
    """Full-strength equality: sets, OCM degrees and dimension maps."""
    assert a == b
    assert a.degrees == b.degrees
    assert a.partial_map == b.partial_map


@pytest.fixture(scope="package")
def example_result():
    return compute_baseline(build_example_space(), collect_partial_dimensions=True)


@pytest.fixture(scope="package")
def random_space():
    return make_random_space(60, seed=17)


@pytest.fixture(scope="package")
def random_result(random_space):
    return compute_baseline(random_space, collect_partial_dimensions=True)


def unicode_result() -> RelationshipSet:
    """A relationship set over non-ASCII IRIs with boundary degrees.

    Degrees 0.0 and 1.0 are the partial-containment extremes; 0.0 in
    particular shreds any ``if degree:`` truthiness bug, and the IRIs
    exercise the UTF-8 paths of every backend.
    """
    a = URIRef("http://例え.jp/観測/α")
    b = URIRef("http://例え.jp/観測/β")
    c = URIRef("http://παράδειγμα.gr/obs/γάμμα")
    d = URIRef("http://example.org/obs/ascii")
    dim = URIRef("http://例え.jp/次元/地域")
    result = RelationshipSet()
    result.add_full(a, b)
    result.add_partial(a, c, frozenset({dim}), 0.0)
    result.add_partial(b, c, frozenset({dim}), 1.0)
    result.add_partial(c, d, None, 0.5)
    result.add_complementary(d, a)
    return result
