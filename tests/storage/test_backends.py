"""Parametrised round-trip tests across every persistence backend.

``repro.store.save_relationships`` / ``load_relationships`` route on
the target path: plain JSON, gzip-compressed JSON and binary segment
stores must be interchangeable — same sets, same OCM degrees, same
dimension maps — including the awkward inputs: non-ASCII IRIs, empty
sets and boundary partial-containment degrees.
"""

import gzip
import json

import pytest

from repro.core.results import RelationshipSet
from repro.errors import ReproError
from repro.rdf.terms import URIRef
from repro.store import (
    describe_store,
    detect_store_kind,
    load_relationships,
    save_relationships,
)

from tests.storage.conftest import assert_identical, unicode_result

BACKENDS = ["links.json", "links.json.gz", "links.rseg"]


@pytest.fixture(params=BACKENDS)
def target(request, tmp_path):
    return tmp_path / request.param


class TestBackendRoundTrips:
    def test_computed_result(self, target, random_result):
        save_relationships(random_result, target)
        assert_identical(load_relationships(target), random_result)

    def test_partitioned_segments(self, tmp_path, random_space, random_result):
        target = tmp_path / "part.rseg"
        save_relationships(random_result, target, space=random_space)
        assert_identical(load_relationships(target), random_result)

    def test_non_ascii_iris(self, target):
        result = unicode_result()
        save_relationships(result, target)
        assert_identical(load_relationships(target), result)

    def test_empty_set(self, target):
        save_relationships(RelationshipSet(), target)
        loaded = load_relationships(target)
        assert_identical(loaded, RelationshipSet())
        assert loaded.total() == 0

    def test_boundary_degrees(self, target):
        result = RelationshipSet()
        a, b, c = (URIRef(f"http://x/{n}") for n in "abc")
        dim = URIRef("http://x/dim")
        result.add_partial(a, b, frozenset({dim}), 0.0)  # lower bound
        result.add_partial(b, c, frozenset({dim}), 1.0)  # upper bound
        result.add_partial(a, c)  # no degree at all
        save_relationships(result, target)
        loaded = load_relationships(target)
        assert loaded.degrees[(a, b)] == 0.0
        assert loaded.degrees[(b, c)] == 1.0
        assert (a, c) not in loaded.degrees
        assert_identical(loaded, result)

    def test_detected_kind(self, target, random_result):
        save_relationships(random_result, target)
        expected = {
            "links.json": "json",
            "links.json.gz": "json.gz",
            "links.rseg": "segments",
        }[target.name]
        assert detect_store_kind(target) == expected

    def test_describe_store(self, target, random_result):
        save_relationships(random_result, target)
        info = describe_store(target)
        assert info["bytes"] > 0
        assert info["kind"] == detect_store_kind(target)


class TestGzipBackend:
    def test_bytes_are_gzip(self, tmp_path, random_result):
        target = tmp_path / "links.json.gz"
        save_relationships(random_result, target)
        raw = target.read_bytes()
        assert raw[:2] == b"\x1f\x8b"
        payload = json.loads(gzip.decompress(raw))
        assert payload["version"] == 1

    def test_deterministic_bytes(self, tmp_path, random_result):
        """mtime=0 in the gzip header keeps rewrites byte-identical."""
        a, b = tmp_path / "a.json.gz", tmp_path / "b.json.gz"
        save_relationships(random_result, a)
        save_relationships(random_result, b)
        assert a.read_bytes() == b.read_bytes()

    def test_smaller_than_plain_json(self, tmp_path, random_result):
        plain, packed = tmp_path / "links.json", tmp_path / "links.json.gz"
        save_relationships(random_result, plain)
        save_relationships(random_result, packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_corrupt_gzip_raises_repro_error(self, tmp_path):
        target = tmp_path / "broken.json.gz"
        target.write_bytes(b"\x1f\x8bnot really gzip")
        with pytest.raises(ReproError):
            load_relationships(target)

    def test_gzip_corrupted_after_header_raises_repro_error(
        self, tmp_path, random_result
    ):
        """Damage past the 10-byte header raises zlib.error, not OSError."""
        target = tmp_path / "bitflip.json.gz"
        save_relationships(random_result, target)
        blob = bytearray(target.read_bytes())
        blob[10] = 0x06  # first deflate byte: BTYPE=11 is reserved
        target.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="cannot read gzip store"):
            load_relationships(target)

    def test_missing_file_still_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_relationships(tmp_path / "absent.json.gz")
