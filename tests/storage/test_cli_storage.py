"""End-to-end CLI tests for the storage subsystem: compute -o,
migrate, compact, inspect and serve-from-segments."""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.store import load_relationships
from repro.storage import SegmentStore

from tests.storage.conftest import assert_identical


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("corpus") / "corpus.ttl"
    code = main(["generate", "--kind", "realworld", "--scale", "0.001",
                 "--seed", "1", "--output", str(path)])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def json_store(corpus_file, tmp_path_factory):
    path = tmp_path_factory.mktemp("stores") / "links.json"
    code = main(["compute", "--input", str(corpus_file),
                 "--method", "cube_masking", "-o", str(path)])
    assert code == 0
    return path


class TestComputeStoreOutput:
    def test_compute_to_segments(self, corpus_file, tmp_path):
        target = tmp_path / "links.rseg"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "-o", str(target)])
        assert code == 0
        store = SegmentStore.open(target)
        assert store.describe()["partitioned"]  # compute knows the space

    def test_compute_to_gzip(self, corpus_file, tmp_path):
        target = tmp_path / "links.json.gz"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "-o", str(target)])
        assert code == 0
        assert target.read_bytes()[:2] == b"\x1f\x8b"

    def test_json_output_alias_still_works(self, corpus_file, tmp_path):
        target = tmp_path / "links.json"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "--json-output", str(target)])
        assert code == 0
        assert load_relationships(target).total() > 0


class TestMigrate:
    def test_json_to_segments_to_json_round_trip(self, json_store, corpus_file, tmp_path):
        segments = tmp_path / "links.rseg"
        back = tmp_path / "back.json"
        assert main(["migrate", "--input", str(json_store), "--output",
                     str(segments), "--cube", str(corpus_file)]) == 0
        assert main(["migrate", "--input", str(segments), "--output", str(back)]) == 0
        original = load_relationships(json_store)
        assert_identical(load_relationships(segments), original)
        assert_identical(load_relationships(back), original)

    def test_json_to_gzip(self, json_store, tmp_path):
        packed = tmp_path / "links.json.gz"
        assert main(["migrate", "--input", str(json_store), "--output", str(packed)]) == 0
        assert_identical(load_relationships(packed), load_relationships(json_store))

    def test_migrate_missing_input_fails_cleanly(self, tmp_path, capsys):
        code = main(["migrate", "--input", str(tmp_path / "absent.json"),
                     "--output", str(tmp_path / "out.rseg")])
        assert code != 0
        assert "error" in capsys.readouterr().err.lower()


class TestInspect:
    def test_inspect_segment_store(self, json_store, corpus_file, tmp_path, capsys):
        segments = tmp_path / "links.rseg"
        main(["migrate", "--input", str(json_store), "--output", str(segments),
              "--cube", str(corpus_file)])
        capsys.readouterr()
        assert main(["inspect", "--input", str(segments)]) == 0
        out = capsys.readouterr().out
        assert "format segments" in out
        assert "loaded in" in out
        assert "segment(s)" in out and "WAL record(s)" in out

    def test_inspect_reports_size_and_load_time(self, json_store, capsys):
        assert main(["inspect", "--input", str(json_store)]) == 0
        out = capsys.readouterr().out
        assert "bytes" in out and "loaded in" in out

    def test_inspect_gzip(self, json_store, tmp_path, capsys):
        packed = tmp_path / "links.json.gz"
        main(["migrate", "--input", str(json_store), "--output", str(packed)])
        capsys.readouterr()
        assert main(["inspect", "--input", str(packed)]) == 0
        assert "format json.gz" in capsys.readouterr().out


class TestCompact:
    def test_compact_empty_wal(self, json_store, corpus_file, tmp_path, capsys):
        segments = tmp_path / "links.rseg"
        main(["migrate", "--input", str(json_store), "--output", str(segments),
              "--cube", str(corpus_file)])
        before = load_relationships(segments)
        assert main(["compact", "--store", str(segments),
                     "--input", str(corpus_file)]) == 0
        assert "folded 0" in capsys.readouterr().err
        assert_identical(load_relationships(segments), before)

    def test_compact_non_store_fails_cleanly(self, tmp_path, capsys):
        code = main(["compact", "--store", str(tmp_path / "nope.rseg")])
        assert code != 0
        assert "error" in capsys.readouterr().err.lower()


class TestServeFromSegments:
    def test_serve_wiring_from_segments(self, json_store, corpus_file, tmp_path):
        """The exact object graph _cmd_serve builds for a segment store."""
        from repro.core.space import ObservationSpace
        from repro.qb import load_cubespace
        from repro.rdf import parse_turtle
        from repro.service import QueryEngine, start_server
        from repro.storage import LazyRelationshipIndex

        segments = tmp_path / "links.rseg"
        main(["migrate", "--input", str(json_store), "--output", str(segments),
              "--cube", str(corpus_file)])
        store = SegmentStore.open(segments)
        space = ObservationSpace.from_cubespace(
            load_cubespace(parse_turtle(corpus_file.read_text()))
        )
        view = store.relationship_set()
        engine = QueryEngine(
            view, space,
            index=LazyRelationshipIndex(view, space),
            delta_sink=store.append_delta,
        )
        server = start_server(engine)
        host, port = server.server_address
        try:
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                health = json.load(response)
            assert health["status"] == "ok"
            assert health["persistence"]["write_ahead_log"] is True
            with urllib.request.urlopen(f"http://{host}:{port}/stats") as response:
                stats = json.load(response)
            assert stats["persistence"]["wal_appends"] == 0
        finally:
            server.shutdown()
            server.server_close()
        store.close()
