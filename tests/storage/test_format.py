"""Unit tests for the binary segment layout (repro.storage.format)."""

import struct
import zlib

import pytest

from repro.core.results import RelationshipSet
from repro.errors import StorageError
from repro.rdf.terms import URIRef
from repro.storage import decode_segment, encode_segment
from repro.storage.format import HEADER, SEGMENT_MAGIC, SEGMENT_VERSION, segment_counts

from tests.storage.conftest import assert_identical, unicode_result


class TestRoundTrip:
    def test_example_round_trip(self, example_result):
        blob = encode_segment(example_result)
        assert_identical(decode_segment(blob), example_result)

    def test_random_round_trip(self, random_result):
        assert_identical(decode_segment(encode_segment(random_result)), random_result)

    def test_empty_set(self):
        empty = RelationshipSet()
        assert_identical(decode_segment(encode_segment(empty)), empty)

    def test_unicode_iris_and_boundary_degrees(self):
        result = unicode_result()
        decoded = decode_segment(encode_segment(result))
        assert_identical(decoded, result)
        pair = sorted(result.degrees, key=lambda p: result.degrees[p])[0]
        assert decoded.degrees[pair] == 0.0  # 0.0 survives, not dropped as falsy

    def test_deterministic_bytes(self, example_result):
        assert encode_segment(example_result) == encode_segment(example_result)

    def test_explicit_dimension_table(self, example_result):
        dims = sorted(
            {d for dims in example_result.partial_map.values() for d in dims}, key=str
        )
        extra = dims + [URIRef("http://test.example/unused-dim")]
        assert_identical(
            decode_segment(encode_segment(example_result, dimensions=extra)),
            example_result,
        )

    def test_missing_dimension_rejected_at_encode(self):
        result = RelationshipSet()
        result.add_partial(
            URIRef("http://x/a"),
            URIRef("http://x/b"),
            frozenset({URIRef("http://x/dim")}),
            0.5,
        )
        with pytest.raises(StorageError, match="dimension"):
            encode_segment(result, dimensions=[])

    def test_degree_absent_versus_zero(self):
        result = RelationshipSet()
        result.add_partial(URIRef("http://x/a"), URIRef("http://x/b"))  # no degree
        result.add_partial(URIRef("http://x/c"), URIRef("http://x/d"), None, 0.0)
        decoded = decode_segment(encode_segment(result))
        assert (URIRef("http://x/a"), URIRef("http://x/b")) not in decoded.degrees
        assert decoded.degrees[(URIRef("http://x/c"), URIRef("http://x/d"))] == 0.0


class TestCorruptionDetection:
    def test_bad_magic(self, example_result):
        blob = bytearray(encode_segment(example_result))
        blob[:4] = b"NOPE"
        with pytest.raises(StorageError, match="magic"):
            decode_segment(bytes(blob))

    def test_unsupported_version(self, example_result):
        blob = bytearray(encode_segment(example_result))
        struct.pack_into("<H", blob, 4, SEGMENT_VERSION + 1)
        with pytest.raises(StorageError, match="version"):
            decode_segment(bytes(blob))

    def test_flipped_payload_bit_fails_crc(self, example_result):
        blob = bytearray(encode_segment(example_result))
        blob[HEADER.size + 12] ^= 0x40
        with pytest.raises(StorageError, match="CRC"):
            decode_segment(bytes(blob))

    def test_torn_write_detected(self, example_result):
        blob = encode_segment(example_result)
        with pytest.raises(StorageError, match="torn"):
            decode_segment(blob[: len(blob) - 7])

    def test_truncated_below_header(self):
        with pytest.raises(StorageError, match="truncated"):
            decode_segment(b"RSEG")

    def test_header_constants(self, example_result):
        blob = encode_segment(example_result)
        magic, version, _flags, crc, length = HEADER.unpack_from(blob, 0)
        assert magic == SEGMENT_MAGIC
        assert version == SEGMENT_VERSION
        payload = blob[HEADER.size :]
        assert len(payload) == length
        assert zlib.crc32(payload) == crc


class TestCounts:
    def test_segment_counts(self, example_result):
        counts = segment_counts(example_result)
        assert counts["full"] == len(example_result.full)
        assert counts["partial"] == len(example_result.partial)
        assert counts["complementary"] == len(example_result.complementary)
        assert counts["uris"] > 0
