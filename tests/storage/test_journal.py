"""Segment-store checkpoints for the materialisation runner, and the
query engine's write-ahead persistence under simulated crashes.

The acceptance bar: a run (or a serving process) killed mid-flight must
leave behind a store whose replayed state is *identical* — sets, OCM
degrees, dimension maps — to the state an uninterrupted run reaches.
"""

import pytest

from repro.core import FaultPlan, compute_cubemask, compute_relationships, truncate_file
from repro.core.results import RelationshipSet
from repro.core.runner import Checkpoint, open_checkpoint
from repro.errors import CheckpointError
from repro.rdf.terms import URIRef
from repro.service.engine import QueryEngine
from repro.service.index import RelationshipIndex
from repro.storage import LazyRelationshipIndex, SegmentJournal, SegmentStore

from tests.conftest import make_random_space
from tests.storage.conftest import assert_identical


@pytest.fixture(scope="module")
def space():
    return make_random_space(120, seed=42)


def copy_of(result):
    return RelationshipSet(
        result.full, result.partial, result.complementary,
        result.partial_map, result.degrees,
    )


class TestCheckpointRouting:
    def test_rseg_path_routes_to_segment_journal(self, tmp_path):
        assert isinstance(open_checkpoint(tmp_path / "run.rseg"), SegmentJournal)

    def test_jsonl_path_routes_to_checkpoint(self, tmp_path):
        assert isinstance(open_checkpoint(tmp_path / "run.jsonl"), Checkpoint)

    def test_existing_store_routes_even_without_suffix(self, tmp_path):
        target = tmp_path / "oddname"
        SegmentStore.create(target)
        assert isinstance(open_checkpoint(target), SegmentJournal)


class TestRunnerSegmentCheckpoint:
    def test_clean_run_matches_direct(self, space, tmp_path):
        ckpt = tmp_path / "run.rseg"
        result = compute_relationships(
            space, "cube_masking", checkpoint=str(ckpt), unit_size=16
        )
        assert_identical(result, compute_cubemask(space))
        # the checkpoint IS a store: header + one WAL record per unit
        store = SegmentStore.open(ckpt)
        records, _ = store.wal.records()
        assert records[0]["type"] == "header"
        assert len(records) > 2  # genuinely unit-wise

    def test_interrupted_store_is_servable_mid_run(self, space, tmp_path):
        ckpt = tmp_path / "interrupted.rseg"
        with pytest.raises(KeyboardInterrupt):
            compute_relationships(
                space,
                "cube_masking",
                checkpoint=str(ckpt),
                unit_size=16,
                fault_plan=FaultPlan(interrupt_after=2),
            )
        partial = SegmentStore.open(ckpt).load()  # WAL replay, no compact needed
        truth = compute_cubemask(space)
        assert 0 < partial.total() < truth.total()
        assert partial.full <= truth.full
        assert partial.partial <= truth.partial

    def test_kill_then_resume_is_identical(self, space, tmp_path):
        ckpt = tmp_path / "resumed.rseg"
        with pytest.raises(KeyboardInterrupt):
            compute_relationships(
                space,
                "cube_masking",
                checkpoint=str(ckpt),
                unit_size=16,
                fault_plan=FaultPlan(interrupt_after=2),
            )
        resumed = compute_relationships(
            space, "cube_masking", checkpoint=str(ckpt), unit_size=16, resume=True
        )
        assert_identical(resumed, compute_cubemask(space))

    def test_torn_wal_tail_resumes_identically(self, space, tmp_path):
        """A crash mid-append (torn final WAL line) is repaired on resume."""
        ckpt = tmp_path / "torn.rseg"
        with pytest.raises(KeyboardInterrupt):
            compute_relationships(
                space,
                "cube_masking",
                checkpoint=str(ckpt),
                unit_size=16,
                fault_plan=FaultPlan(interrupt_after=3),
            )
        store = SegmentStore.open(ckpt)
        truncate_file(store.wal.path, drop_bytes=9)
        resumed = compute_relationships(
            space, "cube_masking", checkpoint=str(ckpt), unit_size=16, resume=True
        )
        assert_identical(resumed, compute_cubemask(space))

    def test_create_refuses_to_overwrite(self, tmp_path):
        journal = SegmentJournal(tmp_path / "run.rseg")
        journal.create({"version": 1})
        with pytest.raises(CheckpointError, match="already exists"):
            journal.create({"version": 1})

    def test_compacted_checkpoint_cannot_resume(self, space, tmp_path):
        ckpt = tmp_path / "folded.rseg"
        compute_relationships(space, "cube_masking", checkpoint=str(ckpt), unit_size=16)
        store = SegmentStore.open(ckpt)
        store.compact(space)
        with pytest.raises(CheckpointError, match="no header record"):
            SegmentJournal(ckpt).load()

    def test_compacted_checkpoint_serves_identically(self, space, tmp_path):
        ckpt = tmp_path / "served.rseg"
        compute_relationships(space, "cube_masking", checkpoint=str(ckpt), unit_size=16)
        store = SegmentStore.open(ckpt)
        store.compact(space)
        assert_identical(SegmentStore.open(ckpt).load(), compute_cubemask(space))


class TestEngineWalPersistence:
    """The serve-path acceptance test: engine writes survive a crash."""

    def new_observation(self, space, tag):
        return (
            URIRef(f"http://test.example/obs/crash-{tag}"),
            space.observations[0].dataset,
            {dim: space.hierarchies[dim].root for dim in space.dimensions},
            [URIRef("http://test.example/m0")],
        )

    def build_engine(self, path, space, result):
        from repro.storage import save_segments

        store = save_segments(copy_of(result), path, space=space)
        view = store.relationship_set()
        engine = QueryEngine(
            view,
            space,
            index=LazyRelationshipIndex(view, space),
            delta_sink=store.append_delta,
        )
        return store, engine

    def test_replayed_state_matches_uninterrupted_run(self, tmp_path):
        space = make_random_space(60, seed=23)
        result = compute_cubemask(space, collect_partial_dimensions=True)
        store, engine = self.build_engine(tmp_path / "serve.rseg", space, result)

        engine.insert([self.new_observation(space, "a")])
        engine.insert([self.new_observation(space, "b")])
        engine.remove([space.observations[0].uri])
        assert engine.stats()["persistence"]["wal_appends"] == 3
        live = copy_of(engine.result)
        store.close()  # the crash: nothing flushed beyond the WAL appends

        replayed = SegmentStore.open(tmp_path / "serve.rseg").load()
        assert_identical(replayed, live)

    def test_replayed_index_answers_like_live_index(self, tmp_path):
        space = make_random_space(60, seed=29)
        result = compute_cubemask(space, collect_partial_dimensions=True)
        store, engine = self.build_engine(tmp_path / "serve.rseg", space, result)
        engine.insert([self.new_observation(space, "c")])
        store.close()

        replayed = SegmentStore.open(tmp_path / "serve.rseg").load()
        rebuilt = RelationshipIndex(replayed)
        uri = URIRef("http://test.example/obs/crash-c")
        assert rebuilt.fully_within(uri) == engine.index.fully_within(uri)
        assert rebuilt.complements_of(uri) == engine.index.complements_of(uri)

    def test_torn_final_append_rolls_back_to_last_good_write(self, tmp_path):
        space = make_random_space(60, seed=31)
        result = compute_cubemask(space, collect_partial_dimensions=True)
        store, engine = self.build_engine(tmp_path / "serve.rseg", space, result)

        engine.insert([self.new_observation(space, "keep")])
        after_first = copy_of(engine.result)
        engine.insert([self.new_observation(space, "torn")])
        store.close()
        truncate_file(store.wal.path, drop_bytes=5)  # crash mid-second-append

        replayed = SegmentStore.open(tmp_path / "serve.rseg").load()
        assert_identical(replayed, after_first)

    def test_compact_preserves_served_writes(self, tmp_path):
        space = make_random_space(60, seed=37)
        result = compute_cubemask(space, collect_partial_dimensions=True)
        store, engine = self.build_engine(tmp_path / "serve.rseg", space, result)
        engine.insert([self.new_observation(space, "fold")])
        live = copy_of(engine.result)
        store.compact(space)
        assert_identical(SegmentStore.open(tmp_path / "serve.rseg").load(), live)
