"""Tests for SegmentStore: manifest commit, pruning, WAL, laziness."""

import importlib.util
import json

import pytest

from repro.core.api import update_relationships
from repro.core.results import RelationshipSet
from repro.errors import StorageError
from repro.rdf.terms import URIRef
from repro.service.index import RelationshipIndex
from repro.storage import (
    LazyRelationshipIndex,
    SegmentRelationshipSet,
    SegmentStore,
    is_segment_store,
    load_segments,
    partition_relationships,
    save_segments,
)
from repro.storage.store import MANIFEST_NAME, _dominates

from tests.storage.conftest import assert_identical


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "links.rseg"


def make_wal_delta(space, result):
    """One genuine delta (and the expected post-state) from the API."""
    copy = RelationshipSet(
        result.full, result.partial, result.complementary,
        result.partial_map, result.degrees,
    )
    new = (
        URIRef("http://test.example/obs/stored-new"),
        space.observations[0].dataset,
        {dim: space.hierarchies[dim].root for dim in space.dimensions},
        [URIRef("http://test.example/m0")],
    )
    _, delta = update_relationships(space, copy, [new], return_delta=True)
    return copy, delta


class TestRoundTrip:
    def test_unpartitioned_round_trip(self, store_path, random_result):
        save_segments(random_result, store_path)
        assert is_segment_store(store_path)
        assert_identical(load_segments(store_path), random_result)

    def test_partitioned_round_trip(self, store_path, random_space, random_result):
        store = save_segments(random_result, store_path, space=random_space)
        assert len(store.manifest["segments"]) > 1  # genuinely partitioned
        assert_identical(store.load(), random_result)

    def test_rewrite_bumps_generation_and_cleans_up(
        self, store_path, random_space, random_result
    ):
        store = save_segments(random_result, store_path, space=random_space)
        first = {entry["name"] for entry in store.manifest["segments"]}
        store = save_segments(random_result, store_path, space=random_space)
        assert store.manifest["generation"] == 1
        current = {entry["name"] for entry in store.manifest["segments"]}
        on_disk = {p.name for p in store_path.iterdir()}
        assert not (first & on_disk)  # stale generation unlinked
        assert current <= on_disk

    def test_empty_store(self, store_path):
        store = SegmentStore.create(store_path)
        assert_identical(store.load(), RelationshipSet())


class TestManifestValidation:
    def test_open_non_store(self, tmp_path):
        with pytest.raises(StorageError, match="not a segment store"):
            SegmentStore.open(tmp_path / "nowhere")

    def test_open_foreign_manifest(self, tmp_path):
        target = tmp_path / "fake.rseg"
        target.mkdir()
        (target / MANIFEST_NAME).write_text('{"format": "something-else"}')
        with pytest.raises(StorageError, match="not a segment-store manifest"):
            SegmentStore.open(target)

    def test_open_future_version(self, tmp_path):
        target = tmp_path / "future.rseg"
        target.mkdir()
        (target / MANIFEST_NAME).write_text(
            '{"format": "repro-segments", "version": 99}'
        )
        with pytest.raises(StorageError, match="version"):
            SegmentStore.open(target)

    def test_manifest_count_mismatch_detected(
        self, store_path, random_space, random_result
    ):
        store = save_segments(random_result, store_path, space=random_space)
        manifest = json.loads((store_path / MANIFEST_NAME).read_text())
        manifest["segments"][0]["full"] += 1
        (store_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="manifest promises"):
            SegmentStore.open(store_path).load()

    def test_missing_segment_file(self, store_path, random_space, random_result):
        store = save_segments(random_result, store_path, space=random_space)
        (store_path / store.manifest["segments"][0]["name"]).unlink()
        with pytest.raises(StorageError, match="missing segment file"):
            SegmentStore.open(store_path).load()

    def test_corrupt_segment_payload(self, store_path, random_result):
        store = save_segments(random_result, store_path)
        name = store.manifest["segments"][0]["name"]
        blob = bytearray((store_path / name).read_bytes())
        blob[-1] ^= 0xFF
        (store_path / name).write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="CRC"):
            SegmentStore.open(store_path).load()


class TestPartitioning:
    def test_partitions_cover_everything(self, random_space, random_result):
        parts = partition_relationships(random_result, random_space)
        rebuilt = RelationshipSet()
        for part in parts.values():
            rebuilt.merge(part)
        assert_identical(rebuilt, random_result)

    def test_no_space_single_default_partition(self, random_result):
        parts = partition_relationships(random_result)
        assert list(parts) == [(None, None)]

    def test_dominance(self):
        assert _dominates((0, 0), (1, 2))
        assert _dominates((1, 2), (1, 2))
        assert not _dominates((2, 0), (1, 2))
        assert not _dominates((0, 0), (0, 0, 0))  # mismatched arity


class TestSegmentPruning:
    """Manifest-level lattice pruning (the cubeMasking analogue)."""

    @pytest.fixture
    def store(self, store_path, random_space, random_result):
        return save_segments(random_result, store_path, space=random_space)

    def test_containers_mode_prunes(self, store, random_space):
        deepest = max(
            (tuple(e["signature"]) for e in store.manifest["segments"]),
        )
        kept = store.segments_for(signature=deepest, mode="containers")
        assert 0 < len(kept) <= len(store.manifest["segments"])
        for entry in kept:
            assert _dominates(tuple(entry["signature"]), deepest)

    def test_contained_mode_is_the_mirror(self, store):
        root_like = min(tuple(e["signature"]) for e in store.manifest["segments"])
        kept = store.segments_for(signature=root_like, mode="contained")
        for entry in kept:
            assert _dominates(root_like, tuple(entry["signature"]))

    def test_complements_mode_exact(self, store):
        sig = tuple(store.manifest["segments"][0]["signature"])
        kept = store.segments_for(signature=sig, mode="complements")
        assert all(tuple(e["signature"]) == sig for e in kept)

    def test_dataset_filter(self, store):
        dataset = store.manifest["segments"][0]["dataset"]
        kept = store.segments_for(dataset=dataset)
        assert kept and all(e["dataset"] == dataset for e in kept)

    def test_default_partition_never_pruned(self, store_path, random_result):
        store = save_segments(random_result, store_path)  # no space: default key
        kept = store.segments_for(signature=(9, 9, 9), mode="complements")
        assert len(kept) == len(store.manifest["segments"])

    def test_unknown_mode_rejected(self, store):
        with pytest.raises(ValueError, match="unknown pruning mode"):
            store.segments_for(mode="sideways")

    def test_load_subset_is_sound(self, store, random_space, random_result):
        """Pruned loading never loses a pair involving the queried cube."""
        record = random_space.observations[0]
        sig = random_space.level_signature(record.index)
        subset = store.load_subset(signature=sig, mode="containers")
        for pair in random_result.full:
            if pair[1] == record.uri:
                assert pair in subset.full


class TestWalIntegration:
    def _delta(self, space, result):
        return make_wal_delta(space, result)

    def test_append_delta_then_load(self, store_path, random_space, random_result):
        store = save_segments(random_result, store_path, space=random_space)
        expected, delta = self._delta(random_space, random_result)
        store.append_delta(delta)
        store.close()
        assert_identical(SegmentStore.open(store_path).load(), expected)

    def test_load_without_wal_sees_segments_only(
        self, store_path, random_space, random_result
    ):
        store = save_segments(random_result, store_path, space=random_space)
        _, delta = self._delta(random_space, random_result)
        store.append_delta(delta)
        assert_identical(store.load(apply_wal=False), random_result)

    def test_compact_folds_and_empties_wal(
        self, store_path, random_space, random_result
    ):
        store = save_segments(random_result, store_path, space=random_space)
        expected, delta = self._delta(random_space, random_result)
        store.append_delta(delta)
        report = store.compact(random_space)
        assert report["folded"] == 1
        assert store.wal.record_count() == 0
        assert_identical(SegmentStore.open(store_path).load(), expected)

    def test_describe_is_manifest_only(self, store_path, random_result):
        store = save_segments(random_result, store_path)
        info = store.describe()
        assert info["format"] == "repro-segments"
        assert info["segments"] == len(store.manifest["segments"])
        assert info["wal_records"] == 0
        assert info["totals"]["partial"] == len(random_result.partial)


class TestWriterLock:
    """Cross-process exclusion between a serving writer and compact."""

    pytestmark = pytest.mark.skipif(
        importlib.util.find_spec("fcntl") is None, reason="flock requires POSIX"
    )

    def test_compact_refused_while_another_writer_holds_the_store(
        self, store_path, random_space, random_result
    ):
        server = save_segments(random_result, store_path, space=random_space)
        _, delta = make_wal_delta(random_space, random_result)
        server.append_delta(delta)  # a "serving" writer: holds the lock

        other = SegmentStore.open(store_path)
        with pytest.raises(StorageError, match="locked by another writer"):
            other.compact(random_space)
        # the refused compact must not have rotated the server's WAL
        assert server.wal.record_count() == 1

    def test_append_refused_while_another_writer_holds_the_store(
        self, store_path, random_space, random_result
    ):
        server = save_segments(random_result, store_path, space=random_space)
        server.acquire_writer_lock()
        _, delta = make_wal_delta(random_space, random_result)
        with pytest.raises(StorageError, match="locked by another writer"):
            SegmentStore.open(store_path).append_delta(delta)

    def test_close_releases_the_lock(self, store_path, random_space, random_result):
        first = save_segments(random_result, store_path, space=random_space)
        first.acquire_writer_lock()
        first.close()
        second = SegmentStore.open(store_path)
        assert second.compact(random_space)["folded"] == 0

    def test_own_writer_may_compact(self, store_path, random_space, random_result):
        store = save_segments(random_result, store_path, space=random_space)
        _, delta = make_wal_delta(random_space, random_result)
        store.append_delta(delta)  # takes and keeps the writer lock
        assert store.compact(random_space)["folded"] == 1
        assert store._lock_handle is not None  # still the long-lived writer


class TestLazyViews:
    def test_lazy_counts_before_materialisation(self, store_path, random_result):
        store = save_segments(random_result, store_path)
        view = store.relationship_set()
        assert isinstance(view, SegmentRelationshipSet)
        assert not view.materialised
        assert view.total() == random_result.total()  # manifest-only
        assert not view.materialised
        repr(view)
        assert not view.materialised

    def test_lazy_materialises_on_access(self, store_path, random_result):
        store = save_segments(random_result, store_path)
        view = store.relationship_set()
        assert view.full == random_result.full  # first slot access decodes
        assert view.materialised
        assert_identical(view, random_result)

    @pytest.mark.parametrize("attr", ["partial", "partial_map", "degrees"])
    def test_lazy_property_views_materialise_on_access(
        self, store_path, random_result, attr
    ):
        """The partial views are *properties* on RelationshipSet (they
        drain the columnar queue), so their first read must trigger the
        segment decode explicitly — regression for the shard-serving
        503s when they fell through to the unset-slot machinery."""
        store = save_segments(random_result, store_path)
        view = store.relationship_set()
        assert not view.materialised
        assert getattr(view, attr) == getattr(random_result, attr)
        assert view.materialised
        assert_identical(view, random_result)

    def test_lazy_index_defers_build(self, store_path, random_space, random_result):
        store = save_segments(random_result, store_path, space=random_space)
        index = LazyRelationshipIndex(store.relationship_set(), random_space)
        assert not index.built
        uri = random_space.observations[0].uri
        eager = RelationshipIndex(random_result, random_space)
        assert index.fully_within(uri) == eager.fully_within(uri)
        assert index.built

    @staticmethod
    def _flaky_load(store, failures=1):
        """Make the store's load() raise ``failures`` times, counting calls."""
        real, state = store.load, {"calls": 0, "failures": failures}

        def load(*args, **kwargs):
            state["calls"] += 1
            if state["failures"] > 0:
                state["failures"] -= 1
                raise StorageError("injected decode failure")
            return real(*args, **kwargs)

        store.load = load
        return state

    def test_failed_materialise_leaves_view_retryable(self, store_path, random_result):
        store = save_segments(random_result, store_path)
        view = store.relationship_set()
        self._flaky_load(store)
        with pytest.raises(StorageError):
            view.full
        # the failed build must not leave half-set (or empty) slots behind
        assert not view.materialised
        assert view.full == random_result.full
        assert view.materialised

    def test_failed_index_build_is_not_half_built(
        self, store_path, random_space, random_result
    ):
        store = save_segments(random_result, store_path, space=random_space)
        view = store.relationship_set()
        index = LazyRelationshipIndex(view, random_space)
        self._flaky_load(store)
        uri = random_space.observations[0].uri
        with pytest.raises(StorageError):
            index.fully_within(uri)
        assert not index.built  # retryable, not silently empty
        eager = RelationshipIndex(random_result, random_space)
        assert index.fully_within(uri) == eager.fully_within(uri)
        assert index.built

    def test_concurrent_first_lookups_build_once(
        self, store_path, random_space, random_result
    ):
        import threading

        store = save_segments(random_result, store_path, space=random_space)
        view = store.relationship_set()
        index = LazyRelationshipIndex(view, random_space)
        state = self._flaky_load(store, failures=0)
        uri = random_space.observations[0].uri
        eager = RelationshipIndex(random_result, random_space)
        expected = eager.fully_within(uri)

        barrier = threading.Barrier(8)
        outcomes = []

        def probe():
            barrier.wait()
            try:
                outcomes.append(index.fully_within(uri))
            except Exception as exc:  # noqa: BLE001 - the race under test
                outcomes.append(exc)

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert outcomes and all(answer == expected for answer in outcomes)
        assert state["calls"] == 1  # one materialisation, not one per thread
