"""Unit tests for the write-ahead delta log (repro.storage.wal)."""

import pytest

from repro.core import truncate_file
from repro.core.api import update_relationships
from repro.core.results import RelationshipSet
from repro.errors import StorageError
from repro.rdf.terms import URIRef
from repro.storage import delta_from_payload, delta_to_payload
from repro.storage.wal import (
    WriteAheadLog,
    replay_into,
    set_from_payload,
    set_to_payload,
)

from tests.storage.conftest import assert_identical, unicode_result


def u(name: str) -> URIRef:
    return URIRef(f"http://test.example/obs/{name}")


def make_delta(space, result):
    """One genuine delta from the incremental API."""
    copy = RelationshipSet(
        result.full, result.partial, result.complementary,
        result.partial_map, result.degrees,
    )
    record = space.observations[0]
    new = (
        URIRef("http://test.example/obs/walnew"),
        record.dataset,
        {dim: space.hierarchies[dim].root for dim in space.dimensions},
        [URIRef("http://test.example/m0")],
    )
    _, delta = update_relationships(space, copy, [new], return_delta=True)
    return delta


class TestPayloads:
    def test_delta_round_trip(self, random_space, random_result):
        delta = make_delta(random_space, random_result)
        back = delta_from_payload(delta_to_payload(delta))
        assert back.added_full == delta.added_full
        assert back.added_partial == delta.added_partial
        assert back.added_complementary == delta.added_complementary
        assert back.removed_full == delta.removed_full
        assert back.degrees == delta.degrees
        assert back.partial_map == delta.partial_map

    def test_set_round_trip_unicode(self):
        result = unicode_result()
        assert_identical(set_from_payload(set_to_payload(result)), result)

    def test_malformed_payloads_raise(self):
        with pytest.raises(StorageError):
            delta_from_payload("not a dict")
        with pytest.raises(StorageError):
            set_from_payload([1, 2])
        with pytest.raises(StorageError):
            delta_from_payload({"added": {"full": [["only-one"]]}})


class TestAppendAndReplay:
    def test_append_then_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.jsonl")
        wal.append({"type": "header", "run": 1})
        wal.append({"type": "delta", "added": {}, "removed": {}})
        wal.close()
        records, repaired = wal.records()
        assert not repaired
        assert [r["type"] for r in records] == ["header", "delta"]

    def test_missing_file_is_empty(self, tmp_path):
        records, repaired = WriteAheadLog(tmp_path / "absent.jsonl").records()
        assert records == [] and repaired is False

    def test_replay_reproduces_incremental_state(self, random_space, random_result):
        delta = make_delta(random_space, random_result)
        direct = RelationshipSet(
            random_result.full, random_result.partial, random_result.complementary,
            random_result.partial_map, random_result.degrees,
        )
        direct.apply_delta(delta)
        replayed = RelationshipSet(
            random_result.full, random_result.partial, random_result.complementary,
            random_result.partial_map, random_result.degrees,
        )
        count = replay_into(
            replayed, [{"type": "delta", **delta_to_payload(delta)}]
        )
        assert count == 1
        assert_identical(replayed, direct)

    def test_replay_unit_merges(self):
        base = RelationshipSet(full={(u("a"), u("b"))})
        unit = unicode_result()
        replay_into(base, [{"type": "unit", "id": 3, "delta": set_to_payload(unit)}])
        merged = RelationshipSet(full={(u("a"), u("b"))})
        merged.merge(unit)
        assert_identical(base, merged)

    def test_replay_skips_header_rejects_unknown(self):
        result = RelationshipSet()
        assert replay_into(result, [{"type": "header"}]) == 0
        with pytest.raises(StorageError, match="unknown WAL record"):
            replay_into(result, [{"type": "mystery"}])


class TestCrashRecovery:
    def _write_three(self, path):
        wal = WriteAheadLog(path)
        for index in range(3):
            wal.append({"type": "delta", "added": {}, "removed": {}, "n": index})
        wal.close()
        return wal

    def test_torn_tail_dropped_and_repaired(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = self._write_three(path)
        truncate_file(path, drop_bytes=10)  # tear the final append mid-line
        records, repaired = wal.records()
        assert repaired
        assert [r["n"] for r in records] == [0, 1]
        # the repair rewrote the file: a reread is clean
        records, repaired = wal.records()
        assert not repaired and len(records) == 2

    def test_torn_tail_without_repair_leaves_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = self._write_three(path)
        size = path.stat().st_size
        truncate_file(path, drop_bytes=10)
        records, repaired = wal.records(repair=False)
        assert repaired and len(records) == 2
        assert path.stat().st_size == size - 10

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        wal = self._write_three(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-3] + "xyz"  # damage record 2, keep record 3 intact
        path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(StorageError, match="record 2"):
            wal.records()

    def test_acknowledged_appends_survive(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write_three(path)
        assert WriteAheadLog(path).record_count() == 3

    def test_append_after_torn_tail_repairs_first(self, tmp_path):
        """A fresh process appending to a torn log must not concatenate."""
        path = tmp_path / "log.jsonl"
        self._write_three(path)
        truncate_file(path, drop_bytes=10)  # tear the final append mid-line
        fresh = WriteAheadLog(path)  # no records() ran in this "process"
        fresh.append({"type": "delta", "added": {}, "removed": {}, "n": 99})
        fresh.close()
        records, repaired = WriteAheadLog(path).records()
        assert not repaired
        assert [r["n"] for r in records] == [0, 1, 99]

    def test_append_after_missing_final_newline_terminates_it(self, tmp_path):
        """A valid record torn exactly at its newline keeps both records."""
        path = tmp_path / "log.jsonl"
        self._write_three(path)
        truncate_file(path, drop_bytes=1)  # drop only the trailing newline
        fresh = WriteAheadLog(path)
        fresh.append({"type": "delta", "added": {}, "removed": {}, "n": 99})
        fresh.close()
        records, repaired = WriteAheadLog(path).records()
        assert not repaired
        assert [r["n"] for r in records] == [0, 1, 2, 99]
