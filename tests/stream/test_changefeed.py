"""Unit tests for the WAL-backed changefeed (repro.stream.changefeed)."""

import threading
import time

import pytest

from repro.core import truncate_file
from repro.core.results import RelationshipDelta
from repro.errors import StorageError
from repro.rdf.terms import URIRef
from repro.storage.wal import WriteAheadLog
from repro.stream import (
    Changefeed,
    ChangefeedReader,
    change_record,
    delta_from_change,
)


def make_delta(i: int) -> RelationshipDelta:
    return RelationshipDelta(
        added_full={(URIRef(f"http://t/a{i}"), URIRef(f"http://t/b{i}"))}
    )


def publish_n(feed: Changefeed, n: int, start: int = 0) -> list[int]:
    return [feed.publish(make_delta(start + i)) for i in range(n)]


class TestPublishAndRead:
    def test_offsets_are_monotonic_from_one(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        assert feed.head_offset == 0
        offsets = publish_n(feed, 5)
        assert offsets == [1, 2, 3, 4, 5]
        assert feed.head_offset == 5
        feed.close()

    def test_since_zero_is_full_replay(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 4)
        records = feed.read(since=0)
        assert [r["offset"] for r in records] == [1, 2, 3, 4]
        # every record decodes back to the delta it was published with
        for i, record in enumerate(records):
            assert delta_from_change(record).added_full == make_delta(i).added_full
        feed.close()

    def test_since_returns_strictly_greater_offsets(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 6)
        assert [r["offset"] for r in feed.read(since=4)] == [5, 6]
        assert feed.read(since=6) == []
        assert feed.read(since=100) == []
        feed.close()

    def test_limit_truncates_the_page(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 5)
        assert [r["offset"] for r in feed.read(since=0, limit=2)] == [1, 2]
        feed.close()

    def test_record_shape(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        feed.publish(make_delta(0), op="insert", trace_id="trace-1")
        (record,) = feed.read(since=0)
        assert record["type"] == "change"
        assert record["op"] == "insert"
        assert record["trace"] == "trace-1"
        assert isinstance(record["ts"], float)
        assert "delta" in record
        feed.close()

    def test_head_survives_reopen(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 3)
        feed.close()
        reopened = Changefeed(tmp_path / "feed")
        assert reopened.head_offset == 3
        assert reopened.publish(make_delta(3)) == 4
        assert [r["offset"] for r in reopened.read(since=0)] == [1, 2, 3, 4]
        reopened.close()


class TestRotation:
    def test_rotates_into_offset_named_segments(self, tmp_path):
        feed = Changefeed(tmp_path / "feed", rotate_bytes=1)  # rotate every record
        publish_n(feed, 4)
        names = sorted(p.name for p in (tmp_path / "feed").glob("feed-*.jsonl"))
        assert names == [
            "feed-00000000000000000001.jsonl",
            "feed-00000000000000000002.jsonl",
            "feed-00000000000000000003.jsonl",
            "feed-00000000000000000004.jsonl",
        ]
        assert feed.describe()["segments"] >= 4
        feed.close()

    def test_replay_spans_segments(self, tmp_path):
        feed = Changefeed(tmp_path / "feed", rotate_bytes=1)
        publish_n(feed, 6)
        assert [r["offset"] for r in feed.read(since=0)] == [1, 2, 3, 4, 5, 6]
        # a cursor inside the sequence skips the whole leading segments
        assert [r["offset"] for r in feed.read(since=3)] == [4, 5, 6]
        feed.close()

    def test_reopen_after_rotation_continues_numbering(self, tmp_path):
        feed = Changefeed(tmp_path / "feed", rotate_bytes=1)
        publish_n(feed, 3)
        feed.close()
        reopened = Changefeed(tmp_path / "feed", rotate_bytes=1)
        assert reopened.publish(make_delta(3)) == 4
        assert [r["offset"] for r in reopened.read(since=0)] == [1, 2, 3, 4]
        reopened.close()


class TestConsumerOffsets:
    def test_commit_and_committed(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 3)
        assert feed.committed("etl") == 0
        assert feed.commit("etl", 2) == 2
        assert feed.committed("etl") == 2
        feed.close()

    def test_commits_are_monotonic_per_consumer(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 5)
        feed.commit("etl", 4)
        # re-delivering an old batch must not move the cursor back
        assert feed.commit("etl", 2) == 4
        assert feed.committed("etl") == 4
        feed.close()

    def test_offsets_survive_restart(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 3)
        feed.commit("ui", 3)
        feed.commit("etl", 1)
        feed.close()
        reopened = Changefeed(tmp_path / "feed")
        assert reopened.committed("ui") == 3
        assert reopened.committed("etl") == 1
        assert reopened.describe()["consumers"] == {"etl": 1, "ui": 3}
        reopened.close()

    def test_invalid_commits_rejected(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        with pytest.raises(ValueError):
            feed.commit("etl", -1)
        with pytest.raises(ValueError):
            feed.commit("", 1)
        feed.close()

    def test_concurrent_commits_from_separate_handles_lose_nothing(self, tmp_path):
        """The writer process and out-of-process readers commit into the
        same CONSUMERS.json; interleaved read-modify-write cycles from
        separate handles (no shared threading.Lock) must not drop each
        other's cursors — the file lock serialises them."""
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 3)
        reader = ChangefeedReader(tmp_path / "feed")
        errors = []

        def committer(handle, consumer):
            try:
                for offset in range(1, 30):
                    handle.commit(consumer, offset)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=committer, args=(feed, "writer-side")),
            threading.Thread(target=committer, args=(reader, "reader-side")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert feed.committed("writer-side") == 29
        assert feed.committed("reader-side") == 29
        feed.close()

    def test_consumer_ahead_of_wal_head_reads_empty(self, tmp_path):
        """A committed offset past the head (e.g. the feed directory was
        recreated) must yield empty reads, not an error or a replay."""
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 2)
        feed.commit("etl", 7)  # ahead of head (2)
        assert feed.read(since=feed.committed("etl")) == []
        started = time.monotonic()
        assert feed.wait_for(since=7, timeout=0.2) == []
        assert time.monotonic() - started >= 0.15
        # once the head catches up past the stale cursor, reads resume
        publish_n(feed, 6, start=2)
        assert feed.head_offset == 8
        assert [r["offset"] for r in feed.read(since=7)] == [8]
        feed.close()


class TestTornTail:
    def test_writer_repairs_torn_tail_and_skips_its_offset(self, tmp_path):
        """The torn record may have been flushed (and served to a reader)
        before the crash, so its offset must never name a different delta:
        the writer skips it — offsets are monotonic, not dense."""
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 5)
        feed.close()
        (first, active) = sorted(
            (p.name, p) for p in (tmp_path / "feed").glob("feed-*.jsonl")
        )[-1]
        truncate_file(active, drop_bytes=10)  # tear the final publish mid-line
        reopened = Changefeed(tmp_path / "feed")
        assert reopened.head_offset == 5  # 4 durable + the skipped torn slot
        assert reopened.publish(make_delta(99)) == 6
        records = reopened.read(since=0)
        assert [r["offset"] for r in records] == [1, 2, 3, 4, 6]
        assert delta_from_change(records[-1]).added_full == make_delta(99).added_full
        reopened.close()

    def test_resume_exactly_at_repair_boundary(self, tmp_path):
        """A consumer that committed the last durable offset resumes
        cleanly: nothing before the boundary is redelivered, the torn
        offset never reappears (with any content), and the next publish
        lands once on a fresh offset."""
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 5)
        feed.commit("etl", 4)  # consumer processed 1..4; offset 5 was torn
        feed.close()
        active = sorted((tmp_path / "feed").glob("feed-*.jsonl"))[-1]
        truncate_file(active, drop_bytes=10)
        reopened = Changefeed(tmp_path / "feed")
        cursor = reopened.committed("etl")
        assert cursor == 4
        assert reopened.head_offset == 5  # torn slot skipped, never reused
        assert reopened.read(since=cursor) == []  # boundary: nothing to redo
        reopened.publish(make_delta(42))
        records = reopened.read(since=cursor)
        assert [r["offset"] for r in records] == [6]
        assert delta_from_change(records[0]).added_full == make_delta(42).added_full
        reopened.close()

    def test_consumer_that_saw_the_torn_offset_misses_nothing(self, tmp_path):
        """A reader that delivered (and committed) the flushed-but-torn
        record before the crash must not silently miss a *different*
        delta republished at that offset."""
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 3)
        feed.commit("etl", 3)  # consumer saw the record that is about to tear
        feed.close()
        active = sorted((tmp_path / "feed").glob("feed-*.jsonl"))[-1]
        truncate_file(active, drop_bytes=10)
        reopened = Changefeed(tmp_path / "feed")
        reopened.publish(make_delta(77))
        records = reopened.read(since=reopened.committed("etl"))
        assert [r["offset"] for r in records] == [4]
        assert delta_from_change(records[0]).added_full == make_delta(77).added_full
        reopened.close()

    def test_reader_never_repairs(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 3)
        feed.close()
        active = sorted((tmp_path / "feed").glob("feed-*.jsonl"))[-1]
        truncate_file(active, drop_bytes=10)
        size_before = active.stat().st_size
        reader = ChangefeedReader(tmp_path / "feed")
        # the torn record is simply not yet visible
        assert [r["offset"] for r in reader.read(since=0)] == [1, 2]
        assert reader.head_offset == 2
        assert active.stat().st_size == size_before  # file untouched


class TestLongPoll:
    def test_empty_feed_times_out(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        started = time.monotonic()
        assert feed.wait_for(since=0, timeout=0.3) == []
        elapsed = time.monotonic() - started
        assert 0.25 <= elapsed < 5.0
        feed.close()

    def test_wait_wakes_on_publish(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")

        def later():
            time.sleep(0.1)
            feed.publish(make_delta(0))

        thread = threading.Thread(target=later)
        thread.start()
        started = time.monotonic()
        records = feed.wait_for(since=0, timeout=5.0)
        elapsed = time.monotonic() - started
        thread.join()
        assert [r["offset"] for r in records] == [1]
        assert elapsed < 4.0, "wait_for should wake on publish, not sleep out"
        feed.close()

    def test_reader_polls_until_data_appears(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        reader = ChangefeedReader(tmp_path / "feed")

        def later():
            time.sleep(0.15)
            feed.publish(make_delta(0))

        thread = threading.Thread(target=later)
        thread.start()
        records = reader.wait_for(since=0, timeout=5.0)
        thread.join()
        assert [r["offset"] for r in records] == [1]
        feed.close()


class TestReader:
    def test_reader_sees_live_appends_and_rotations(self, tmp_path):
        feed = Changefeed(tmp_path / "feed", rotate_bytes=1)
        reader = ChangefeedReader(tmp_path / "feed")
        assert reader.head_offset == 0
        publish_n(feed, 2)
        assert [r["offset"] for r in reader.read(since=0)] == [1, 2]
        publish_n(feed, 2, start=2)  # forces more rotated segments
        assert [r["offset"] for r in reader.read(since=2)] == [3, 4]
        assert reader.head_offset == 4
        feed.close()

    def test_reader_commits_share_the_consumers_file(self, tmp_path):
        feed = Changefeed(tmp_path / "feed")
        publish_n(feed, 2)
        reader = ChangefeedReader(tmp_path / "feed")
        reader.commit("ui", 2)
        assert feed.committed("ui") == 2
        feed.close()

    def test_malformed_record_raises_storage_error(self, tmp_path):
        path = tmp_path / "feed"
        path.mkdir()
        wal = WriteAheadLog(path / "feed-00000000000000000001.jsonl")
        wal.append({"type": "bogus"})
        wal.close()
        with pytest.raises(StorageError):
            ChangefeedReader(path).read(since=0)


class TestRecordCodec:
    def test_change_record_round_trip(self):
        delta = RelationshipDelta(
            added_full={(URIRef("http://t/a"), URIRef("http://t/b"))},
            added_complementary={(URIRef("http://t/c"), URIRef("http://t/d"))},
        )
        record = change_record(7, delta, op="insert", trace_id="t-1")
        assert record["offset"] == 7
        back = delta_from_change(record)
        assert back.added_full == delta.added_full
        assert back.added_complementary == delta.added_complementary
