"""Live HTTP round-trips for the changefeed endpoints.

The acceptance property for streaming lives here: an SSE client
replaying ``since=0`` observes the *identical ordered delta sequence*
the engine applied, and durable consumer offsets survive a full
server restart.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import compute_baseline
from repro.rdf.terms import URIRef
from repro.service import QueryEngine, start_server
from repro.stream import Changefeed, delta_from_change

from tests.conftest import make_random_space


def make_stack(tmp_path, seed=92, **server_kwargs):
    space = make_random_space(25, seed=seed)
    result = compute_baseline(space, collect_partial_dimensions=True)
    feed = Changefeed(tmp_path / "feed")
    engine = QueryEngine(result, space, changefeed=feed)
    server = start_server(engine, **server_kwargs)
    host, port = server.server_address
    return f"http://{host}:{port}", engine, space, feed, server


@pytest.fixture()
def served(tmp_path):
    base, engine, space, feed, server = make_stack(tmp_path)
    yield base, engine, space, feed
    server.shutdown()
    server.server_close()
    feed.close()


def get_json(base: str, path: str, timeout: float = 30.0):
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return response.status, json.load(response)


def newcomer(space, i: int):
    template = space.observations[i % len(space.observations)]
    return (
        URIRef(f"http://test.example/live{i}"),
        template.dataset,
        {
            dim: code
            for dim, code in zip(space.dimensions, template.codes)
            if code is not None
        },
        [URIRef("http://test.example/m0")],
    )


def read_sse(base: str, path: str, headers=None, timeout: float = 30.0):
    """Collect a bounded SSE stream (``max_seconds=`` ends it server-side)."""
    request = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.headers["Content-Type"].startswith("text/event-stream")
        text = response.read().decode("utf-8")
    events, comments = [], []
    for block in text.split("\n\n"):
        event_id, data = None, None
        for line in block.strip().split("\n"):
            if line.startswith("id: "):
                event_id = int(line[len("id: "):])
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
            elif line.startswith(":"):
                comments.append(line)
        if data is not None:
            events.append((event_id, data))
    return events, comments


def assert_same_delta(record: dict, delta) -> None:
    decoded = delta_from_change(record)
    assert decoded.added_full == delta.added_full
    assert decoded.added_partial == delta.added_partial
    assert decoded.added_complementary == delta.added_complementary
    assert decoded.removed_full == delta.removed_full


class TestChangesEndpoint:
    def test_404_without_a_feed(self):
        space = make_random_space(10, seed=93)
        result = compute_baseline(space, collect_partial_dimensions=True)
        server = start_server(QueryEngine(result, space))
        host, port = server.server_address
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                get_json(f"http://{host}:{port}", "/changes")
            assert err.value.code == 404
        finally:
            server.shutdown()
            server.server_close()

    def test_replay_matches_applied_deltas_in_order(self, served):
        base, engine, space, feed = served
        applied = [engine.insert([newcomer(space, i)]) for i in range(3)]
        status, body = get_json(base, "/changes?since=0")
        assert status == 200
        assert body["head"] == 3
        assert body["count"] == 3
        assert body["next"] == 3
        assert [r["offset"] for r in body["changes"]] == [1, 2, 3]
        for record, delta in zip(body["changes"], applied):
            assert record["op"] == "insert"
            assert_same_delta(record, delta)

    def test_post_insert_reports_feed_offset(self, served):
        base, engine, space, feed = served
        uri, dataset, dims, measures = newcomer(space, 0)
        payload = json.dumps(
            {
                "observations": [
                    {
                        "uri": str(uri),
                        "dataset": str(dataset),
                        "dimensions": {str(k): str(v) for k, v in dims.items()},
                        "measures": [str(m) for m in measures],
                    }
                ]
            }
        ).encode()
        request = urllib.request.Request(
            base + "/observations",
            data=payload,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            body = json.load(response)
        assert body["feed_offset"] == 1 == feed.head_offset

    def test_empty_longpoll_times_out(self, served):
        base, engine, space, feed = served
        started = time.monotonic()
        status, body = get_json(base, "/changes?since=0&timeout=0.5")
        elapsed = time.monotonic() - started
        assert status == 200 and body["count"] == 0 and body["next"] == 0
        assert 0.4 <= elapsed < 10.0

    def test_longpoll_wakes_on_live_insert(self, served):
        base, engine, space, feed = served

        def later():
            time.sleep(0.2)
            engine.insert([newcomer(space, 7)])

        thread = threading.Thread(target=later)
        thread.start()
        started = time.monotonic()
        status, body = get_json(base, "/changes?since=0&timeout=10")
        elapsed = time.monotonic() - started
        thread.join()
        assert body["count"] == 1
        assert elapsed < 8.0, "long-poll should wake on publish"

    def test_remove_publishes_a_remove_op(self, served):
        base, engine, space, feed = served
        engine.insert([newcomer(space, 0)])
        engine.remove([URIRef("http://test.example/live0")])
        _, body = get_json(base, "/changes?since=1")
        assert [r["op"] for r in body["changes"]] == ["remove"]

    def test_bad_params_rejected(self, served):
        base, engine, space, feed = served
        for path in (
            "/changes?since=-1",
            "/changes?since=abc",
            "/changes?limit=0",
            "/changes?commit=3",  # commit without consumer
            "/changes?timeout=abc",
        ):
            with pytest.raises(urllib.error.HTTPError) as err:
                get_json(base, path)
            assert err.value.code == 400, path


class TestConsumers:
    def test_commit_then_resume_from_committed(self, served):
        base, engine, space, feed = served
        for i in range(4):
            engine.insert([newcomer(space, i)])
        _, body = get_json(base, "/changes?consumer=etl&commit=2")
        assert body["consumer"] == "etl" and body["committed"] == 2
        assert body["since"] == 2
        assert [r["offset"] for r in body["changes"]] == [3, 4]
        # explicit since= overrides the committed cursor
        _, body = get_json(base, "/changes?consumer=etl&since=0")
        assert body["count"] == 4 and body["committed"] == 2

    def test_offsets_survive_server_restart(self, tmp_path):
        base, engine, space, feed, server = make_stack(tmp_path, seed=94)
        try:
            for i in range(3):
                engine.insert([newcomer(space, i)])
            get_json(base, "/changes?consumer=etl&commit=2")
        finally:
            server.shutdown()
            server.server_close()
            feed.close()
        # a brand-new process over the same store directory
        feed2 = Changefeed(tmp_path / "feed")
        assert feed2.head_offset == 3
        result = compute_baseline(space, collect_partial_dimensions=True)
        engine2 = QueryEngine(result, space, changefeed=feed2)
        server2 = start_server(engine2)
        host, port = server2.server_address
        try:
            _, body = get_json(f"http://{host}:{port}", "/changes?consumer=etl")
            assert body["committed"] == 2
            assert body["since"] == 2
            assert [r["offset"] for r in body["changes"]] == [3]
        finally:
            server2.shutdown()
            server2.server_close()
            feed2.close()

    def test_read_only_server_rejects_commits(self, tmp_path):
        base, engine, space, feed, server = make_stack(
            tmp_path, seed=95, read_only=True
        )
        try:
            engine.insert([newcomer(space, 0)])  # direct write; HTTP is read-only
            with pytest.raises(urllib.error.HTTPError) as err:
                get_json(base, "/changes?consumer=etl&commit=1")
            assert err.value.code == 405
            # reads still work
            _, body = get_json(base, "/changes?since=0")
            assert body["count"] == 1
        finally:
            server.shutdown()
            server.server_close()
            feed.close()


class TestServerSentEvents:
    def test_replay_observes_identical_applied_sequence(self, served):
        """Acceptance: SSE since=0 delivers exactly the ordered delta
        sequence the engine applied — pre-existing and live."""
        base, engine, space, feed = served
        applied = [engine.insert([newcomer(space, i)]) for i in range(2)]
        collected = {}

        def subscribe():
            collected["events"], collected["comments"] = read_sse(
                base, "/changes/stream?since=0&max_seconds=2&heartbeat=0.5"
            )

        thread = threading.Thread(target=subscribe)
        thread.start()
        time.sleep(0.4)  # subscriber is long-polling past offset 2 now
        applied.append(engine.insert([newcomer(space, 2)]))
        applied.append(engine.insert([newcomer(space, 3)]))
        thread.join(timeout=30)
        assert not thread.is_alive()
        events = collected["events"]
        assert [event_id for event_id, _ in events] == [1, 2, 3, 4]
        assert [record["offset"] for _, record in events] == [1, 2, 3, 4]
        for (_, record), delta in zip(events, applied):
            assert_same_delta(record, delta)

    def test_last_event_id_resumes_past_processed_offsets(self, served):
        base, engine, space, feed = served
        for i in range(4):
            engine.insert([newcomer(space, i)])
        events, _ = read_sse(
            base,
            "/changes/stream?max_seconds=0.5",
            headers={"Last-Event-ID": "2"},
        )
        assert [event_id for event_id, _ in events] == [3, 4]

    def test_quiet_stream_carries_heartbeats(self, served):
        base, engine, space, feed = served
        events, comments = read_sse(
            base, "/changes/stream?since=0&max_seconds=1.2&heartbeat=0.5"
        )
        assert events == []
        assert any("heartbeat" in comment for comment in comments)

    def test_bad_last_event_id_rejected(self, served):
        base, engine, space, feed = served
        with pytest.raises(urllib.error.HTTPError) as err:
            read_sse(
                base,
                "/changes/stream?max_seconds=0.5",
                headers={"Last-Event-ID": "nope"},
            )
        assert err.value.code == 400
