"""Unit tests for the streaming ingest pump (repro.stream.ingest)."""

import threading
import time

import pytest

from repro.core import compute_baseline
from repro.rdf.terms import URIRef
from repro.service import QueryEngine
from repro.stream import (
    IDLE,
    Changefeed,
    CsvObservationParser,
    EngineSink,
    FileBoundary,
    IngestError,
    NTriplesObservationParser,
    StreamIngester,
    delta_from_change,
    make_parser,
    sniff_format,
    watch_directory,
)

from tests.conftest import make_random_space


class TestCsvParser:
    def test_parses_full_row(self):
        parser = CsvObservationParser()
        (entry,) = parser.feed(
            "http://t/o1,http://t/ds,http://t/dim0=http://t/c0|http://t/dim1=http://t/c1,"
            "http://t/m0|http://t/m1\n"
        )
        assert entry == {
            "uri": "http://t/o1",
            "dataset": "http://t/ds",
            "dimensions": {
                "http://t/dim0": "http://t/c0",
                "http://t/dim1": "http://t/c1",
            },
            "measures": ["http://t/m0", "http://t/m1"],
        }
        assert parser.errors == 0

    def test_skips_header_blank_and_comment_lines(self):
        parser = CsvObservationParser()
        assert parser.feed("uri,dataset,dimensions,measures\n") == []
        assert parser.feed("\n") == []
        assert parser.feed("# a comment\n") == []
        assert parser.errors == 0

    def test_counts_malformed_lines(self):
        parser = CsvObservationParser()
        assert parser.feed("only-one-field\n") == []
        assert parser.feed(",missing-uri\n") == []
        assert parser.feed("http://t/o,http://t/ds,badpair,\n") == []
        assert parser.errors == 3
        assert parser.finish() == []


class TestNTriplesParser:
    LINES = [
        '<http://t/o1> <http://purl.org/linked-data/cube#dataSet> <http://t/ds> .\n',
        '<http://t/o1> <http://t/dim0> <http://t/c0> .\n',
        '<http://t/o1> <http://t/m0> "42" .\n',
        '<http://t/o2> <http://purl.org/linked-data/cube#dataSet> <http://t/ds> .\n',
        '<http://t/o2> <http://t/dim0> <http://t/c1> .\n',
        '<http://t/o2> <http://t/m0> "7" .\n',
    ]

    def test_groups_triples_by_subject(self):
        parser = NTriplesObservationParser()
        entries = []
        for line in self.LINES:
            entries.extend(parser.feed(line))
        entries.extend(parser.finish())
        assert [e["uri"] for e in entries] == ["http://t/o1", "http://t/o2"]
        assert entries[0]["dataset"] == "http://t/ds"
        assert entries[0]["dimensions"] == {"http://t/dim0": "http://t/c0"}
        assert entries[0]["measures"] == ["http://t/m0"]

    def test_schema_classifies_predicates(self):
        schema = {
            URIRef("http://t/ds"): (
                frozenset({URIRef("http://t/dim0")}),
                frozenset({URIRef("http://t/m0")}),
            )
        }
        parser = NTriplesObservationParser(schema=schema)
        lines = self.LINES[:3] + [
            '<http://t/o1> <http://t/ignored> <http://t/x> .\n',
        ]
        entries = []
        for line in lines:
            entries.extend(parser.feed(line))
        entries.extend(parser.finish())
        (entry,) = entries
        assert entry["dimensions"] == {"http://t/dim0": "http://t/c0"}
        assert entry["measures"] == ["http://t/m0"]

    def test_missing_dataset_is_a_parse_error(self):
        parser = NTriplesObservationParser()
        parser.feed('<http://t/o9> <http://t/dim0> <http://t/c0> .\n')
        assert parser.finish() == []
        assert parser.errors == 1

    def test_garbage_line_is_counted_not_fatal(self):
        parser = NTriplesObservationParser()
        assert parser.feed("this is not a triple\n") == []
        assert parser.errors == 1


class TestFormatSelection:
    def test_sniff(self):
        assert sniff_format('<http://t/o> <http://t/p> "1" .') == "ntriples"
        assert sniff_format("http://t/o,http://t/ds,,") == "csv"

    def test_make_parser(self):
        assert make_parser("csv").format == "csv"
        assert make_parser("ntriples").format == "ntriples"
        with pytest.raises(IngestError):
            make_parser("avro")


class _RecordingSink:
    def __init__(self, delay: float = 0.0, fail_after: int | None = None):
        self.batches: list[list[dict]] = []
        self.delay = delay
        self.fail_after = fail_after
        self.lock = threading.Lock()
        self.concurrent = 0
        self.max_concurrent = 0

    def send(self, batch, trace_id=None):
        with self.lock:
            self.concurrent += 1
            self.max_concurrent = max(self.max_concurrent, self.concurrent)
            if self.fail_after is not None and len(self.batches) >= self.fail_after:
                self.concurrent -= 1
                raise IngestError("sink full")
            self.batches.append(list(batch))
            n = len(self.batches)
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.concurrent -= 1
        return {"inserted": len(batch), "feed_offset": n}

    def close(self):
        pass


def csv_lines(n: int):
    yield "uri,dataset,dimensions,measures\n"
    for i in range(n):
        yield f"http://t/o{i},http://t/ds,http://t/dim0=http://t/c{i % 3},http://t/m0\n"


class TestStreamIngester:
    def test_batches_by_size_and_tracks_offsets(self):
        sink = _RecordingSink()
        pump = StreamIngester(sink, CsvObservationParser(), batch_size=4)
        stats = pump.run(csv_lines(10))
        assert stats.observations == 10
        assert stats.batches == 3  # 4 + 4 + 2 (final flush)
        assert sorted(len(b) for b in sink.batches) == [2, 4, 4]
        assert stats.parse_errors == 0
        assert stats.last_offset == 3
        assert stats.as_dict()["observations"] == 10

    def test_flush_interval_flushes_partial_batches(self):
        sink = _RecordingSink()
        pump = StreamIngester(
            sink, CsvObservationParser(), batch_size=1000, flush_interval=0.05
        )

        def slow_lines():
            yield from csv_lines(2)
            time.sleep(0.1)
            yield from list(csv_lines(2))[1:]  # skip the duplicate header

        stats = pump.run(slow_lines())
        assert stats.observations == 4
        assert stats.batches >= 2, "the flush interval should have split the stream"

    def test_backpressure_bounds_inflight_batches(self):
        sink = _RecordingSink(delay=0.05)
        pump = StreamIngester(
            sink, CsvObservationParser(), batch_size=2, max_inflight=2
        )
        stats = pump.run(csv_lines(20))
        assert stats.observations == 20
        assert sink.max_concurrent <= 2

    def test_sink_failure_aborts_the_run(self):
        sink = _RecordingSink(fail_after=1)
        pump = StreamIngester(sink, CsvObservationParser(), batch_size=2, max_inflight=1)
        with pytest.raises(IngestError):
            pump.run(csv_lines(20))

    def test_stop_event_halts_the_pump(self):
        sink = _RecordingSink()
        stop = threading.Event()
        pump = StreamIngester(sink, CsvObservationParser(), batch_size=2)

        def lines():
            yield from csv_lines(4)
            stop.set()
            yield from list(csv_lines(100))[1:]

        stats = pump.run(lines(), stop=stop)
        assert stats.observations <= 6

    def test_invalid_config_rejected(self):
        with pytest.raises(IngestError):
            StreamIngester(_RecordingSink(), CsvObservationParser(), batch_size=0)
        with pytest.raises(IngestError):
            StreamIngester(_RecordingSink(), CsvObservationParser(), max_inflight=0)


class TestEngineSink:
    def test_ingested_deltas_reach_feed_in_applied_order(self, tmp_path):
        space = make_random_space(20, seed=91)
        result = compute_baseline(space, collect_partial_dimensions=True)
        feed = Changefeed(tmp_path / "feed")
        engine = QueryEngine(result, space, changefeed=feed)
        template = space.observations[0]
        dims = "|".join(
            f"{dim}={code}"
            for dim, code in zip(space.dimensions, template.codes)
            if code is not None
        )
        lines = ["uri,dataset,dimensions,measures\n"] + [
            f'http://test.example/stream{i},{template.dataset},"{dims}",'
            f"http://test.example/m0\n"
            for i in range(6)
        ]
        pump = StreamIngester(
            EngineSink(engine), CsvObservationParser(), batch_size=2, max_inflight=1
        )
        stats = pump.run(lines)
        assert stats.observations == 6
        assert stats.batches == 3
        assert stats.last_offset == feed.head_offset == 3
        # the feed holds exactly the engine-applied deltas, in order
        uris = set()
        for record in feed.read(since=0):
            delta = delta_from_change(record)
            uris |= {u for pair in delta.added_full for u in pair}
            uris |= {u for pair in delta.added_partial for u in pair}
            uris |= {u for pair in delta.added_complementary for u in pair}
        for i in range(6):
            assert URIRef(f"http://test.example/stream{i}") in uris
        feed.close()


class TestWatchDirectory:
    def test_drains_sorted_and_marks_done_on_ack(self, tmp_path):
        (tmp_path / "b.csv").write_text("line-b1\nline-b2\n")
        (tmp_path / "a.csv").write_text("line-a\n")
        (tmp_path / ".hidden").write_text("nope\n")
        (tmp_path / "c.csv.done").write_text("already\n")
        lines, boundaries = [], []
        for item in watch_directory(tmp_path):
            if isinstance(item, FileBoundary):
                boundaries.append(item.path.name)
                item.done()  # the consumer acknowledges, then renames
            elif item is not IDLE:
                lines.append(item.strip())
        assert lines == ["line-a", "line-b1", "line-b2"]
        assert boundaries == ["a.csv", "b.csv"]
        names = sorted(p.name for p in tmp_path.iterdir())
        assert "a.csv.done" in names and "b.csv.done" in names
        assert "a.csv" not in names

    def test_unacknowledged_files_stay_in_place(self, tmp_path):
        """A consumer that never calls FileBoundary.done leaves the file
        for a restart to re-ingest (at-least-once) without the watch
        loop re-yielding it within the same run."""
        (tmp_path / "a.csv").write_text("line-a\n")
        lines = [i for i in watch_directory(tmp_path) if isinstance(i, str)]
        assert [line.strip() for line in lines] == ["line-a"]
        assert (tmp_path / "a.csv").exists()  # not renamed: never acked
        # a fresh watch (the restart) yields the file again
        again = [i for i in watch_directory(tmp_path) if isinstance(i, str)]
        assert [line.strip() for line in again] == ["line-a"]

    def test_stop_event_ends_the_watch(self, tmp_path):
        stop = threading.Event()
        seen = []

        def consume():
            for item in watch_directory(tmp_path, poll_interval=0.05, stop=stop):
                if isinstance(item, FileBoundary):
                    item.done()
                elif item is not IDLE:
                    seen.append(item.strip())

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.1)
        (tmp_path / "late.csv").write_text("late-line\n")
        deadline = time.monotonic() + 5
        while not seen and time.monotonic() < deadline:
            time.sleep(0.02)
        stop.set()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen == ["late-line"]

    def test_idle_watch_yields_ticks(self, tmp_path):
        stop = threading.Event()
        items = []
        source = watch_directory(tmp_path, poll_interval=0.01, stop=stop)
        for item in source:
            items.append(item)
            if len(items) >= 3:
                stop.set()
        assert all(item is IDLE for item in items)

    def test_missing_directory_is_fatal(self, tmp_path):
        with pytest.raises(IngestError):
            list(watch_directory(tmp_path / "absent"))


class TestSpoolHandoff:
    """End-to-end at-least-once: pump + watch_directory + sink."""

    def test_file_marked_done_only_after_every_batch_acked(self, tmp_path):
        (tmp_path / "a.csv").write_text("".join(csv_lines(5)))
        sink = _RecordingSink()
        pump = StreamIngester(sink, CsvObservationParser(), batch_size=2)
        stats = pump.run(watch_directory(tmp_path))
        assert stats.observations == 5
        assert not (tmp_path / "a.csv").exists()
        assert (tmp_path / "a.csv.done").exists()

    def test_sink_failure_leaves_file_unmarked(self, tmp_path):
        (tmp_path / "a.csv").write_text("".join(csv_lines(6)))
        sink = _RecordingSink(fail_after=1)
        pump = StreamIngester(sink, CsvObservationParser(), batch_size=2, max_inflight=1)
        with pytest.raises(IngestError):
            pump.run(watch_directory(tmp_path))
        # the failed file is still there for a restart to re-ingest
        assert (tmp_path / "a.csv").exists()
        assert not (tmp_path / "a.csv.done").exists()

    def test_small_file_flushes_without_further_input(self, tmp_path):
        """A file smaller than batch_size is applied at its boundary —
        it must not sit buffered waiting for more data."""
        (tmp_path / "tiny.csv").write_text("".join(csv_lines(1)))
        sink = _RecordingSink()
        pump = StreamIngester(
            sink, CsvObservationParser(), batch_size=1000, flush_interval=60.0
        )
        stats = pump.run(watch_directory(tmp_path))
        assert stats.observations == 1
        assert (tmp_path / "tiny.csv.done").exists()

    def test_idle_tick_flushes_partial_batch(self):
        """An IDLE tick after flush_interval flushes a pending batch even
        when no further line ever arrives."""
        sink = _RecordingSink()
        pump = StreamIngester(
            sink, CsvObservationParser(), batch_size=1000, flush_interval=0.05
        )
        stop = threading.Event()

        def lines():
            yield from csv_lines(2)
            while not stop.is_set():
                time.sleep(0.06)
                yield IDLE
                if sink.batches:
                    stop.set()

        stats = pump.run(lines(), stop=None)
        assert stats.observations == 2
        assert len(sink.batches) >= 1
