"""Unit tests for the router's scatter-merged changefeed pages."""

from repro.cluster.router import merge_changes


def change(offset: int, shard: int = 0) -> dict:
    return {"type": "change", "offset": offset, "op": "insert", "shard": shard}


def body(since: int, head: int, offsets, shard: int = 0) -> dict:
    return {
        "since": since,
        "head": head,
        "count": len(offsets),
        "changes": [change(o, shard) for o in offsets],
    }


class TestMergeChanges:
    def test_identical_offsets_collapse(self):
        # every shard reads the same store-level feed: replicas return
        # the same records and the merge must count each offset once
        merged = merge_changes(
            [
                body(0, 3, [1, 2, 3], shard=0),
                body(0, 3, [1, 2, 3], shard=1),
            ]
        )
        assert [r["offset"] for r in merged["changes"]] == [1, 2, 3]
        assert merged["count"] == 3
        assert merged["head"] == 3
        assert merged["next"] == 3

    def test_staggered_shards_merge_in_offset_order(self):
        # one replica lags: the merged page is still strictly ascending
        # and the head is the max any shard reported
        merged = merge_changes(
            [
                body(0, 2, [1, 2], shard=0),
                body(0, 4, [1, 2, 3, 4], shard=1),
            ]
        )
        assert [r["offset"] for r in merged["changes"]] == [1, 2, 3, 4]
        assert merged["head"] == 4
        assert merged["next"] == 4

    def test_first_body_wins_on_duplicate_offsets(self):
        merged = merge_changes(
            [
                body(0, 1, [1], shard=0),
                body(0, 1, [1], shard=1),
            ]
        )
        assert merged["changes"][0]["shard"] == 0

    def test_limit_truncates_after_merge(self):
        merged = merge_changes(
            [
                body(0, 5, [1, 3, 5]),
                body(0, 5, [2, 4]),
            ],
            limit=3,
        )
        assert [r["offset"] for r in merged["changes"]] == [1, 2, 3]
        assert merged["count"] == 3
        assert merged["next"] == 3
        assert merged["head"] == 5  # head reflects the feed, not the page

    def test_empty_bodies(self):
        merged = merge_changes([body(7, 7, []), body(7, 7, [])])
        assert merged["changes"] == []
        assert merged["count"] == 0
        assert merged["next"] == 7  # cursor stays where the client left it
        assert merged["since"] == 7

    def test_malformed_offsets_are_skipped(self):
        bad = {"since": 0, "head": 1, "changes": [{"offset": "x"}, {"op": "insert"}]}
        merged = merge_changes([bad, body(0, 1, [1])])
        assert [r["offset"] for r in merged["changes"]] == [1]
