"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.qb import load_cubespace
from repro.rdf import CCREL, parse_ntriples, parse_turtle


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "corpus.ttl"
    code = main(["generate", "--kind", "realworld", "--scale", "0.001",
                 "--seed", "1", "--output", str(path)])
    assert code == 0
    return path


class TestGenerate:
    def test_realworld_roundtrips(self, corpus_file):
        cube = load_cubespace(parse_turtle(corpus_file.read_text()))
        assert len(cube.datasets) == 7
        assert cube.observation_count() > 0

    def test_synthetic_to_ntriples(self, tmp_path):
        path = tmp_path / "synthetic.nt"
        code = main(["generate", "--kind", "synthetic", "--n", "50",
                     "--dimensions", "2", "--output", str(path)])
        assert code == 0
        graph = parse_ntriples(path.read_text())
        assert len(graph) > 50

    def test_stdout_output(self, capsys):
        code = main(["generate", "--kind", "realworld", "--scale", "0.0005"])
        assert code == 0
        out = capsys.readouterr().out
        assert "@prefix" in out


class TestCompute:
    def test_compute_writes_links(self, corpus_file, tmp_path):
        out = tmp_path / "links.ttl"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "--targets", "full",
                     "--output", str(out)])
        assert code == 0
        links = parse_turtle(out.read_text())
        assert all(p == CCREL.fullyContains for _, p, _ in links)

    def test_compute_to_stdout(self, corpus_file, capsys):
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "--targets", "complementary"])
        assert code == 0

    def test_methods_agree_via_cli(self, corpus_file, tmp_path):
        outputs = []
        for method in ("baseline", "cube_masking", "streaming"):
            out = tmp_path / f"{method}.nt"
            main(["compute", "--input", str(corpus_file), "--method", method,
                  "--targets", "full", "--output", str(out)])
            outputs.append(out.read_text())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_json_output(self, corpus_file, tmp_path):
        from repro.store import load_relationships

        out = tmp_path / "links.json"
        main(["compute", "--input", str(corpus_file), "--method", "cube_masking",
              "--targets", "full", "--json-output", str(out)])
        loaded = load_relationships(out)
        assert len(loaded.full) > 0

    def test_unknown_method_rejected(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["compute", "--input", str(corpus_file), "--method", "magic"])


class TestErrorHandling:
    def test_malformed_input_exits_with_diagnostic(self, tmp_path, capsys):
        bad = tmp_path / "garbage.ttl"
        bad.write_text("this is not turtle {{{")
        code = main(["compute", "--input", str(bad), "--method", "cube_masking"])
        assert code == 3
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1  # one line, not a traceback

    def test_missing_input_exits_with_diagnostic(self, tmp_path, capsys):
        code = main(["compute", "--input", str(tmp_path / "nope.ttl")])
        assert code == 3
        assert "repro: error:" in capsys.readouterr().err

    def test_malformed_json_store_input(self, corpus_file, tmp_path, capsys):
        # --workers with a non-cube_masking method is a library error, not a crash
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "baseline", "--workers", "2"])
        assert code == 3
        assert "cube_masking" in capsys.readouterr().err


class TestResilienceFlags:
    def test_checkpoint_and_resume_roundtrip(self, corpus_file, tmp_path, capsys):
        # compare the canonical JSON store (deterministic), not the RDF
        # serialisation, whose blank-node labels differ between runs
        ckpt = tmp_path / "run.jsonl"
        out1 = tmp_path / "first.json"
        code = main(["compute", "--input", str(corpus_file), "--method", "cube_masking",
                     "--checkpoint", str(ckpt), "--json-output", str(out1)])
        assert code == 0
        assert ckpt.exists()
        out2 = tmp_path / "second.json"
        code = main(["compute", "--input", str(corpus_file), "--method", "cube_masking",
                     "--checkpoint", str(ckpt), "--resume", "--json-output", str(out2)])
        assert code == 0
        assert out1.read_text() == out2.read_text()

    def test_existing_checkpoint_without_resume_fails(self, corpus_file, tmp_path, capsys):
        ckpt = tmp_path / "run.jsonl"
        assert main(["compute", "--input", str(corpus_file), "--checkpoint", str(ckpt)]) == 0
        code = main(["compute", "--input", str(corpus_file), "--checkpoint", str(ckpt)])
        assert code == 3
        assert "resume" in capsys.readouterr().err

    def test_workers_flag(self, corpus_file, tmp_path):
        out = tmp_path / "par.json"
        seq = tmp_path / "seq.json"
        main(["compute", "--input", str(corpus_file), "--method", "cube_masking",
              "--json-output", str(seq)])
        code = main(["compute", "--input", str(corpus_file), "--method", "cube_masking",
                     "--workers", "2", "--max-retries", "1", "--checkpoint",
                     str(tmp_path / "w.jsonl"), "--json-output", str(out)])
        assert code == 0
        assert out.read_text() == seq.read_text()


class TestValidate:
    def test_valid_corpus_passes(self, corpus_file):
        assert main(["validate", "--input", str(corpus_file)]) == 0

    def test_broken_corpus_fails(self, corpus_file, tmp_path, capsys):
        text = corpus_file.read_text()
        broken = tmp_path / "broken.ttl"
        broken.write_text(
            text + '\n<http://x.example/orphan> a <http://purl.org/linked-data/cube#Observation> .\n'
        )
        assert main(["validate", "--input", str(broken)]) == 1
        assert "IC-1" in capsys.readouterr().out


class TestInspect:
    def test_inspect_prints_profile(self, corpus_file, capsys):
        code = main(["inspect", "--input", str(corpus_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "CubeSpace" in out
        assert "hierarchy" in out


class TestInspectStore:
    @pytest.fixture
    def store_file(self, corpus_file, tmp_path):
        path = tmp_path / "links.json"
        assert main(["compute", "--input", str(corpus_file),
                     "--json-output", str(path)]) == 0
        return path

    def test_inspect_json_store_prints_profile(self, store_file, capsys):
        assert main(["inspect", "--input", str(store_file)]) == 0
        out = capsys.readouterr().out
        assert "relationship store" in out
        assert "pairs: full=" in out
        assert "degree histogram" in out

    def test_inspect_missing_store_fails_cleanly(self, tmp_path, capsys):
        code = main(["inspect", "--input", str(tmp_path / "absent.json")])
        assert code == 3
        assert "error:" in capsys.readouterr().err


class TestServe:
    def test_serve_missing_store_fails_cleanly(self, tmp_path, capsys):
        code = main(["serve", "--store", str(tmp_path / "absent.json")])
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_serve_end_to_end(self, corpus_file, tmp_path):
        """`repro compute --json-output` then `repro serve` answers HTTP."""
        import json
        import urllib.request

        from repro.core import ObservationSpace
        from repro.service import QueryEngine, start_server
        from repro.store import load_relationships

        store = tmp_path / "links.json"
        assert main(["compute", "--input", str(corpus_file),
                     "--json-output", str(store)]) == 0
        # same wiring _cmd_serve performs, on an ephemeral port
        result = load_relationships(store)
        cube = load_cubespace(parse_turtle(corpus_file.read_text()))
        space = ObservationSpace.from_cubespace(cube)
        server = start_server(QueryEngine(result, space))
        host, port = server.server_address
        try:
            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                body = json.load(response)
            assert body["status"] == "ok"
            assert body["observations"] == len(space)
        finally:
            server.shutdown()
            server.server_close()
