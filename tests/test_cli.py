"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.qb import load_cubespace
from repro.rdf import CCREL, parse_ntriples, parse_turtle


@pytest.fixture
def corpus_file(tmp_path):
    path = tmp_path / "corpus.ttl"
    code = main(["generate", "--kind", "realworld", "--scale", "0.001",
                 "--seed", "1", "--output", str(path)])
    assert code == 0
    return path


class TestGenerate:
    def test_realworld_roundtrips(self, corpus_file):
        cube = load_cubespace(parse_turtle(corpus_file.read_text()))
        assert len(cube.datasets) == 7
        assert cube.observation_count() > 0

    def test_synthetic_to_ntriples(self, tmp_path):
        path = tmp_path / "synthetic.nt"
        code = main(["generate", "--kind", "synthetic", "--n", "50",
                     "--dimensions", "2", "--output", str(path)])
        assert code == 0
        graph = parse_ntriples(path.read_text())
        assert len(graph) > 50

    def test_stdout_output(self, capsys):
        code = main(["generate", "--kind", "realworld", "--scale", "0.0005"])
        assert code == 0
        out = capsys.readouterr().out
        assert "@prefix" in out


class TestCompute:
    def test_compute_writes_links(self, corpus_file, tmp_path):
        out = tmp_path / "links.ttl"
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "--targets", "full",
                     "--output", str(out)])
        assert code == 0
        links = parse_turtle(out.read_text())
        assert all(p == CCREL.fullyContains for _, p, _ in links)

    def test_compute_to_stdout(self, corpus_file, capsys):
        code = main(["compute", "--input", str(corpus_file),
                     "--method", "cube_masking", "--targets", "complementary"])
        assert code == 0

    def test_methods_agree_via_cli(self, corpus_file, tmp_path):
        outputs = []
        for method in ("baseline", "cube_masking", "streaming"):
            out = tmp_path / f"{method}.nt"
            main(["compute", "--input", str(corpus_file), "--method", method,
                  "--targets", "full", "--output", str(out)])
            outputs.append(out.read_text())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_json_output(self, corpus_file, tmp_path):
        from repro.store import load_relationships

        out = tmp_path / "links.json"
        main(["compute", "--input", str(corpus_file), "--method", "cube_masking",
              "--targets", "full", "--json-output", str(out)])
        loaded = load_relationships(out)
        assert len(loaded.full) > 0

    def test_unknown_method_rejected(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["compute", "--input", str(corpus_file), "--method", "magic"])


class TestValidate:
    def test_valid_corpus_passes(self, corpus_file):
        assert main(["validate", "--input", str(corpus_file)]) == 0

    def test_broken_corpus_fails(self, corpus_file, tmp_path, capsys):
        text = corpus_file.read_text()
        broken = tmp_path / "broken.ttl"
        broken.write_text(
            text + '\n<http://x.example/orphan> a <http://purl.org/linked-data/cube#Observation> .\n'
        )
        assert main(["validate", "--input", str(broken)]) == 1
        assert "IC-1" in capsys.readouterr().out


class TestInspect:
    def test_inspect_prints_profile(self, corpus_file, capsys):
        code = main(["inspect", "--input", str(corpus_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "CubeSpace" in out
        assert "hierarchy" in out
