"""Smoke tests: the runnable examples execute without error.

The slow comparison sweep (``method_comparison.py``) is exercised with
a monkeypatched size list so the suite stays fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "data_journalism.py",
        "federated_alignment.py",
        "olap_exploration.py",
        "sparql_olap.py",
        "multi_source_trig.py",
    ],
)
def test_fast_examples_run(script, capsys):
    run_example(script)
    assert capsys.readouterr().out  # every example prints something


def test_skyline_example(capsys):
    run_example("skyline_analysis.py")
    out = capsys.readouterr().out
    assert "identical ✓" in out


def test_incremental_example(capsys):
    run_example("incremental_updates.py")
    out = capsys.readouterr().out
    assert "results identical" in out


def test_resilient_pipeline_example(capsys):
    run_example("resilient_pipeline.py")
    out = capsys.readouterr().out
    assert "Interrupted after" in out
    assert "results identical" in out


def test_method_comparison_small(monkeypatch, capsys):
    sys.path.insert(0, str(EXAMPLES))
    try:
        import method_comparison

        monkeypatch.setattr(method_comparison, "SIZES", (30,))
        monkeypatch.setattr(method_comparison, "RULES_LIMIT", 0)
        monkeypatch.setattr(method_comparison, "COMPARATOR_LIMIT", 30)
        method_comparison.main()
        out = capsys.readouterr().out
        assert "cube_masking" in out
    finally:
        sys.path.remove(str(EXAMPLES))


def test_serve_relationships_example(capsys):
    run_example("serve_relationships.py")
    out = capsys.readouterr().out
    assert "health: {'status': 'ok'" in out
    assert "done" in out
