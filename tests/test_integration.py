"""End-to-end integration tests across the whole stack.

Each test exercises a realistic pipeline: RDF text in, relationships
out, RDF links back, reloaded and verified — crossing the parser, the
QB model, the algorithms and the writer in one pass.
"""

import pytest

from repro import (
    Method,
    ObservationSpace,
    compute_relationships,
    cubespace_to_graph,
    load_cubespace,
    parse_turtle,
    relationships_to_graph,
    serialize_turtle,
)
from repro.core.sparql_method import compute_sparql
from repro.data.example import build_example_cubespace
from repro.data.realworld import build_realworld_cubespace
from repro.rdf import CCREL
from repro.sparql import query
from repro.sparql.ast import Var


class TestFullPipeline:
    def test_turtle_roundtrip_preserves_relationships(self):
        cube = build_example_cubespace()
        direct = compute_relationships(cube, Method.BASELINE)
        # Serialize to Turtle text, parse back, recompute.
        text = serialize_turtle(cubespace_to_graph(cube))
        reloaded = load_cubespace(parse_turtle(text))
        via_text = compute_relationships(reloaded, Method.BASELINE)
        assert direct == via_text

    def test_materialised_links_queryable_with_sparql(self):
        cube = build_example_cubespace()
        result = compute_relationships(cube, Method.CUBE_MASKING)
        links = relationships_to_graph(result)
        rows = query(
            links,
            "PREFIX ccrel: <http://www.diachron-fp7.eu/qb/relationship#> "
            "SELECT ?a ?b { ?a ccrel:fullyContains ?b }",
        )
        pairs = {(row[Var("a")], row[Var("b")]) for row in rows}
        assert pairs == result.full

    def test_links_roundtrip_through_turtle(self):
        cube = build_example_cubespace()
        result = compute_relationships(cube, Method.BASELINE, collect_partial_dimensions=True)
        text = serialize_turtle(relationships_to_graph(result))
        reparsed = parse_turtle(text)
        assert len(list(reparsed.triples(None, CCREL.fullyContains, None))) == len(result.full)
        # complements written symmetrically
        assert (
            len(list(reparsed.triples(None, CCREL.complements, None)))
            == 2 * len(result.complementary)
        )

    def test_generated_corpus_through_rdf_and_back(self):
        cube = build_realworld_cubespace(scale=0.001, seed=13)
        text = serialize_turtle(cubespace_to_graph(cube))
        reloaded = load_cubespace(parse_turtle(text))
        assert reloaded.observation_count() == cube.observation_count()
        direct = compute_relationships(cube, Method.CUBE_MASKING, collect_partial=False)
        via_rdf = compute_relationships(reloaded, Method.CUBE_MASKING, collect_partial=False)
        assert direct == via_rdf

    def test_sparql_method_on_loaded_corpus(self):
        """The SPARQL comparator agrees with the native methods on data
        that went through a full RDF round-trip."""
        cube = build_realworld_cubespace(scale=0.0003, seed=17)
        space = ObservationSpace.from_cubespace(cube)
        native = compute_relationships(space, Method.CUBE_MASKING)
        via_sparql = compute_sparql(space)
        assert native == via_sparql


class TestCrossMethodAtScale:
    @pytest.mark.parametrize("seed", [101, 202])
    def test_lossless_methods_agree_on_generated_corpus(self, seed):
        cube = build_realworld_cubespace(scale=0.001, seed=seed)
        space = ObservationSpace.from_cubespace(cube)
        results = [
            compute_relationships(space, method, collect_partial_dimensions=False)
            for method in (Method.BASELINE, Method.CUBE_MASKING, Method.STREAMING)
        ]
        assert results[0] == results[1] == results[2]

    def test_clustering_recall_reported_against_truth(self):
        cube = build_realworld_cubespace(scale=0.002, seed=7)
        space = ObservationSpace.from_cubespace(cube)
        truth = compute_relationships(space, Method.BASELINE, collect_partial_dimensions=False)
        found = compute_relationships(space, Method.CLUSTERING, seed=1)
        recall = found.recall_against(truth)
        assert 0.0 <= recall.overall <= 1.0
        assert recall.full <= 1.0
