"""API-surface regression tests.

Locks the public API: everything in ``__all__`` must resolve, be
documented, and the facade must stay importable from the package root —
the contract a downstream user codes against.
"""

import inspect

import pytest

import repro
import repro.align
import repro.core
import repro.qb
import repro.rdf
import repro.rules
import repro.sparql


PACKAGES = [repro, repro.rdf, repro.sparql, repro.rules, repro.qb, repro.align, repro.core]


@pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
def test_all_exports_resolve(package):
    for name in package.__all__:
        assert hasattr(package, name), f"{package.__name__}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
def test_public_callables_documented(package):
    undocumented = []
    for name in package.__all__:
        member = getattr(package, name)
        if inspect.isfunction(member) or inspect.isclass(member):
            if not (member.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"undocumented public items in {package.__name__}: {undocumented}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_headline_quickstart_works():
    """The README's four-line quickstart must keep working verbatim."""
    from repro import Method, compute_relationships
    from repro.data import build_realworld_cubespace

    cube = build_realworld_cubespace(scale=0.001, seed=7)
    result = compute_relationships(cube, method=Method.CUBE_MASKING)
    assert result.total() >= 0


def test_method_enum_covers_paper_and_extensions():
    from repro import Method

    values = {m.value for m in Method}
    assert {"baseline", "clustering", "cube_masking", "sparql", "rules"} <= values
    assert {"streaming", "hybrid"} <= values


def test_exception_hierarchy_rooted():
    import repro.errors as errors

    leaves = [
        errors.ParseError("x"),
        errors.SPARQLSyntaxError("x"),
        errors.RuleSyntaxError("x"),
        errors.CubeModelError("x"),
        errors.HierarchyError("x"),
        errors.AlignmentError("x"),
        errors.AlgorithmError("x"),
    ]
    assert all(isinstance(e, errors.ReproError) for e in leaves)
