"""Smoke test for the benchmark report harness.

``benchmarks/report.py`` is the one-stop regenerator for every figure;
this test runs it in ``--quick`` mode so signature drift in the library
can never silently break the reproduction harness.
"""

import sys
from pathlib import Path

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def test_report_quick_runs(capsys):
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import report

        assert report.main(["--quick"]) == 0
    finally:
        sys.path.remove(str(BENCHMARKS))
    out = capsys.readouterr().out
    for marker in (
        "Table 4",
        "Figure 5a",
        "Figure 5b",
        "Figure 5c",
        "Figure 5d",
        "Figure 5e",
        "Figure 5f",
        "Figure 5g",
    ):
        assert marker in out, f"report output lost the {marker} section"
    # The size-merged sweep must include the comparator rows.
    assert "o/m" in out or "timeout" in out
