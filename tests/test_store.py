"""Unit tests for the relationship JSON store."""

import io

import pytest

from repro.core import compute_baseline
from repro.data.example import build_example_space
from repro.errors import ReproError
from repro.store import (
    dumps_relationships,
    load_relationships,
    loads_relationships,
    save_relationships,
)


@pytest.fixture(scope="module")
def result():
    return compute_baseline(build_example_space(), collect_partial_dimensions=True)


class TestRoundTrip:
    def test_string_round_trip(self, result):
        text = dumps_relationships(result)
        loaded = loads_relationships(text)
        assert loaded == result

    def test_metadata_preserved(self, result):
        loaded = loads_relationships(dumps_relationships(result))
        assert loaded.degrees == result.degrees
        assert loaded.partial_map == result.partial_map

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "links.json"
        save_relationships(result, path, indent=2)
        assert load_relationships(path) == result

    def test_stream_round_trip(self, result):
        buffer = io.StringIO()
        save_relationships(result, buffer)
        buffer.seek(0)
        assert load_relationships(buffer) == result

    def test_empty_set(self):
        from repro.core.results import RelationshipSet

        empty = RelationshipSet()
        assert loads_relationships(dumps_relationships(empty)) == empty

    def test_deterministic_output(self, result):
        assert dumps_relationships(result) == dumps_relationships(result)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ReproError):
            loads_relationships("{not json")

    def test_unsupported_version(self):
        with pytest.raises(ReproError):
            loads_relationships('{"version": 99}')

    def test_missing_version(self):
        with pytest.raises(ReproError):
            loads_relationships('{"full": []}')
