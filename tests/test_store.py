"""Unit tests for the relationship JSON store."""

import io

import pytest

from repro.core import compute_baseline
from repro.data.example import build_example_space
from repro.errors import ReproError
from repro.store import (
    dumps_relationships,
    load_relationships,
    loads_relationships,
    save_relationships,
)


@pytest.fixture(scope="module")
def result():
    return compute_baseline(build_example_space(), collect_partial_dimensions=True)


class TestRoundTrip:
    def test_string_round_trip(self, result):
        text = dumps_relationships(result)
        loaded = loads_relationships(text)
        assert loaded == result

    def test_metadata_preserved(self, result):
        loaded = loads_relationships(dumps_relationships(result))
        assert loaded.degrees == result.degrees
        assert loaded.partial_map == result.partial_map

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "links.json"
        save_relationships(result, path, indent=2)
        assert load_relationships(path) == result

    def test_stream_round_trip(self, result):
        buffer = io.StringIO()
        save_relationships(result, buffer)
        buffer.seek(0)
        assert load_relationships(buffer) == result

    def test_empty_set(self):
        from repro.core.results import RelationshipSet

        empty = RelationshipSet()
        assert loads_relationships(dumps_relationships(empty)) == empty

    def test_deterministic_output(self, result):
        assert dumps_relationships(result) == dumps_relationships(result)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ReproError):
            loads_relationships("{not json")

    def test_unsupported_version(self):
        with pytest.raises(ReproError):
            loads_relationships('{"version": 99}')

    def test_missing_version(self):
        with pytest.raises(ReproError):
            loads_relationships('{"full": []}')

    def test_non_object_payload(self):
        with pytest.raises(ReproError):
            loads_relationships("[1, 2, 3]")


class TestPayloadValidation:
    """Malformed entries raise ReproError naming the offender, never
    a bare KeyError/TypeError."""

    def test_non_list_full_section(self):
        with pytest.raises(ReproError, match="'full'"):
            loads_relationships('{"version": 1, "full": "oops"}')

    def test_full_entry_not_a_pair(self):
        with pytest.raises(ReproError, match="a-single-uri"):
            loads_relationships('{"version": 1, "full": [["a-single-uri"]]}')

    def test_full_entry_non_string(self):
        with pytest.raises(ReproError, match="full entry"):
            loads_relationships('{"version": 1, "full": [[1, 2]]}')

    def test_complementary_entry_not_a_pair(self):
        with pytest.raises(ReproError, match="complementary entry"):
            loads_relationships('{"version": 1, "complementary": [["a", "b", "c"]]}')

    def test_partial_entry_not_an_object(self):
        with pytest.raises(ReproError, match="partial entry"):
            loads_relationships('{"version": 1, "partial": ["nope"]}')

    def test_partial_missing_container(self):
        with pytest.raises(ReproError, match="container"):
            loads_relationships('{"version": 1, "partial": [{"contained": "b"}]}')

    def test_partial_missing_contained(self):
        with pytest.raises(ReproError, match="contained"):
            loads_relationships(
                '{"version": 1, "partial": [{"container": "a", "degree": 0.5}]}'
            )

    def test_partial_non_numeric_degree(self):
        with pytest.raises(ReproError, match="degree"):
            loads_relationships(
                '{"version": 1, "partial": [{"container": "a", "contained": "b", "degree": "high"}]}'
            )

    def test_partial_boolean_degree(self):
        with pytest.raises(ReproError, match="degree"):
            loads_relationships(
                '{"version": 1, "partial": [{"container": "a", "contained": "b", "degree": true}]}'
            )

    def test_partial_non_list_dimensions(self):
        with pytest.raises(ReproError, match="dimensions"):
            loads_relationships(
                '{"version": 1, "partial": [{"container": "a", "contained": "b", "dimensions": 4}]}'
            )

    def test_null_degree_is_allowed(self):
        loaded = loads_relationships(
            '{"version": 1, "partial": [{"container": "a", "contained": "b", "degree": null}]}'
        )
        assert len(loaded.partial) == 1


class TestAtomicity:
    def test_no_temp_files_left_behind(self, result, tmp_path):
        path = tmp_path / "links.json"
        save_relationships(result, path)
        assert [p.name for p in tmp_path.iterdir()] == ["links.json"]

    def test_failed_write_preserves_existing_store(self, result, tmp_path, monkeypatch):
        import os

        path = tmp_path / "links.json"
        save_relationships(result, path)
        original = path.read_text()

        def explode(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            save_relationships(result, path, indent=2)
        assert path.read_text() == original  # old store untouched
        leftovers = [p for p in tmp_path.iterdir() if p.name != "links.json"]
        assert leftovers == []  # temp file cleaned up on failure

    def test_atomic_write_text_roundtrip(self, tmp_path):
        from repro.store import atomic_write_text

        path = tmp_path / "out.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"


class TestFormatField:
    """The self-describing ``format`` tag of the store payload."""

    def test_payload_carries_format_and_version(self, result):
        import json

        payload = json.loads(dumps_relationships(result))
        assert payload["format"] == "repro-relationships"
        assert payload["version"] == 1

    def test_v1_file_without_format_still_loads(self, result):
        """Stores written before the tag existed stay readable."""
        import json

        payload = json.loads(dumps_relationships(result))
        del payload["format"]
        assert loads_relationships(json.dumps(payload)) == result

    def test_foreign_format_rejected(self):
        with pytest.raises(ReproError, match="format"):
            loads_relationships('{"format": "something-else", "version": 1}')

    def test_metadata_roundtrip_with_format(self, result):
        """partial_map and degrees survive save/load unchanged."""
        loaded = loads_relationships(dumps_relationships(result))
        assert loaded.partial_map == result.partial_map
        assert {k: float(v) for k, v in loaded.degrees.items()} == {
            k: float(v) for k, v in result.degrees.items()
        }


class TestProfile:
    def test_profile_counts(self, result):
        from repro.store import profile_relationships

        profile = profile_relationships(result)
        assert profile["full_pairs"] == len(result.full)
        assert profile["partial_pairs"] == len(result.partial)
        assert profile["complementary_pairs"] == len(result.complementary)
        assert profile["total_pairs"] == result.total()
        assert sum(profile["degree_histogram"]) == len(result.degrees)
        uris = set()
        for pairs in (result.full, result.partial, result.complementary):
            for a, b in pairs:
                uris |= {a, b}
        assert profile["observations"] == len(uris)

    def test_histogram_bins_degrees(self):
        from repro.core.results import RelationshipSet
        from repro.rdf.terms import URIRef
        from repro.store import profile_relationships

        result = RelationshipSet()
        result.add_partial(URIRef("http://x/a"), URIRef("http://x/b"), degree=0.05)
        result.add_partial(URIRef("http://x/a"), URIRef("http://x/c"), degree=0.55)
        result.add_partial(URIRef("http://x/b"), URIRef("http://x/c"), degree=1.0)
        histogram = profile_relationships(result, bins=10)["degree_histogram"]
        assert histogram[0] == 1 and histogram[5] == 1 and histogram[9] == 1

    def test_top_containers_ranked(self, result):
        from repro.store import profile_relationships

        top = profile_relationships(result)["top_containers"]
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)
